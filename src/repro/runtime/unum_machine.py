"""Executes UNUM-backend assembly on the coprocessor + scalar core model.

The machine pairs a simple in-order scalar core (1 cycle per ALU op,
cache-modeled memory) with the
:class:`~repro.unum.coprocessor.UnumCoprocessor` (g-layer latencies,
variable-byte loads/stores).  It is the stand-in for the paper's FPGA
Rocket + coprocessor platform (Fig. 2); reported cycles combine both
units plus cache-model access time.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..backends.unum_backend.asm import (
    AsmFunction,
    AsmInst,
    AsmModule,
    Imm,
    PReg,
    StackSlot,
    VReg,
)
from ..bigfloat import BigFloat
from ..unum import MAX_WGP, UnumConfig, UnumCoprocessor
from .cost_model import CostAccounting
from .memory import Memory


class UnumMachineError(RuntimeError):
    pass


class _CoprocessorMemoryAdapter:
    """Bridges the coprocessor's raw-byte interface onto Memory cells.

    UNUM values in memory are stored as encoded integers so MBB
    truncation and precision loss behave exactly like hardware."""

    def __init__(self, memory: Memory):
        self.memory = memory

    def load_bytes(self, address: int, n: int) -> bytes:
        return self.memory.load_bytes(address, n)

    def store_bytes(self, address: int, payload: bytes) -> None:
        self.memory.store_bytes(address, payload)


class UnumMachine:
    """Interprets an :class:`AsmModule`."""

    def __init__(self, asm: AsmModule,
                 accounting: Optional[CostAccounting] = None,
                 coprocessor: Optional[UnumCoprocessor] = None,
                 max_steps: int = 500_000_000):
        self.asm = asm
        self.accounting = accounting or CostAccounting(cache=None)
        self.memory = Memory(observer=self.accounting.memory_access)
        self.coprocessor = coprocessor or UnumCoprocessor(wgp=128)
        self.adapter = _CoprocessorMemoryAdapter(self.memory)
        self.max_steps = max_steps
        self.steps = 0
        self.stdout: List[str] = []
        self.scalar_cycles = 0

    # ------------------------------------------------------------ #

    @property
    def cycles(self) -> int:
        return self.scalar_cycles + self.coprocessor.cycles + \
            self.accounting.report.cycles

    def run(self, name: str, args: Optional[List[object]] = None):
        result = self.call(name, args or [])
        self.accounting.finalize(self.memory)
        return result

    # ------------------------------------------------------------ #

    def call(self, name: str, args: List[object]):
        func = self.asm.functions.get(name)
        if func is None:
            raise UnumMachineError(f"unknown function {name!r}")
        regs: Dict[PReg, object] = {}
        frame_base = self.memory.alloc_stack(max(8, func.frame_slots * 8))
        # Pre-write incoming arguments.
        for (reg, _cls), value in zip(func.arg_registers, args):
            if reg is None:
                continue  # spilled: fetched by argmv
            if isinstance(value, float) and reg.cls == "g":
                value = BigFloat.from_float(value, MAX_WGP)
            regs[reg] = value
        state = _ExecState(func, regs, frame_base, args)
        return self._execute(state)

    # ------------------------------------------------------------ #

    def _execute(self, state: "_ExecState"):
        func = state.func
        label_index = {b.label: i for i, b in enumerate(func.blocks)}
        block_i = 0
        inst_i = 0
        while True:
            block = func.blocks[block_i]
            if inst_i >= len(block.instructions):
                block_i += 1  # fall through
                inst_i = 0
                if block_i >= len(func.blocks):
                    raise UnumMachineError("fell off the end of function")
                continue
            inst = block.instructions[inst_i]
            self.steps += 1
            if self.steps > self.max_steps:
                raise UnumMachineError("instruction budget exceeded")
            outcome = self._step(inst, state)
            if outcome is None:
                inst_i += 1
            elif outcome[0] == "jump":
                block_i = label_index[outcome[1]]
                inst_i = 0
            elif outcome[0] == "ret":
                self.memory.stack_release(state.frame_base)
                return outcome[1]

    # ------------------------------------------------------------ #
    # Operand helpers
    # ------------------------------------------------------------ #

    def _read(self, state, op):
        if isinstance(op, Imm):
            return op.value
        if isinstance(op, PReg):
            value = state.regs.get(op)
            if value is None:
                if op.cls == "g":
                    raise UnumMachineError(f"read of uninitialized {op}")
                return 0
            return value
        if isinstance(op, VReg):
            raise UnumMachineError(
                "virtual register survived allocation: run regalloc first"
            )
        raise UnumMachineError(f"cannot read operand {op!r}")

    def _write(self, state, op, value) -> None:
        if not isinstance(op, PReg):
            raise UnumMachineError(f"cannot write operand {op!r}")
        state.regs[op] = value

    def _slot_addr(self, state, slot: StackSlot) -> int:
        return state.frame_base + slot.index

    def _apply_config(self, inst: AsmInst, state) -> None:
        """g-instructions assume their sucfg context was applied; the
        config metadata is only used for the wgp of immediate rounding."""

    # ------------------------------------------------------------ #
    # The instruction set
    # ------------------------------------------------------------ #

    def _step(self, inst: AsmInst, state):
        op = inst.opcode
        cop = self.coprocessor
        ops = inst.operands
        costs = self.accounting.costs

        def r(i):
            return self._read(state, ops[i])

        def w(value):
            self._write(state, ops[0], value)

        # ---- scalar integer ---------------------------------------- #
        if op in ("li", "mv", "la"):
            self.scalar_cycles += 1
            w(r(1) if op != "la" else self._global_addr(ops[1]))
            return None
        if op in ("add", "sub", "mul", "div", "rem", "divu", "remu", "and",
                  "or", "xor", "sll", "sra", "srl"):
            self.scalar_cycles += 1 if op not in ("mul", "div", "rem") else 3
            a, b = r(1), r(2)
            table = {
                "add": lambda: a + b, "sub": lambda: a - b,
                "mul": lambda: a * b,
                "div": lambda: _tdiv(a, b), "rem": lambda: a - _tdiv(a, b) * b,
                "divu": lambda: abs(a) // abs(b) if b else 0,
                "remu": lambda: abs(a) % abs(b) if b else 0,
                "and": lambda: a & b, "or": lambda: a | b,
                "xor": lambda: a ^ b,
                "sll": lambda: a << (b & 63), "sra": lambda: a >> (b & 63),
                "srl": lambda: (a & ((1 << 64) - 1)) >> (b & 63),
            }
            w(table[op]())
            return None
        if op.startswith("setcc."):
            self.scalar_cycles += 1
            w(int(_int_compare(op[6:], r(1), r(2))))
            return None

        # ---- scalar float ------------------------------------------- #
        if op in ("fli", "fmv"):
            self.scalar_cycles += 1
            w(float(r(1)))
            return None
        if op in ("fadd.d", "fsub.d", "fmul.d", "fdiv.d", "frem.d"):
            a, b = float(r(1)), float(r(2))
            cost = {"fadd.d": costs.f64_add, "fsub.d": costs.f64_add,
                    "fmul.d": costs.f64_mul, "fdiv.d": costs.f64_div,
                    "frem.d": costs.f64_div}[op]
            self.scalar_cycles += cost
            table = {"fadd.d": a + b, "fsub.d": a - b, "fmul.d": a * b,
                     "fdiv.d": (a / b if b != 0.0 else
                                math.copysign(math.inf, a) if a else
                                math.nan),
                     "frem.d": math.fmod(a, b) if b else math.nan}
            w(table[op])
            return None
        if op == "fneg.d":
            self.scalar_cycles += 1
            w(-float(r(1)))
            return None
        if op.startswith("fsetcc."):
            self.scalar_cycles += costs.f64_other
            w(int(_float_compare(op[7:], float(r(1)), float(r(2)))))
            return None
        if op in ("fcvt.d.w",):
            self.scalar_cycles += 2
            w(float(int(r(1))))
            return None
        if op in ("fcvt.w.d",):
            self.scalar_cycles += 2
            w(int(float(r(1))))
            return None
        if op.startswith("libm."):
            fn = {"sqrt": math.sqrt, "fabs": abs, "exp": math.exp,
                  "log": math.log, "pow": math.pow, "sin": math.sin,
                  "cos": math.cos, "floor": math.floor, "ceil": math.ceil,
                  "fmax": max, "fmin": min}[op[5:]]
            self.scalar_cycles += costs.f64_div * 2
            w(fn(*[float(self._read(state, o)) for o in ops[1:]]))
            return None

        # ---- memory -------------------------------------------------- #
        if op == "addsp":
            self.scalar_cycles += 1
            w(state.frame_base + int(r(1)))
            return None
        if op == "allocd":
            self.scalar_cycles += 2
            w(self.memory.alloc_stack(int(r(1))))
            return None
        if op == "alloch":
            self.scalar_cycles += costs.malloc
            self.accounting.report.heap_allocations += 1
            w(self.memory.alloc_heap(int(r(1))))
            return None
        if op == "freeh":
            self.scalar_cycles += costs.free
            self.memory.free_heap(int(r(0)))
            return None
        if op == "ld":
            self.scalar_cycles += 1
            w(self.memory.load(int(r(1)), 8, 0))
            return None
        if op == "sd":
            self.scalar_cycles += 1
            self.memory.store(int(r(1)), r(0), 8)
            return None
        if op == "fld":
            self.scalar_cycles += 1
            value = self.memory.load(int(r(1)), 8, 0.0)
            w(float(value) if value is not None else 0.0)
            return None
        if op == "fsd":
            self.scalar_cycles += 1
            self.memory.store(int(r(1)), float(r(0)), 8)
            return None
        if op == "memset":
            addr, _v, n = int(r(0)), r(1), int(r(2))
            self.scalar_cycles += 2 + n // 8
            for a in [a for a in self.memory.cells if addr <= a < addr + n]:
                del self.memory.cells[a]
            self.accounting.memory_access("w", addr, n)
            return None
        if op == "memcpy":
            dst, src, n = int(r(0)), int(r(1)), int(r(2))
            self.scalar_cycles += 2 + n // 4
            moved = [(a - src + dst, c) for a, c in
                     sorted(self.memory.cells.items()) if src <= a < src + n]
            for addr, cell in moved:
                self.memory.cells[addr] = cell
            self.accounting.memory_access("r", src, n)
            self.accounting.memory_access("w", dst, n)
            return None

        # ---- coprocessor configuration ------------------------------ #
        if op == "sucfg.ess":
            cop.set_ess(int(r(0)))
            return None
        if op == "sucfg.fss":
            cop.set_fss(int(r(0)))
            return None
        if op == "sucfg.wgp":
            cop.set_wgp(int(r(0)))
            return None
        if op == "sucfg.wgpu":
            fss = int(r(0))
            size = int(r(1)) if len(ops) > 1 else 0
            config = UnumConfig(cop.ess or 4, fss, size or None)
            cop.set_wgp(min(MAX_WGP, config.precision))
            return None
        if op == "sucfg.mbb":
            cop.set_mbb(int(r(0)))
            return None

        # ---- coprocessor data --------------------------------------- #
        if op == "gli":
            value = ops[1].value
            if not isinstance(value, BigFloat):
                value = BigFloat.from_float(float(value), cop.glayer.wgp)
            cop_reg = ops[0]
            state.regs[cop_reg] = value.round_to(cop.glayer.wgp)
            self.scalar_cycles += 2
            return None
        if op == "gmov":
            state.regs[ops[0]] = self._gread(state, ops[1]).round_to(
                cop.glayer.wgp)
            self.scalar_cycles += 1
            return None
        if op in ("gadd", "gsub", "gmul", "gdiv"):
            a = self._gread(state, ops[1])
            b = self._gread(state, ops[2])
            kernel = {"gadd": cop.glayer.add, "gsub": cop.glayer.sub,
                      "gmul": cop.glayer.mul, "gdiv": cop.glayer.div}[op]
            state.regs[ops[0]] = kernel(a, b)
            cop.stats.bump(op)
            return None
        if op == "gfma":
            a = self._gread(state, ops[1])
            b = self._gread(state, ops[2])
            c = self._gread(state, ops[3])
            state.regs[ops[0]] = cop.glayer.fma(a, b, c)
            cop.stats.bump(op)
            return None
        if op == "gsqrt":
            state.regs[ops[0]] = cop.glayer.sqrt(self._gread(state, ops[1]))
            cop.stats.bump(op)
            return None
        if op == "gabs":
            value = self._gread(state, ops[1])
            state.regs[ops[0]] = abs(value).round_to(cop.glayer.wgp)
            cop.stats.bump(op)
            return None
        if op == "gneg":
            state.regs[ops[0]] = cop.glayer.neg(self._gread(state, ops[1]))
            cop.stats.bump(op)
            return None
        if op == "gcvt.d.g":
            state.regs[ops[0]] = BigFloat.from_float(float(r(1)),
                                                     cop.glayer.wgp)
            cop.stats.bump(op)
            self.scalar_cycles += cop.glayer.cycle_model.cvt_cost
            return None
        if op == "gcvt.g.d":
            w(self._gread(state, ops[1]).to_float())
            cop.stats.bump(op)
            self.scalar_cycles += cop.glayer.cycle_model.cvt_cost
            return None
        if op == "gcvt.w.g":
            state.regs[ops[0]] = BigFloat.from_int(int(r(1)),
                                                   max(64, cop.glayer.wgp))
            cop.stats.bump(op)
            self.scalar_cycles += cop.glayer.cycle_model.cvt_cost
            return None
        if op == "gcvt.g.w":
            value = self._gread(state, ops[1])
            w(value.to_int() if value.is_finite() else 0)
            cop.stats.bump(op)
            self.scalar_cycles += cop.glayer.cycle_model.cvt_cost
            return None
        if op.startswith("gsetcc."):
            a = self._gread(state, ops[1])
            b = self._gread(state, ops[2])
            w(int(_bigfloat_compare(op[7:], a, b)))
            cop.stats.bump("gcmp")
            cop.add_cycles(cop.glayer.cycle_model.cmp_cost)
            return None
        if op == "ldu":
            address = int(r(1))
            cop_load_into = ops[0]
            config = cop.memory_config()
            cop._erratum_tick(config.size_bytes)
            raw = self.adapter.load_bytes(address, config.size_bytes)
            from ..unum.format import decode

            bits = int.from_bytes(raw, "little")
            state.regs[cop_load_into] = decode(bits, config).round_to(
                cop.glayer.wgp)
            cop.stats.loads += 1
            cop.stats.bytes_loaded += config.size_bytes
            cop.stats.bump("ldu")
            cop.add_cycles(cop.memory_model.cost(config.size_bytes))
            self.accounting.memory_access("r", address, config.size_bytes)
            return None
        if op == "stu":
            address = int(r(1))
            value = self._gread(state, ops[0])
            config = cop.memory_config()
            cop._erratum_tick(config.size_bytes)
            from ..unum.format import encode

            bits = encode(value, config)
            self.adapter.store_bytes(address,
                                     bits.to_bytes(config.size_bytes,
                                                   "little"))
            cop.stats.stores += 1
            cop.stats.bytes_stored += config.size_bytes
            cop.stats.bump("stu")
            cop.add_cycles(cop.memory_model.cost(config.size_bytes))
            return None

        # ---- control flow ------------------------------------------- #
        if op == "j":
            self.scalar_cycles += 1
            return ("jump", ops[0].name.lstrip("."))
        if op in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            self.scalar_cycles += 1
            a, b = r(0), r(1)
            if isinstance(a, float) or isinstance(b, float):
                taken = _float_compare(
                    {"beq": "oeq", "bne": "one", "blt": "olt",
                     "bge": "oge"}[op], float(a), float(b))
            else:
                taken = _int_compare(
                    {"beq": "eq", "bne": "ne", "blt": "slt", "bge": "sge",
                     "bltu": "ult", "bgeu": "uge"}[op], int(a), int(b))
            if taken:
                return ("jump", ops[2].name.lstrip("."))
            return None
        if op == "ret":
            self.scalar_cycles += 2
            value = self._read(state, ops[0]) if ops else None
            return ("ret", value)
        if op == "trap":
            raise UnumMachineError("trap executed")

        # ---- pseudos -------------------------------------------------- #
        if op.startswith("sel."):
            self.scalar_cycles += 1
            w(r(2) if r(1) else r(3))
            return None
        if op == "sizeu":
            self.scalar_cycles += 6
            ess, fss, size = int(r(1)), int(r(2)), int(r(3))
            config = UnumConfig(ess, fss, size or None)
            w(config.size_bytes)
            return None
        if op == "checkattr":
            self.scalar_cycles += 1
            if int(r(0)) != int(r(1)):
                raise UnumMachineError(
                    f"vpfloat attribute mismatch: {int(r(0))} != {int(r(1))}"
                )
            return None
        if op == "omp.begin":
            self.accounting.parallel_begin()
            return None
        if op == "omp.end":
            self.accounting.parallel_end()
            return None
        if op in ("atomic.begin", "atomic.end"):
            self.scalar_cycles += costs.atomic_section // 2
            return None
        if op == "print":
            value = r(0)
            if isinstance(value, BigFloat):
                from ..bigfloat import to_str

                self.stdout.append(to_str(value))
            else:
                self.stdout.append(str(value))
            return None
        if op == "argmv":
            self.scalar_cycles += 1
            w(state.args[int(r(1))])
            return None
        if op in ("ldspill", "fldspill", "gldspill"):
            self.scalar_cycles += 2
            addr = self._slot_addr(state, ops[1])
            default = BigFloat.zero(64) if op[0] == "g" else 0
            w(self.memory.load(addr, ops[1].size, default))
            return None
        if op in ("sdspill", "fsdspill", "gsdspill"):
            self.scalar_cycles += 2
            addr = self._slot_addr(state, ops[1])
            self.memory.store(addr, r(0), ops[1].size)
            return None
        if op == "call":
            result = self.call(str(ops[1]),
                               [self._read(state, o) for o in ops[2:]])
            self.scalar_cycles += costs.call_overhead
            w(result)
            return None
        if op == "call.void":
            self.call(str(ops[0]), [self._read(state, o) for o in ops[1:]])
            self.scalar_cycles += costs.call_overhead
            return None
        if op == "nop":
            self.scalar_cycles += 1
            return None
        raise UnumMachineError(f"unknown opcode {op!r}")

    # ------------------------------------------------------------ #

    def _gread(self, state, op) -> BigFloat:
        value = self._read(state, op)
        if isinstance(value, BigFloat):
            return value
        if isinstance(value, (int, float)):
            return BigFloat.from_float(float(value),
                                       self.coprocessor.glayer.wgp)
        raise UnumMachineError(f"not a g-layer value: {value!r}")

    def _global_addr(self, name) -> int:
        raise UnumMachineError("globals not supported by the UNUM machine")


class _ExecState:
    __slots__ = ("func", "regs", "frame_base", "args")

    def __init__(self, func: AsmFunction, regs, frame_base: int, args):
        self.func = func
        self.regs = regs
        self.frame_base = frame_base
        self.args = args


def _tdiv(a: int, b: int) -> int:
    if b == 0:
        raise UnumMachineError("division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _int_compare(pred: str, a: int, b: int) -> bool:
    ua, ub = a & ((1 << 64) - 1), b & ((1 << 64) - 1)
    return {
        "eq": a == b, "ne": a != b, "slt": a < b, "sle": a <= b,
        "sgt": a > b, "sge": a >= b, "ult": ua < ub, "ule": ua <= ub,
        "ugt": ua > ub, "uge": ua >= ub,
    }[pred]


def _float_compare(pred: str, a: float, b: float) -> bool:
    unordered = math.isnan(a) or math.isnan(b)
    base = {
        "oeq": a == b, "one": a != b, "olt": a < b, "ole": a <= b,
        "ogt": a > b, "oge": a >= b, "ueq": a == b, "une": a != b,
        "ord": not unordered, "uno": unordered,
    }[pred]
    if pred.startswith("o") and pred not in ("ord",):
        return base and not unordered
    return base


def _bigfloat_compare(pred: str, a: BigFloat, b: BigFloat) -> bool:
    unordered = a.is_nan() or b.is_nan()
    cmp = 0 if unordered else a.compare(b)
    if pred == "ord":
        return not unordered
    if pred == "uno":
        return unordered
    base = {
        "oeq": cmp == 0, "one": cmp != 0, "olt": cmp < 0, "ole": cmp <= 0,
        "ogt": cmp > 0, "oge": cmp >= 0, "ueq": cmp == 0, "une": cmp != 0,
    }[pred]
    if pred.startswith("o"):
        return base and not unordered
    return base or unordered
