"""IR interpreter: executes modules with full runtime-library support.

This is the "host execution" stand-in: it runs IR produced by codegen
(functional testing) and IR produced by the backends (MPFR-lowered code
calling ``mpfr_*``; Boost-baseline code), charging modeled cycles to a
:class:`~repro.runtime.cost_model.CostAccounting`.

Runtime semantics:

- integers wrap at their declared width; ``float`` (binary32) values are
  re-rounded through IEEE single precision after every operation;
- vpfloat SSA values are :class:`~repro.bigfloat.BigFloat`s computed at
  the precision the type's attributes resolve to *at runtime* -- constant
  or dynamic;
- ``__sizeof_vpfloat*`` validates attributes (raising
  :class:`VPRuntimeError` on out-of-range values, the paper's
  correctness-first choice) and returns the byte size;
- ``__vpfloat_check_attr`` implements the call-boundary attribute checks
  of paper Listing 3 (lines 14/17);
- the MPFR C API (``mpfr_init2``, ``mpfr_add_d``, ...) operates on
  handles stored in memory, so MPFR-lowered modules execute directly;
- ``__omp_parallel_begin/end`` bracket parallel regions for the
  bandwidth-contention model.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Dict, List, Optional

from .. import bigfloat
from ..bigfloat import BigFloat, MpfrLibrary, RNDN, arith
from ..ir import (
    AllocaInst,
    Argument,
    ArrayType,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ConstantString,
    ConstantVPFloat,
    FCmpInst,
    FloatType,
    FNegInst,
    Function,
    GEPInst,
    GlobalVariable,
    ICmpInst,
    Instruction,
    IntType,
    LoadInst,
    Module,
    PhiInst,
    PointerType,
    RetInst,
    SelectInst,
    StoreInst,
    StructType,
    UndefValue,
    UnreachableInst,
    Value,
    VPFloatType,
)
from ..ir.types import _validate_mpfr_attrs
from ..observability import (
    CAT_POOL,
    CAT_RUNTIME,
    current_ledger,
    current_metrics,
    current_tracer,
)
from ..unum import UnumConfig, UnumConfigError
from ..unum.posit import PositConfig, PositConfigError, posit_round
from .cost_model import CostAccounting
from .dispatch import CompiledFunction, FunctionCompiler, InterpreterProfile
from .memory import Memory


class VPRuntimeError(RuntimeError):
    """A runtime trap: failed attribute check, bad size, null deref..."""


class ExecutionLimitExceeded(RuntimeError):
    """The step budget ran out (guards against runaway loops)."""


class ExecutionResult:
    def __init__(self, value, report, stdout: List[str], profile=None):
        self.value = value
        self.report = report
        self.stdout = stdout
        #: :class:`~repro.runtime.dispatch.InterpreterProfile` when the
        #: run was profiled, else None.
        self.profile = profile


def _f32(x: float) -> float:
    """Round a Python float through IEEE binary32."""
    return struct.unpack("f", struct.pack("f", x))[0]


def _trunc_div(a: int, b: int) -> int:
    """C-style integer division (truncation toward zero)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _mask_int(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    if bits > 1 and value >> (bits - 1):
        value -= 1 << bits
    return value


class Frame:
    """Per-invocation SSA value bindings."""

    __slots__ = ("values", "function", "stack_mark")

    def __init__(self, function: Function, stack_mark: int):
        self.values: Dict[int, object] = {}
        self.function = function
        self.stack_mark = stack_mark

    def set(self, value: Value, runtime) -> None:
        self.values[id(value)] = runtime

    def get(self, value: Value) -> object:
        return self.values[id(value)]


class Interpreter:
    """Executes one module.

    ``dispatch`` selects the execution engine: ``"jit"`` compiles each
    IR function to straight-line Python source on first call
    (:mod:`repro.codegen.pyjit`), with per-function fallback to the
    fused closure tables for anything the emitter cannot prove static;
    ``"fast"`` (default) compiles each function's blocks to closure
    tables on first call (:mod:`repro.runtime.dispatch`) with
    superinstruction fusion of adjacent load+arith / arith+store /
    cmp+branch pairs; ``"unfused"`` uses the same closure tables
    without fusion; ``"legacy"`` walks the original per-instruction
    isinstance chain.  All four charge identical cycles.

    ``mpfr_pool`` enables the runtime free-list in the backing
    :class:`~repro.bigfloat.MpfrLibrary`: ``mpfr_clear`` parks handles
    for reuse by later ``mpfr_init2`` calls of the same precision,
    skipping the modeled allocator round-trip (the run-time counterpart
    of the lowering pass's static dead-object reuse, paper §III-C1).

    ``profile=True`` collects an :class:`InterpreterProfile` (per-opcode
    execution counts, per-builtin call counts and cycle attribution),
    exposed as ``self.profile`` and on each :class:`ExecutionResult`.
    """

    def __init__(self, module: Module,
                 accounting: Optional[CostAccounting] = None,
                 mpfr_library: Optional[MpfrLibrary] = None,
                 max_steps: int = 500_000_000,
                 dispatch: str = "fast",
                 profile: bool = False,
                 mpfr_pool: bool = False,
                 pool_limit: int = 1024,
                 codegen_store=None,
                 kernel_tier: str = "auto"):
        if dispatch not in ("jit", "fast", "unfused", "legacy"):
            raise ValueError(f"unknown dispatch mode {dispatch!r}")
        self.module = module
        self.accounting = accounting or CostAccounting(cache=None)
        self.memory = Memory(observer=self.accounting.memory_access)
        self.mpfr = mpfr_library or MpfrLibrary(pool=mpfr_pool,
                                                pool_limit=pool_limit)
        self.max_steps = max_steps
        self.steps = 0
        self.dispatch = dispatch
        self.profile: Optional[InterpreterProfile] = \
            InterpreterProfile() if profile else None
        #: Process-global telemetry, captured at construction so every
        #: hot-path hook is a bound local (or absent entirely).  Both
        #: are None unless repro.observability.enable_telemetry ran.
        self.tracer = current_tracer()
        self.metrics = current_metrics()
        #: Kernel-tier policy (auto/generic/small) for the jit engine's
        #: precision-specialized kernels; read by pyjit at bind time.
        self.kernel_tier = kernel_tier
        #: Per-tier op/site/fallback accounting -- only constructed when
        #: some observer (metrics registry or run ledger) will consume
        #: it, so unobserved runs bind the raw kernels with zero
        #: per-call overhead.
        self.tier_stats = None
        if self.metrics is not None or current_ledger() is not None:
            from ..codegen.smallfloat import TierStats

            self.tier_stats = TierStats()
        self.stdout: List[str] = []
        self.globals: Dict[str, int] = {}
        self._builtins: Dict[str, Callable] = {}
        #: (id(constant), attrs) -> rounded BigFloat; constants are pinned
        #: by the module so ids are stable.
        self._const_cache: Dict[tuple, BigFloat] = {}
        #: (id(vptype), *runtime attrs) -> (prec, size) for
        #: dynamic-attribute vpfloat types (constant-attribute types
        #: resolve once inside their compiled closures instead).
        self._vp_config_cache: Dict[tuple, tuple] = {}
        self._posit_config_cache: Dict[tuple, PositConfig] = {}
        self._unum_config_cache: Dict[tuple, UnumConfig] = {}
        self._validated_mpfr_attrs: set = set()
        self._mpfr_cost_cache: Dict[tuple, int] = {}
        self._compiled_functions: Dict[int, CompiledFunction] = {}
        self._compiler: Optional[FunctionCompiler] = None
        #: Shared codegen artifact store (jit engine): lets warm runs of
        #: a cached program skip re-emission.  Lazily created when the
        #: jit dispatch mode first materializes a function.
        self._codegen_store = codegen_store
        self._jit_engine = None
        #: Hot-block counts dict installed by the traced call path for
        #: the duration of one jit-engine call; None when untraced.
        self._block_counts: Optional[Dict[str, int]] = None
        #: Per-instruction profiling hook (legacy walker only); set by
        #: repro.observability.profile, never by the interpreter.
        self._inst_hook = None
        self._install_builtins()
        self._init_globals()

    # ------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------ #

    def run(self, name: str, args: Optional[List[object]] = None
            ) -> ExecutionResult:
        func = self.module.get_function(name)
        value = self.call_function(func, args or [])
        report = self.accounting.finalize(self.memory)
        return ExecutionResult(value, report, self.stdout,
                               profile=self.profile)

    # ------------------------------------------------------------ #
    # Globals
    # ------------------------------------------------------------ #

    def _init_globals(self) -> None:
        for g in self.module.globals.values():
            size = self._sizeof(g.value_type, None)
            addr = self.memory.alloc_global(size)
            self.globals[g.name] = addr
            if g.initializer is not None:
                value = self._constant(g.initializer, None, g.value_type)
                self.memory.store(addr, value, size)

    # ------------------------------------------------------------ #
    # Type helpers (frame needed for dynamic vpfloat attributes)
    # ------------------------------------------------------------ #

    def _attr(self, attr: Value, frame: Optional[Frame]) -> int:
        if isinstance(attr, ConstantInt):
            return attr.value
        if frame is None:
            raise VPRuntimeError("dynamic vpfloat attribute outside a frame")
        return int(frame.get(attr))

    def vp_config(self, vptype: VPFloatType, frame: Optional[Frame]):
        """(precision_bits, size_bytes) for a vpfloat type at runtime.

        Attribute values are always read fresh (from the type's constant
        or the current frame), so a frame that mutates a dynamic
        attribute mid-loop resolves against the *current* value; only
        the derived config objects are cached, keyed by attribute value.
        """
        if vptype.format == "posit":
            config = self._posit_config(self._attr(vptype.exp_attr, frame),
                                        self._attr(vptype.prec_attr, frame))
            # Working precision for the exact intermediate; the tapered
            # rounding to the format happens per operation.
            return config.max_fraction_bits + 1, config.size_bytes
        if vptype.format == "unum":
            config = self._unum_config(vptype, frame)
            return config.precision, config.size_bytes
        exp = self._attr(vptype.exp_attr, frame)
        prec = self._attr(vptype.prec_attr, frame)
        key = (exp, prec)
        if key not in self._validated_mpfr_attrs:
            try:
                _validate_mpfr_attrs(exp, prec)
            except ValueError as e:
                raise VPRuntimeError(str(e)) from e
            self._validated_mpfr_attrs.add(key)
        return prec, 24 + bigfloat.limb_bytes(prec)

    def _posit_config(self, es: int, max_bits: int) -> PositConfig:
        key = (es, max_bits)
        config = self._posit_config_cache.get(key)
        if config is None:
            try:
                config = PositConfig(es, max_bits)
            except PositConfigError as e:
                raise VPRuntimeError(str(e)) from e
            self._posit_config_cache[key] = config
        return config

    def _unum_config(self, vptype: VPFloatType,
                     frame: Optional[Frame]) -> UnumConfig:
        ess = self._attr(vptype.exp_attr, frame)
        fss = self._attr(vptype.prec_attr, frame)
        size = (self._attr(vptype.size_attr, frame)
                if vptype.size_attr is not None else None)
        if size == 0:
            size = None
        key = (ess, fss, size)
        config = self._unum_config_cache.get(key)
        if config is None:
            try:
                config = UnumConfig(ess, fss, size)
            except UnumConfigError as e:
                raise VPRuntimeError(str(e)) from e
            self._unum_config_cache[key] = config
        return config

    def _sizeof(self, type, frame: Optional[Frame]) -> int:
        if isinstance(type, VPFloatType):
            return self.vp_config(type, frame)[1]
        if isinstance(type, ArrayType):
            return type.count * self._sizeof(type.element, frame)
        if isinstance(type, StructType):
            return max(8, sum(self._sizeof(f, frame) for f in type.fields))
        return type.size_bytes()

    def _default(self, type, frame: Optional[Frame]):
        if isinstance(type, IntType):
            return 0
        if isinstance(type, FloatType):
            return 0.0
        if isinstance(type, VPFloatType):
            prec, _ = self.vp_config(type, frame)
            return BigFloat.zero(prec)
        if isinstance(type, PointerType):
            return 0
        return 0

    # ------------------------------------------------------------ #
    # Constants
    # ------------------------------------------------------------ #

    def _constant(self, c: Constant, frame: Optional[Frame],
                  type=None) -> object:
        if isinstance(c, ConstantInt):
            return c.value
        if isinstance(c, ConstantFloat):
            return _f32(c.value) if c.type.bits == 32 else c.value
        if isinstance(c, ConstantVPFloat):
            prec, _ = self.vp_config(c.type, frame)
            key = (id(c), prec)
            cached = self._const_cache.get(key)
            if cached is not None:
                return cached
            if c.type.format == "posit":
                rounded = self._posit_round(c.value, c.type, frame)
            elif c.type.format == "unum":
                from ..unum import decode as _ud, encode as _ue

                config = self._unum_config(c.type, frame)
                rounded = _ud(_ue(c.value, config), config)
            else:
                rounded = c.value.round_to(prec)
            self._const_cache[key] = rounded
            return rounded
        if isinstance(c, ConstantPointerNull):
            return 0
        if isinstance(c, ConstantString):
            return c.text
        if isinstance(c, UndefValue):
            return self._default(c.type, frame)
        raise VPRuntimeError(f"cannot evaluate constant {c!r}")

    def _value(self, v: Value, frame: Frame) -> object:
        if isinstance(v, Constant):
            return self._constant(v, frame)
        if isinstance(v, GlobalVariable):
            return self.globals[v.name]
        if isinstance(v, Function):
            return v
        return frame.get(v)

    # ------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------ #

    def call_function(self, func: Function, args: List[object]) -> object:
        if func.is_declaration:
            return self._call_builtin(func.name, args, None, None)
        if len(args) != len(func.args):
            raise VPRuntimeError(
                f"{func.name}() takes {len(func.args)} argument(s), "
                f"got {len(args)}"
            )
        if self.tracer is not None:
            return self._call_function_traced(func, args)
        if self.dispatch == "jit" and self.profile is None:
            entry = self._jit_entry(func)
            if entry is not None:
                return entry(*args)
        if self.dispatch != "legacy":
            return self._call_compiled(func, args)
        return self._call_legacy(func, args, None)

    def _call_legacy(self, func: Function, args: List[object],
                     block_counts: Optional[Dict[str, int]]) -> object:
        costs = self.accounting.costs
        self.accounting.charge("call", costs.call_overhead)
        mark = self.memory.stack_mark()
        frame = Frame(func, mark)
        for arg, value in zip(func.args, args):
            frame.set(arg, value)
        block = func.entry
        prev_block = None
        while True:
            if block_counts is not None:
                block_counts[block.name] = \
                    block_counts.get(block.name, 0) + 1
            # Phi nodes first (values computed from the edge taken).
            phis = block.phis()
            if phis:
                staged = [(phi, self._value(phi.incoming_for_block(prev_block),
                                            frame)) for phi in phis]
                for phi, value in staged:
                    frame.set(phi, value)
            outcome = self._run_block(block, frame)
            if outcome[0] == "ret":
                self.memory.stack_release(mark)
                self.accounting.charge("ret", costs.ret)
                return outcome[1]
            prev_block, block = block, outcome[1]

    def _call_function_traced(self, func: Function,
                              args: List[object]) -> object:
        """Span-wrapped function call with hot-block attribution.

        Only reached when a tracer is installed; charges exactly what
        the untraced paths charge (spans record wall-clock, never
        modeled cycles), so reports stay bit-identical."""
        tracer = self.tracer
        report = self.accounting.report
        cycles0 = report.cycles
        instructions0 = report.instructions
        counts: Dict[str, int] = {}
        with tracer.span(f"call:{func.name}", cat=CAT_RUNTIME) as span:
            entry = None
            if self.dispatch == "jit" and self.profile is None:
                entry = self._jit_entry(func)
            if entry is not None:
                previous = self._block_counts
                self._block_counts = counts
                try:
                    value = entry(*args)
                finally:
                    self._block_counts = previous
            elif self.dispatch != "legacy":
                value = self._call_compiled_counting(func, args, counts)
            else:
                value = self._call_legacy(func, args, counts)
            span.args["cycles"] = report.cycles - cycles0
            span.args["instructions"] = report.instructions - instructions0
            if counts:
                hot = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
                span.args["hot_blocks"] = [
                    {"block": name, "executions": n} for name, n in hot
                ]
        return value

    def _call_compiled(self, func: Function, args: List[object]) -> object:
        """Fast-path execution over precompiled closure tables.

        Instruction and step counters advance in block-sized strides, so
        the execution-limit check may trip up to one block earlier than
        the legacy per-instruction check; everything else (values,
        cycles, memory traffic, error behavior) is identical.
        """
        compiled = self._compiled_functions.get(id(func))
        if compiled is None:
            compiled = self._compile_function(func)
        costs = self.accounting.costs
        self.accounting.charge("call", costs.call_overhead)
        mark = self.memory.stack_mark()
        frame = Frame(func, mark)
        values = frame.values
        for arg, value in zip(func.args, args):
            values[id(arg)] = value
        report = self.accounting.report
        max_steps = self.max_steps
        profile = self.profile
        block = compiled.entry
        prev = None
        while True:
            moves = block.phi_moves.get(prev)
            if moves is not None:
                # Stage all reads before any write (phi edge semantics).
                staged = [(key, getter(frame)) for key, getter in moves]
                for key, value in staged:
                    values[key] = value
            count = block.count
            self.steps += count
            if self.steps > max_steps:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_steps} interpreted instructions"
                )
            report.instructions += count
            if profile is not None:
                profile.count_block(block.tally)
            for step in block.steps:
                step(frame)
            outcome = block.terminator(frame)
            if outcome.__class__ is tuple:
                self.memory.stack_release(mark)
                self.accounting.charge("ret", costs.ret)
                return outcome[1]
            prev = block.bid
            block = outcome

    def _compile_function(self, func: Function) -> CompiledFunction:
        if self._compiler is None:
            # jit fallback functions execute on the fused tables: the
            # closure engine's fastest configuration.
            self._compiler = FunctionCompiler(
                self, fuse=(self.dispatch in ("fast", "jit")))
        compiled = self._compiler.compile(func)
        self._compiled_functions[id(func)] = compiled
        return compiled

    def _jit_entry(self, func: Function):
        """The specialized callable for ``func``, or None when the
        emitter fell back (closure tables take over)."""
        engine = self._jit_engine
        if engine is None:
            from ..codegen.pyjit import JitEngine

            engine = JitEngine(self, self._codegen_store)
            self._jit_engine = engine
        return engine.entry(func)

    def _call_compiled_counting(self, func: Function, args: List[object],
                                block_counts: Dict[str, int]) -> object:
        """Tracing twin of :meth:`_call_compiled`: identical charging
        and semantics, plus per-block execution counts for hot-block
        span attribution.  Kept separate so the untraced fast path
        carries no per-block branch."""
        compiled = self._compiled_functions.get(id(func))
        if compiled is None:
            compiled = self._compile_function(func)
        costs = self.accounting.costs
        self.accounting.charge("call", costs.call_overhead)
        mark = self.memory.stack_mark()
        frame = Frame(func, mark)
        values = frame.values
        for arg, value in zip(func.args, args):
            values[id(arg)] = value
        report = self.accounting.report
        max_steps = self.max_steps
        profile = self.profile
        block = compiled.entry
        prev = None
        while True:
            moves = block.phi_moves.get(prev)
            if moves is not None:
                staged = [(key, getter(frame)) for key, getter in moves]
                for key, value in staged:
                    values[key] = value
            block_counts[block.name] = block_counts.get(block.name, 0) + 1
            count = block.count
            self.steps += count
            if self.steps > max_steps:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_steps} interpreted instructions"
                )
            report.instructions += count
            if profile is not None:
                profile.count_block(block.tally)
            for step in block.steps:
                step(frame)
            outcome = block.terminator(frame)
            if outcome.__class__ is tuple:
                self.memory.stack_release(mark)
                self.accounting.charge("ret", costs.ret)
                return outcome[1]
            prev = block.bid
            block = outcome

    def _run_block(self, block, frame: Frame):
        profile = self.profile
        hook = self._inst_hook
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                continue
            self.steps += 1
            if self.steps > self.max_steps:
                raise ExecutionLimitExceeded(
                    f"exceeded {self.max_steps} interpreted instructions"
                )
            self.accounting.instruction()
            if profile is not None:
                profile.count_opcode(inst.opcode)
            if hook is not None:
                # IR profiler (observability.profile): the hook wraps
                # _execute, measuring per-instruction deltas; charges
                # are untouched, so reports stay bit-identical.
                result = hook(block, inst, frame)
            else:
                result = self._execute(inst, frame)
            if isinstance(inst, RetInst):
                return ("ret", result)
            if isinstance(inst, BranchInst):
                return ("br", result)
        raise VPRuntimeError(f"block {block.name} fell off the end")

    # ------------------------------------------------------------ #
    # Instruction dispatch
    # ------------------------------------------------------------ #

    def _execute(self, inst: Instruction, frame: Frame):
        costs = self.accounting.costs
        if isinstance(inst, BinaryInst):
            frame.set(inst, self._binary(inst, frame))
            return None
        if isinstance(inst, LoadInst):
            addr = self._value(inst.pointer, frame)
            nbytes = self._sizeof(inst.type, frame)
            default = self._default(inst.type, frame)
            value = self.memory.load(int(addr), nbytes, default)
            frame.set(inst, value)
            return None
        if isinstance(inst, StoreInst):
            addr = self._value(inst.pointer, frame)
            value = self._value(inst.value, frame)
            nbytes = self._sizeof(inst.value.type, frame)
            self.memory.store(int(addr), value, nbytes)
            return None
        if isinstance(inst, AllocaInst):
            count = 1
            if inst.count is not None:
                count = int(self._value(inst.count, frame))
                if count < 0:
                    raise VPRuntimeError("negative VLA extent")
            elem = self._sizeof(inst.allocated_type, frame)
            addr = self.memory.alloc_stack(elem * max(count, 1))
            frame.set(inst, addr)
            self.accounting.charge("alloca", costs.int_op)
            return None
        if isinstance(inst, GEPInst):
            frame.set(inst, self._gep(inst, frame))
            self.accounting.charge("addr", costs.int_op)
            return None
        if isinstance(inst, ICmpInst):
            frame.set(inst, self._icmp(inst, frame))
            self.accounting.charge("icmp", costs.int_op)
            return None
        if isinstance(inst, FCmpInst):
            frame.set(inst, self._fcmp(inst, frame))
            self.accounting.charge("fcmp", costs.f64_other)
            return None
        if isinstance(inst, CastInst):
            frame.set(inst, self._cast(inst, frame))
            self.accounting.charge("cast", costs.int_op)
            return None
        if isinstance(inst, FNegInst):
            value = self._value(inst.operands[0], frame)
            if isinstance(value, BigFloat):
                frame.set(inst, -value)
            elif inst.type.is_float and inst.type.bits == 32:
                frame.set(inst, _f32(-value))
            else:
                frame.set(inst, -value)
            self.accounting.charge("fneg", costs.f64_other)
            return None
        if isinstance(inst, SelectInst):
            cond = self._value(inst.condition, frame)
            chosen = inst.true_value if cond else inst.false_value
            frame.set(inst, self._value(chosen, frame))
            self.accounting.charge("select", costs.int_op)
            return None
        if isinstance(inst, PhiInst):
            return None
        if isinstance(inst, CallInst):
            frame.set(inst, self._call(inst, frame))
            return None
        if isinstance(inst, BranchInst):
            self.accounting.charge("branch", costs.branch)
            if inst.is_conditional:
                cond = self._value(inst.condition, frame)
                return inst.targets[0] if cond else inst.targets[1]
            return inst.targets[0]
        if isinstance(inst, RetInst):
            if inst.value is None:
                return None
            return self._value(inst.value, frame)
        if isinstance(inst, UnreachableInst):
            raise VPRuntimeError("executed unreachable instruction")
        raise VPRuntimeError(f"cannot interpret {inst.opcode}")

    # ------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------ #

    def _binary(self, inst: BinaryInst, frame: Frame):
        a = self._value(inst.lhs, frame)
        b = self._value(inst.rhs, frame)
        op = inst.opcode
        costs = self.accounting.costs
        if inst.type.is_vpfloat:
            prec, _ = self.vp_config(inst.type, frame)
            kernel = {"fadd": arith.add, "fsub": arith.sub,
                      "fmul": arith.mul, "fdiv": arith.div}.get(op)
            if kernel is None:
                raise VPRuntimeError(f"{op} unsupported on vpfloat")
            work = prec + 8 if inst.type.format == "posit" else prec
            registry = self.metrics
            if registry is not None:
                registry.observe(f"precision.op.{op}.bits", prec)
                registry.observe("precision.guard_bits", work - prec)
                registry.inc("precision.rounding." + RNDN.value)
            a = self._as_bigfloat(a, work)
            b = self._as_bigfloat(b, work)
            words = max(1, prec // 64)
            self.accounting.charge("vpfloat_native",
                                   costs.f64_other * words)
            result = kernel(a, b, work, RNDN)
            if inst.type.format == "posit":
                # Tapered rounding: round the exact result to the nearest
                # representable posit.
                result = self._posit_round(result, inst.type, frame)
            elif inst.type.format == "mpfr":
                result = self._clamp_mpfr_exponent(result, inst.type, frame)
            return result
        if inst.type.is_float:
            table = {"fadd": lambda: a + b, "fsub": lambda: a - b,
                     "fmul": lambda: a * b, "frem": lambda: math.fmod(a, b),
                     "fdiv": lambda: (a / b if b != 0.0 else
                                      math.copysign(math.inf, a)
                                      if a != 0.0 else math.nan)}
            result = table[op]()
            cost = {"fadd": costs.f64_add, "fsub": costs.f64_add,
                    "fmul": costs.f64_mul, "fdiv": costs.f64_div,
                    "frem": costs.f64_div}[op]
            self.accounting.charge("f64", cost)
            return _f32(result) if inst.type.bits == 32 else result
        # Integer ops.
        self.accounting.charge("int", costs.int_op)
        bits = inst.type.bits
        ua = a & ((1 << bits) - 1)
        ub = b & ((1 << bits) - 1)
        if op == "add":
            raw = a + b
        elif op == "sub":
            raw = a - b
        elif op == "mul":
            raw = a * b
        elif op == "sdiv":
            if b == 0:
                raise VPRuntimeError("integer division by zero")
            raw = _trunc_div(a, b)  # C truncation semantics
        elif op == "srem":
            if b == 0:
                raise VPRuntimeError("integer remainder by zero")
            raw = a - _trunc_div(a, b) * b
        elif op == "udiv":
            if ub == 0:
                raise VPRuntimeError("integer division by zero")
            raw = ua // ub
        elif op == "urem":
            if ub == 0:
                raise VPRuntimeError("integer remainder by zero")
            raw = ua % ub
        elif op == "and":
            raw = a & b
        elif op == "or":
            raw = a | b
        elif op == "xor":
            raw = a ^ b
        elif op == "shl":
            raw = a << (b & (bits - 1))
        elif op == "ashr":
            raw = a >> (b & (bits - 1))
        elif op == "lshr":
            raw = ua >> (b & (bits - 1))
        else:
            raise VPRuntimeError(f"unknown integer op {op}")
        return _mask_int(raw, bits)

    def _clamp_mpfr_exponent(self, value: BigFloat, vptype,
                             frame) -> BigFloat:
        """Enforce the declared exponent-field width (the *exp-info*
        attribute): finite results whose MPFR-style exponent exceeds the
        signed range overflow to infinity / underflow to zero, like
        mpfr_set_emin/emax would arrange."""
        if not value.is_finite() or value.is_zero():
            return value
        exp_bits = self._attr(vptype.exp_attr, frame)
        limit = 1 << (exp_bits - 1)
        exponent = value.exponent()
        if exponent > limit:
            return BigFloat.inf(value.prec, value.sign)
        if exponent < -limit:
            return BigFloat.zero(value.prec, value.sign)
        return value

    def _posit_round(self, value: BigFloat, vptype, frame) -> BigFloat:
        # Attributes are read from the frame on every call (they may be
        # dynamic and change between iterations); only the validated
        # PositConfig object is cached, keyed by attribute value.
        config = self._posit_config(self._attr(vptype.exp_attr, frame),
                                    self._attr(vptype.prec_attr, frame))
        return posit_round(value, config)

    def _as_bigfloat(self, value, prec: int) -> BigFloat:
        if isinstance(value, BigFloat):
            return value
        if isinstance(value, float):
            return BigFloat.from_float(value, max(prec, 53))
        if isinstance(value, int):
            return BigFloat.from_int(value, max(prec, 64))
        raise VPRuntimeError(f"cannot coerce {type(value).__name__} to vpfloat")

    def _icmp(self, inst: ICmpInst, frame: Frame) -> int:
        a = self._value(inst.operands[0], frame)
        b = self._value(inst.operands[1], frame)
        bits = inst.operands[0].type.bits \
            if inst.operands[0].type.is_integer else 64
        ua = a & ((1 << bits) - 1)
        ub = b & ((1 << bits) - 1)
        pred = inst.predicate
        table = {
            "eq": a == b, "ne": a != b,
            "slt": a < b, "sle": a <= b, "sgt": a > b, "sge": a >= b,
            "ult": ua < ub, "ule": ua <= ub, "ugt": ua > ub, "uge": ua >= ub,
        }
        return 1 if table[pred] else 0

    def _fcmp(self, inst: FCmpInst, frame: Frame) -> int:
        return self._fcmp_values(self._value(inst.operands[0], frame),
                                 self._value(inst.operands[1], frame),
                                 inst.predicate)

    def _fcmp_values(self, a, b, pred: str) -> int:
        if isinstance(a, BigFloat) or isinstance(b, BigFloat):
            prec = 64
            a = self._as_bigfloat(a, prec)
            b = self._as_bigfloat(b, prec)
            unordered = a.is_nan() or b.is_nan()
            cmp = 0 if unordered else a.compare(b)
        else:
            unordered = math.isnan(a) or math.isnan(b)
            cmp = 0 if unordered else (-1 if a < b else (1 if a > b else 0))
        if pred == "ord":
            return 0 if unordered else 1
        if pred == "uno":
            return 1 if unordered else 0
        ordered_result = {
            "oeq": cmp == 0, "one": cmp != 0, "olt": cmp < 0,
            "ole": cmp <= 0, "ogt": cmp > 0, "oge": cmp >= 0,
            "ueq": cmp == 0, "une": cmp != 0,
        }[pred]
        if pred.startswith("o"):
            return 0 if unordered else (1 if ordered_result else 0)
        return 1 if (unordered or ordered_result) else 0

    def _cast(self, inst: CastInst, frame: Frame):
        return self._cast_value(inst, self._value(inst.source, frame), frame)

    def _cast_value(self, inst: CastInst, value, frame: Frame):
        opcode = inst.opcode
        target = inst.type
        if opcode in ("zext", "sext", "trunc"):
            bits = target.bits
            if opcode == "zext":
                src_bits = inst.source.type.bits
                return value & ((1 << src_bits) - 1)
            return _mask_int(int(value), bits)
        if opcode == "bitcast":
            return value
        if opcode in ("ptrtoint", "inttoptr"):
            return int(value)
        if opcode in ("sitofp", "uitofp"):
            if target.is_vpfloat:
                prec, _ = self.vp_config(target, frame)
                if target.format == "posit":
                    return self._posit_round(
                        BigFloat.from_int(int(value), max(prec + 8, 64)),
                        target, frame)
                return BigFloat.from_int(int(value), prec)
            result = float(int(value))
            return _f32(result) if target.bits == 32 else result
        if opcode == "fptosi":
            if isinstance(value, BigFloat):
                if not value.is_finite():
                    raise VPRuntimeError("fptosi of non-finite vpfloat")
                return _mask_int(value.to_int(), target.bits)
            return _mask_int(int(value), target.bits)
        if opcode in ("fpext", "fptrunc"):
            return _f32(value) if target.bits == 32 else float(value)
        if opcode == "vpconv":
            if isinstance(value, int) and not isinstance(value, bool):
                raise VPRuntimeError(
                    "vpconv applied to a raw pointer/integer -- a backend "
                    "lowering left a stale conversion behind"
                )
            if target.is_vpfloat:
                prec, _ = self.vp_config(target, frame)
                if target.format == "posit":
                    return self._posit_round(
                        self._as_bigfloat(value, prec + 8), target, frame)
                return self._as_bigfloat(value, prec).round_to(prec)
            # vpfloat -> IEEE
            result = value.to_float() if isinstance(value, BigFloat) \
                else float(value)
            return _f32(result) if target.bits == 32 else result
        raise VPRuntimeError(f"unknown cast {opcode}")

    def _gep(self, inst: GEPInst, frame: Frame) -> int:
        addr = int(self._value(inst.pointer, frame))
        indices = inst.indices
        pointee = inst.pointer.type.pointee
        first = int(self._value(indices[0], frame))
        addr += first * self._sizeof(pointee, frame)
        current = pointee
        for index in indices[1:]:
            i = int(self._value(index, frame))
            if isinstance(current, ArrayType):
                addr += i * self._sizeof(current.element, frame)
                current = current.element
            elif isinstance(current, StructType):
                addr += current.field_offset(i)
                current = current.fields[i]
            else:
                raise VPRuntimeError(f"gep into scalar {current}")
        return addr

    # ------------------------------------------------------------ #
    # Calls
    # ------------------------------------------------------------ #

    def _call(self, inst: CallInst, frame: Frame):
        args = [self._value(a, frame) for a in inst.operands]
        callee = inst.callee
        if isinstance(callee, Function) and not callee.is_declaration:
            return self.call_function(callee, args)
        name = callee.name if isinstance(callee, Function) else str(callee)
        return self._call_builtin(name, args, inst, frame)

    def _call_builtin(self, name: str, args, inst, frame):
        handler = self._builtins.get(name)
        if handler is None:
            raise VPRuntimeError(f"call to unknown runtime function {name!r}")
        profile = self.profile
        if profile is not None:
            before = self.accounting.report.cycles
            result = handler(args, inst, frame)
            profile.record_builtin(name,
                                   self.accounting.report.cycles - before)
            return result
        return handler(args, inst, frame)

    # ------------------------------------------------------------ #
    # Runtime library
    # ------------------------------------------------------------ #

    def _install_builtins(self) -> None:
        b = self._builtins
        costs = self.accounting.costs

        def charge(category, cycles):
            self.accounting.charge(category, cycles)

        # ---- vpfloat runtime ------------------------------------ #

        def sizeof_vpfloat(args, inst, frame):
            ess, fss, size = (int(a) for a in args)
            charge("runtime_check", costs.call_overhead)
            try:
                config = UnumConfig(ess, fss, size if size else None)
            except UnumConfigError as e:
                raise VPRuntimeError(f"__sizeof_vpfloat: {e}") from e
            return config.size_bytes

        def sizeof_vpfloat_mpfr(args, inst, frame):
            exp, prec = int(args[0]), int(args[1])
            charge("runtime_check", costs.call_overhead)
            from ..ir.types import _validate_mpfr_attrs

            try:
                _validate_mpfr_attrs(exp, prec)
            except ValueError as e:
                raise VPRuntimeError(f"__sizeof_vpfloat_mpfr: {e}") from e
            return 24 + bigfloat.limb_bytes(prec)

        def check_attr(args, inst, frame):
            actual, expected = int(args[0]), int(args[1])
            charge("runtime_check", costs.int_op)
            if actual != expected:
                raise VPRuntimeError(
                    f"vpfloat attribute mismatch at call boundary: "
                    f"argument carries {actual}, callee requires {expected} "
                    f"(paper Listing 3 runtime check)"
                )
            return None

        b["__sizeof_vpfloat"] = sizeof_vpfloat
        b["__sizeof_vpfloat_mpfr"] = sizeof_vpfloat_mpfr
        b["__vpfloat_check_attr"] = check_attr
        b["vpfloat.attr.keepalive"] = lambda args, inst, frame: None

        # ---- OpenMP markers ------------------------------------- #

        b["__omp_parallel_begin"] = \
            lambda args, inst, frame: self.accounting.parallel_begin()
        b["__omp_parallel_end"] = \
            lambda args, inst, frame: self.accounting.parallel_end()

        def atomic_begin(args, inst, frame):
            charge("atomic", costs.atomic_section)
            return None

        b["__omp_atomic_begin"] = atomic_begin
        b["__omp_atomic_end"] = lambda args, inst, frame: None
        b["__vpfloat_mutex_lock"] = atomic_begin
        b["__vpfloat_mutex_unlock"] = lambda args, inst, frame: None

        # ---- allocation ------------------------------------------ #

        def do_malloc(args, inst, frame):
            charge("malloc", costs.malloc)
            self.accounting.report.heap_allocations += 1
            return self.memory.alloc_heap(int(args[0]))

        def do_free(args, inst, frame):
            charge("free", costs.free)
            self.memory.free_heap(int(args[0]))
            return None

        b["malloc"] = do_malloc
        b["free"] = do_free

        def do_memset(args, inst, frame):
            # Object-cell memory: zero-fill is the only pattern the
            # compiler emits (loop idiom); clear the cells in range.
            addr, _value, nbytes = int(args[0]), args[1], int(args[2])
            charge("memset", costs.int_op + int(nbytes) // 8)
            for a in [a for a in self.memory.cells
                      if addr <= a < addr + nbytes]:
                del self.memory.cells[a]
            self.accounting.memory_access("w", addr, nbytes)
            return None

        def do_memcpy(args, inst, frame):
            dst, src, nbytes = int(args[0]), int(args[1]), int(args[2])
            charge("memcpy", costs.int_op + int(nbytes) // 4)
            moved = [(a - src + dst, cell) for a, cell in
                     sorted(self.memory.cells.items())
                     if src <= a < src + nbytes]
            for target_addr, cell in moved:
                self.memory.cells[target_addr] = cell
            self.accounting.memory_access("r", src, nbytes)
            self.accounting.memory_access("w", dst, nbytes)
            return None

        b["memset"] = do_memset
        b["memcpy"] = do_memcpy

        # ---- I/O -------------------------------------------------- #

        def print_value(args, inst, frame):
            value = args[0]
            if isinstance(value, int):
                # After MPFR lowering, vpfloat prints receive an object
                # address; resolve the handle when one lives there.
                cell = self.memory.cells.get(value)
                if cell is not None and hasattr(cell[0], "prec") and \
                        hasattr(cell[0], "value"):
                    value = cell[0].value
            if isinstance(value, BigFloat):
                self.stdout.append(bigfloat.to_str(value))
            elif isinstance(value, float):
                self.stdout.append(repr(value))
            else:
                self.stdout.append(str(value))
            return None

        b["print_double"] = print_value
        b["print_int"] = print_value
        b["print_vpfloat"] = print_value

        # ---- IEEE math ------------------------------------------- #

        def ieee(fn, cost):
            def handler(args, inst, frame):
                charge("libm", cost)
                return fn(*[float(a) for a in args])

            return handler

        b["sqrt"] = ieee(math.sqrt, costs.f64_div)
        b["fabs"] = ieee(abs, costs.f64_other)
        b["exp"] = ieee(math.exp, costs.f64_div * 2)
        b["log"] = ieee(math.log, costs.f64_div * 2)
        b["pow"] = ieee(math.pow, costs.f64_div * 3)
        b["sin"] = ieee(math.sin, costs.f64_div * 2)
        b["cos"] = ieee(math.cos, costs.f64_div * 2)
        b["floor"] = ieee(math.floor, costs.f64_other)
        b["ceil"] = ieee(math.ceil, costs.f64_other)
        b["fmax"] = ieee(max, costs.f64_other)
        b["fmin"] = ieee(min, costs.f64_other)

        # ---- vpfloat math ----------------------------------------- #

        def vpmath(kernel, quadratic=True):
            def handler(args, inst, frame):
                result_type = inst.type
                is_vp = result_type.is_vpfloat
                prec, _ = self.vp_config(result_type, frame) \
                    if is_vp else (53, 8)
                operands = [self._as_bigfloat(a, prec) for a in args]
                words = max(1, prec // 64)
                charge("vp_math",
                       costs.f64_div * (words * words if quadratic else words))
                result = kernel(*operands, prec)
                return result if is_vp else result.to_float()

            return handler

        b["vp.sqrt"] = vpmath(lambda a, prec: bigfloat.sqrt(a, prec))
        b["vp.fabs"] = vpmath(lambda a, prec: abs(a).round_to(prec), False)
        b["vp.exp"] = vpmath(lambda a, prec: bigfloat.exp(a, prec))
        b["vp.log"] = vpmath(lambda a, prec: bigfloat.log(a, prec))
        b["vp.sin"] = vpmath(lambda a, prec: bigfloat.sin(a, prec))
        b["vp.cos"] = vpmath(lambda a, prec: bigfloat.cos(a, prec))
        b["vp.pow"] = vpmath(lambda a, b_, prec: bigfloat.pow(a, b_, prec))

        def vp_fused(kernel):
            def handler(args, inst, frame):
                result_type = inst.type
                is_vp = result_type.is_vpfloat
                prec, _ = self.vp_config(result_type, frame) \
                    if is_vp else (53, 8)
                work = prec + 8 if (is_vp and
                                    result_type.format == "posit") else prec
                a, bb, c = (self._as_bigfloat(v, work) for v in args)
                words = max(1, prec // 64)
                charge("vp_math", costs.f64_mul * words * words)
                result = kernel(a, bb, c, work)
                if is_vp and result_type.format == "posit":
                    result = self._posit_round(result, result_type, frame)
                return result if is_vp else result.to_float()

            return handler

        b["vp.fma"] = vp_fused(arith.fma)
        b["vp.fms"] = vp_fused(arith.fms)

        self._install_mpfr_builtins()

    # ------------------------------------------------------------ #
    # MPFR C API (used by MPFR-lowered and Boost-lowered modules)
    # ------------------------------------------------------------ #

    def _mpfr_handle(self, addr: int):
        handle = self.memory.load(int(addr), 8)
        if handle is None:
            raise VPRuntimeError(
                f"use of uninitialized MPFR object at {int(addr):#x}"
            )
        return handle

    def _install_mpfr_builtins(self) -> None:
        b = self._builtins
        costs = self.accounting.costs
        report = self.accounting.report
        charge = self.accounting.charge
        cost_cache = self._mpfr_cost_cache

        by_cat = report.by_category
        mem_load = self.memory.load
        mpfr_op_cost = costs.mpfr_op_cost
        # Telemetry is bound once at install time: handlers built with
        # registry/tracer None carry no telemetry code on their path.
        registry = self.metrics
        tracer = self.tracer

        if registry is not None:
            observe_bits = registry.observe

            def charge_mpfr(name, prec):
                report.mpfr_calls += 1
                key = (name, prec)
                cycles = cost_cache.get(key)
                if cycles is None:
                    cycles = mpfr_op_cost(name, prec)
                    cost_cache[key] = cycles
                report.cycles += cycles
                by_cat["mpfr"] += cycles
                observe_bits("precision.mpfr.bits", prec)
        else:
            def charge_mpfr(name, prec):
                report.mpfr_calls += 1
                key = (name, prec)
                cycles = cost_cache.get(key)
                if cycles is None:
                    cycles = mpfr_op_cost(name, prec)
                    cost_cache[key] = cycles
                report.cycles += cycles
                by_cat["mpfr"] += cycles

        pool_hit_cycles = costs.mpfr_call_overhead + costs.mpfr_pool_hit_extra
        pool_release_cycles = (costs.mpfr_call_overhead
                               + costs.mpfr_pool_release_extra)

        def init2(args, inst, frame):
            addr, prec = int(args[0]), int(args[1])
            exp_bits = int(args[2]) if len(args) > 2 and args[2] else None
            var, reused = self.mpfr.acquire(prec, exp_bits)
            self.memory.store(addr, var, 8)
            if reused:
                # Free-list hit: the handle and its limb block (still at
                # var.limb_addr) are recycled in place -- no allocator
                # round-trip, no new heap footprint.  This is the runtime
                # counterpart of the lowering pass's dead-object reuse.
                report.mpfr_calls += 1
                charge("mpfr", pool_hit_cycles)
                return None
            report.mpfr_allocations += 1
            report.heap_allocations += 1
            # The struct's limb array is heap memory: model its footprint
            # for the cache/bandwidth accounting.
            var.limb_addr = self.memory.alloc_heap(bigfloat.limb_bytes(prec))
            charge_mpfr("mpfr_init2", prec)
            return None

        def clear(args, inst, frame):
            var = self._mpfr_handle(args[0])
            prec = var.prec
            if self.mpfr.release(var):
                # Parked on the free list: the limb heap block stays
                # allocated for the next acquire of this precision.
                report.mpfr_calls += 1
                charge("mpfr", pool_release_cycles)
                return None
            self.memory.free_heap(var.limb_addr)
            charge_mpfr("mpfr_clear", prec)
            return None

        if tracer is not None:
            # Per-call pool spans would swamp the trace (millions of
            # events); instead emit a counter sample of the cumulative
            # pool traffic every 256 acquire/release operations.
            pool_stats = self.mpfr.stats
            pool_ops = [0]
            emit_counter = tracer.counter

            def _pool_sample():
                pool_ops[0] += 1
                if not pool_ops[0] % 256:
                    emit_counter("mpfr.pool", {
                        "hits": pool_stats.pool_hits,
                        "misses": pool_stats.pool_misses,
                        "releases": pool_stats.pool_releases,
                    })

            _plain_init2, _plain_clear = init2, clear

            def init2(args, inst, frame):
                result = _plain_init2(args, inst, frame)
                _pool_sample()
                return result

            def clear(args, inst, frame):
                result = _plain_clear(args, inst, frame)
                _pool_sample()
                return result

        b["mpfr_init2"] = init2
        b["mpfr_clear"] = clear

        STRUCT_BYTES = 24  # sizeof(__mpfr_struct)

        def array_init(args, inst, frame):
            """Equivalent of the per-element mpfr_init2 loop the real
            backend emits for vpfloat arrays (cost charged per element)."""
            base, count, prec = int(args[0]), int(args[1]), int(args[2])
            exp_bits = int(args[3]) if len(args) > 3 and args[3] else 0
            for i in range(count):
                init2([base + i * STRUCT_BYTES, prec, exp_bits], inst,
                      frame)
            return None

        def array_clear(args, inst, frame):
            base, count = int(args[0]), int(args[1])
            for i in range(count):
                addr = base + i * STRUCT_BYTES
                handle = self.memory.load(addr, 8)
                if handle is not None and getattr(handle, "alive", False):
                    clear([addr], inst, frame)
            return None

        b["__mpfr_array_init"] = array_init
        b["__mpfr_array_clear"] = array_clear

        cache_model = self.accounting.cache
        limb_bytes_cache: dict = {}

        if cache_model is not None:
            def touch_limbs(var, kind):
                prec = var.prec
                nbytes = limb_bytes_cache.get(prec)
                if nbytes is None:
                    nbytes = bigfloat.limb_bytes(prec)
                    limb_bytes_cache[prec] = nbytes
                before = cache_model.access_cycles
                cache_model.access(kind, var.limb_addr, nbytes)
                report.cycles += cache_model.access_cycles - before
        else:
            def touch_limbs(var, kind):
                return None

        # Handlers bind the MpfrLibrary method once at install time (no
        # per-call getattr), memoize per-(name, prec) cycle costs, and
        # inline the handle load + cost charge (these run once per
        # dynamic MPFR call -- the hottest path in lowered kernels).

        def _uninitialized(addr):
            return VPRuntimeError(
                f"use of uninitialized MPFR object at {int(addr):#x}")

        def unary(method_name):
            method = getattr(self.mpfr, method_name)
            call_name = f"mpfr_{method_name}"

            def handler(args, inst, frame):
                dst = mem_load(int(args[0]), 8)
                src = mem_load(int(args[1]), 8)
                if dst is None or src is None:
                    raise _uninitialized(args[0] if dst is None else args[1])
                method(dst, src)
                touch_limbs(src, "r")
                touch_limbs(dst, "w")
                charge_mpfr(call_name, dst.prec)
                return None

            return handler

        def binary(method_name):
            method = getattr(self.mpfr, method_name)
            call_name = f"mpfr_{method_name}"

            if registry is not None:
                def handler(args, inst, frame):
                    dst = mem_load(int(args[0]), 8)
                    a = mem_load(int(args[1]), 8)
                    bb = mem_load(int(args[2]), 8)
                    if dst is None or a is None or bb is None:
                        raise _uninitialized(
                            args[0] if dst is None else
                            args[1] if a is None else args[2])
                    method(dst, a, bb)
                    touch_limbs(a, "r")
                    touch_limbs(bb, "r")
                    touch_limbs(dst, "w")
                    charge_mpfr(call_name, dst.prec)
                    return None

                return handler

            def handler(args, inst, frame):
                dst = mem_load(int(args[0]), 8)
                a = mem_load(int(args[1]), 8)
                bb = mem_load(int(args[2]), 8)
                if dst is None or a is None or bb is None:
                    raise _uninitialized(
                        args[0] if dst is None else
                        args[1] if a is None else args[2])
                method(dst, a, bb)
                touch_limbs(a, "r")
                touch_limbs(bb, "r")
                touch_limbs(dst, "w")
                prec = dst.prec
                report.mpfr_calls += 1
                key = (call_name, prec)
                cycles = cost_cache.get(key)
                if cycles is None:
                    cycles = mpfr_op_cost(call_name, prec)
                    cost_cache[key] = cycles
                report.cycles += cycles
                by_cat["mpfr"] += cycles
                return None

            return handler

        def binary_scalar(method_name):
            method = getattr(self.mpfr, method_name)
            call_name = f"mpfr_{method_name}"

            def handler(args, inst, frame):
                dst = mem_load(int(args[0]), 8)
                a = mem_load(int(args[1]), 8)
                if dst is None or a is None:
                    raise _uninitialized(args[0] if dst is None else args[1])
                method(dst, a, args[2])
                touch_limbs(a, "r")
                touch_limbs(dst, "w")
                charge_mpfr(call_name, dst.prec)
                return None

            return handler

        def scalar_first(method_name):
            method = getattr(self.mpfr, method_name)
            call_name = f"mpfr_{method_name}"

            def handler(args, inst, frame):
                dst = mem_load(int(args[0]), 8)
                a = mem_load(int(args[2]), 8)
                if dst is None or a is None:
                    raise _uninitialized(args[0] if dst is None else args[2])
                method(dst, args[1], a)
                touch_limbs(a, "r")
                touch_limbs(dst, "w")
                charge_mpfr(call_name, dst.prec)
                return None

            return handler

        for op in ("add", "sub", "mul", "div", "pow"):
            b[f"mpfr_{op}"] = binary(op)
        for op in ("add", "sub", "mul", "div"):
            b[f"mpfr_{op}_d"] = binary_scalar(f"{op}_d")
            b[f"mpfr_{op}_si"] = binary_scalar(f"{op}_si")
        b["mpfr_d_sub"] = scalar_first("d_sub")
        b["mpfr_d_div"] = scalar_first("d_div")
        for op in ("neg", "abs", "sqrt", "exp", "log", "sin", "cos"):
            b[f"mpfr_{op}"] = unary(op)

        def fma_like(method_name):
            method = getattr(self.mpfr, method_name)
            call_name = f"mpfr_{method_name}"

            def handler(args, inst, frame):
                dst = self._mpfr_handle(args[0])
                a = self._mpfr_handle(args[1])
                bb = self._mpfr_handle(args[2])
                c = self._mpfr_handle(args[3])
                method(dst, a, bb, c)
                for v in (a, bb, c):
                    touch_limbs(v, "r")
                touch_limbs(dst, "w")
                charge_mpfr(call_name, dst.prec)
                return None

            return handler

        b["mpfr_fma"] = fma_like("fma")
        b["mpfr_fms"] = fma_like("fms")

        def mpfr_set(args, inst, frame):
            dst = self._mpfr_handle(args[0])
            src = self._mpfr_handle(args[1])
            self.mpfr.set(dst, src)
            touch_limbs(src, "r")
            touch_limbs(dst, "w")
            charge_mpfr("mpfr_set", dst.prec)
            return None

        def mpfr_set_scalar(method_name):
            method = getattr(self.mpfr, method_name)
            call_name = f"mpfr_{method_name}"

            def handler(args, inst, frame):
                dst = self._mpfr_handle(args[0])
                method(dst, args[1])
                touch_limbs(dst, "w")
                charge_mpfr(call_name, dst.prec)
                return None

            return handler

        def mpfr_swap(args, inst, frame):
            a = self._mpfr_handle(args[0])
            bb = self._mpfr_handle(args[1])
            self.mpfr.swap(a, bb)
            charge_mpfr("mpfr_swap", a.prec)
            return None

        b["mpfr_swap"] = mpfr_swap
        b["mpfr_set"] = mpfr_set
        b["mpfr_set_d"] = mpfr_set_scalar("set_d")
        b["mpfr_set_si"] = mpfr_set_scalar("set_si")
        b["mpfr_set_str"] = mpfr_set_scalar("set_str")

        def mpfr_set_bigfloat(args, inst, frame):
            """Internal entry used by lowered ConstantVPFloat stores."""
            dst = self._mpfr_handle(args[0])
            value = args[1]
            dst.value = value.round_to(dst.prec) if isinstance(value, BigFloat) \
                else BigFloat.from_float(float(value), dst.prec)
            touch_limbs(dst, "w")
            charge_mpfr("mpfr_set", dst.prec)
            return None

        b["__mpfr_set_literal"] = mpfr_set_bigfloat

        def mpfr_load_global(args, inst, frame):
            """Read a first-class global cell into an MPFR object."""
            dst = self._mpfr_handle(args[0])
            cell = self.memory.load(int(args[1]), 8)
            value = cell if isinstance(cell, BigFloat) \
                else BigFloat.zero(dst.prec)
            dst.value = value.round_to(dst.prec)
            touch_limbs(dst, "w")
            charge_mpfr("mpfr_set", dst.prec)
            return None

        def mpfr_store_global(args, inst, frame):
            src = self._mpfr_handle(args[1])
            self.memory.store(int(args[0]), src.value, 8)
            touch_limbs(src, "r")
            charge_mpfr("mpfr_set", src.prec)
            return None

        b["__mpfr_load_global"] = mpfr_load_global
        b["__mpfr_store_global"] = mpfr_store_global

        def mpfr_cmp(args, inst, frame):
            a = self._mpfr_handle(args[0])
            bb = self._mpfr_handle(args[1])
            charge_mpfr("mpfr_cmp", a.prec)
            return self.mpfr.cmp(a, bb)

        def mpfr_cmp_d(args, inst, frame):
            a = self._mpfr_handle(args[0])
            charge_mpfr("mpfr_cmp", a.prec)
            return self.mpfr.cmp_d(a, float(args[1]))

        def mpfr_get_d(args, inst, frame):
            a = self._mpfr_handle(args[0])
            charge_mpfr("mpfr_get_d", a.prec)
            return self.mpfr.get_d(a)

        def mpfr_get_si(args, inst, frame):
            a = self._mpfr_handle(args[0])
            charge_mpfr("mpfr_get_si", a.prec)
            return self.mpfr.get_si(a)

        b["mpfr_cmp"] = mpfr_cmp
        b["mpfr_cmp_d"] = mpfr_cmp_d
        b["mpfr_get_d"] = mpfr_get_d
        b["mpfr_get_si"] = mpfr_get_si
