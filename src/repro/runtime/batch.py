"""Batched SoA execution: one IR dispatch amortized over N lanes.

A :class:`VPBatch` holds N independent same-precision vpfloat values in
structure-of-arrays form -- parallel ``kind``/``sign``/``mant``/``exp``
lane lists plus the shared precision -- so the specializing jit engine
can execute one IR program across the whole batch: every dispatched
instruction (and every modeled cycle, cache access, and MPFR call
charge) happens once, while the precision-specialized batched kernels
(:mod:`repro.codegen.batch_kernels`) do N lanes of mantissa arithmetic
in a single fused loop.

The batch runs in **lockstep SPMD**: integer and pointer SSA values
stay uniform scalars, one shared :class:`~repro.runtime.memory.Memory`
sees exactly the address stream of a serial run, and cost accounting
runs once -- modeled costs are value-independent, so the single
:class:`~repro.runtime.cost_model.CostReport` is bit-identical to what
*each* lane would report from its own serial run.  Anything that would
break lockstep raises:

* :class:`BatchDivergence` -- a comparison or scalar conversion
  (``mpfr_cmp``, ``fcmp``, ``mpfr_get_d``, ``fptosi``, printing)
  produced different results across lanes, so control flow or integer
  state would fork;
* :class:`BatchUnsupported` -- the program needs a construct the
  batched engine cannot run in lockstep (a function the jit emitter
  fell back on, non-mpfr vpfloat formats, scalar coercion of a batch).

Callers (``CompiledProgram.run_batch``) catch both and re-run each
lane serially -- correct by construction, counted in telemetry.

Scalar-fallback lanes inside a batched op (NaN/Inf operands, negative
sqrt, unary transcendentals, ``mpfr_pow``) are handled per lane by the
generic library routines -- bit-identical to serial by construction --
and counted via :meth:`BatchContext.note`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..bigfloat import arith
from ..bigfloat.mpfr_api import MpfrLibrary, MpfrVar
from ..bigfloat.number import BigFloat, Kind
from ..bigfloat.rounding import RNDN, RoundingMode, round_significand
from .interpreter import Interpreter, VPRuntimeError, _f32, _mask_int

__all__ = [
    "VPBatch",
    "BatchContext",
    "BatchDivergence",
    "BatchUnsupported",
    "BatchMpfrLibrary",
    "BatchInterpreter",
    "BatchResult",
]

#: Kind <-> uint8 codes for the numpy SoA interchange.
_KIND_CODES = {Kind.FINITE: 0, Kind.ZERO: 1, Kind.INF: 2, Kind.NAN: 3}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}
#: Code -> Kind lookup list for materializing array-backed lane lists.
_U64_KINDS = [Kind.FINITE, Kind.ZERO, Kind.INF, Kind.NAN]


class BatchDivergence(RuntimeError):
    """Lanes disagreed where lockstep execution needs one answer."""


class BatchUnsupported(RuntimeError):
    """The program used a construct the batched engine cannot run."""


def _numpy():
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy is baked in
        raise RuntimeError(
            "VPBatch structure-of-arrays interchange requires numpy; "
            "install it or keep batches in lane-list form"
        ) from exc
    return numpy


class VPBatch:
    """N same-precision vpfloat values, structure-of-arrays.

    ``kind``/``sign``/``mant``/``exp`` are parallel lane lists (Kind
    enums, 0/1 sign bits, normalized integer significands of exactly
    ``prec`` bits for finite lanes, binary exponents); ``prec`` is
    shared.  Treated as immutable: every operation builds fresh lane
    lists, so batches may be shared freely (broadcast NaN templates,
    stored global cells).

    The lane lists are *lazy*: the single-limb numpy kernel tier
    (:mod:`repro.codegen.batch_np_kernels`) builds batches directly
    from uint64 result arrays (``_from_u64``) and caches the array
    form of operand batches in ``_u64``, so chained vectorized ops
    (a gemm accumulator flowing op to op) never convert to lists and
    back.  Reading a lane attribute materializes the lists on demand;
    every existing consumer -- the generic fused-loop kernels, lane
    extraction, comparisons -- sees the class it always saw.
    """

    __slots__ = ("_kind", "_sign", "_mant", "_exp", "prec", "_u64")

    def __init__(self, kind: list, sign: list, mant: list, exp: list,
                 prec: int):
        self._kind = kind
        self._sign = sign
        self._mant = mant
        self._exp = exp
        self.prec = prec
        self._u64 = None

    @classmethod
    def _from_u64(cls, u64, prec: int) -> "VPBatch":
        """Array-backed batch: ``u64`` is the numpy-tier lane tuple
        (kind codes uint8, sign uint8, mant uint64, exp int64, simple
        flag); the lane lists materialize only if someone asks."""
        batch = cls.__new__(cls)
        batch._kind = None
        batch._sign = None
        batch._mant = None
        batch._exp = None
        batch.prec = prec
        batch._u64 = u64
        return batch

    def _materialize(self) -> None:
        codes, sign, mant, exp = self._u64[:4]
        kinds = _U64_KINDS
        self._kind = [kinds[c] for c in codes.tolist()]
        self._sign = sign.tolist()
        self._mant = mant.tolist()
        self._exp = exp.tolist()

    @property
    def kind(self) -> list:
        if self._kind is None:
            self._materialize()
        return self._kind

    @property
    def sign(self) -> list:
        if self._sign is None:
            self._materialize()
        return self._sign

    @property
    def mant(self) -> list:
        if self._mant is None:
            self._materialize()
        return self._mant

    @property
    def exp(self) -> list:
        if self._exp is None:
            self._materialize()
        return self._exp

    def __len__(self) -> int:
        if self._kind is not None:
            return len(self._kind)
        return len(self._u64[0])

    # -------------------------------------------------------- #
    # Construction / extraction
    # -------------------------------------------------------- #

    @classmethod
    def broadcast(cls, value: BigFloat, n: int) -> "VPBatch":
        """All ``n`` lanes hold ``value``."""
        return cls([value.kind] * n, [value.sign] * n, [value.mant] * n,
                   [value.exp] * n, value.prec)

    @classmethod
    def from_lanes(cls, values: Sequence[BigFloat]) -> "VPBatch":
        if not values:
            raise ValueError("a VPBatch needs at least one lane")
        prec = values[0].prec
        for v in values:
            if v.prec != prec:
                raise ValueError(
                    f"mixed lane precisions in batch: {v.prec} != {prec}")
        return cls([v.kind for v in values], [v.sign for v in values],
                   [v.mant for v in values], [v.exp for v in values],
                   prec)

    def lane(self, i: int) -> BigFloat:
        return BigFloat(self.kind[i], self.sign[i], self.mant[i],
                        self.exp[i], self.prec)

    def lanes(self) -> List[BigFloat]:
        return [self.lane(i) for i in range(len(self.kind))]

    def uniform_lane(self) -> BigFloat:
        """The single value all lanes hold (bit-level comparison, so
        uniform NaN lanes qualify); :class:`BatchDivergence` if lanes
        differ."""
        kinds, signs, mants, exps = self.kind, self.sign, self.mant, self.exp
        k0, s0, m0, e0 = kinds[0], signs[0], mants[0], exps[0]
        for i in range(1, len(kinds)):
            if (kinds[i] is not k0 or signs[i] != s0
                    or mants[i] != m0 or exps[i] != e0):
                raise BatchDivergence(
                    "batch lanes diverged where a single value is needed")
        return BigFloat(k0, s0, m0, e0, self.prec)

    # -------------------------------------------------------- #
    # Rounding (mirrors BigFloat.round_to per lane)
    # -------------------------------------------------------- #

    def round_to(self, prec: int,
                 rm: RoundingMode = RNDN) -> "VPBatch":
        if prec == self.prec:
            # Normalized mantissas already have exactly ``prec`` bits;
            # same-precision rounding is the identity.
            return self
        kinds, signs, mants, exps = self.kind, self.sign, self.mant, self.exp
        n = len(kinds)
        out_m = [0] * n
        out_e = [0] * n
        finite = Kind.FINITE
        for i in range(n):
            if kinds[i] is finite:
                m, e, _ = round_significand(signs[i], mants[i], exps[i],
                                            prec, rm)
                out_m[i] = m
                out_e[i] = e
        return VPBatch(list(kinds), list(signs), out_m, out_e, prec)

    # -------------------------------------------------------- #
    # Structure-of-arrays interchange (numpy)
    # -------------------------------------------------------- #

    def to_soa(self) -> dict:
        """Numpy structure-of-arrays view: ``kind``/``sign`` uint8
        vectors, ``exp`` int64, and a ``(N, words)`` uint64 limb
        matrix (little-endian 64-bit words of the significand)."""
        np = _numpy()
        n = len(self.kind)
        words = max(1, (self.prec + 63) // 64)
        kind = np.fromiter((_KIND_CODES[k] for k in self.kind),
                           dtype=np.uint8, count=n)
        sign = np.fromiter(self.sign, dtype=np.uint8, count=n)
        exp = np.fromiter(self.exp, dtype=np.int64, count=n)
        limbs = np.zeros((n, words), dtype=np.uint64)
        mask = (1 << 64) - 1
        for i, mant in enumerate(self.mant):
            for w in range(words):
                if not mant:
                    break
                limbs[i, w] = mant & mask
                mant >>= 64
        return {"kind": kind, "sign": sign, "exp": exp, "limbs": limbs,
                "prec": self.prec}

    @classmethod
    def from_soa(cls, soa: dict) -> "VPBatch":
        limbs = soa["limbs"]
        n, words = limbs.shape
        mants = []
        for i in range(n):
            mant = 0
            for w in range(words - 1, -1, -1):
                mant = (mant << 64) | int(limbs[i, w])
            mants.append(mant)
        return cls([_CODE_KINDS[int(code)] for code in soa["kind"]],
                   [int(s) for s in soa["sign"]], mants,
                   [int(e) for e in soa["exp"]], int(soa["prec"]))

    def __repr__(self) -> str:
        return (f"<VPBatch lanes={len(self.kind)} prec={self.prec}>")


class BatchContext:
    """Per-run batch telemetry: lane count, batched-op and
    scalar-fallback counters, and the per-op occupancy histogram
    (percentage of lanes served by the fused fast path)."""

    __slots__ = ("lanes", "ops", "fast_lanes", "scalar_fallbacks",
                 "occupancy", "divergences", "serial_fallback_lanes",
                 "kernel_tier", "np_ops", "np_lanes", "np_bailouts",
                 "_nan_cache")

    def __init__(self, lanes: int, kernel_tier: str = "auto"):
        if lanes < 1:
            raise ValueError(f"batch needs >= 1 lane, got {lanes}")
        self.lanes = lanes
        self.ops = 0
        self.fast_lanes = 0
        self.scalar_fallbacks = 0
        self.occupancy: Dict[int, int] = {}
        self.divergences = 0
        self.serial_fallback_lanes = 0
        #: Kernel-tier policy ("auto"/"small" allow the numpy tier,
        #: "generic" forces the fused-loop kernels) and the numpy-tier
        #: counters (ops/lanes served, per-call eligibility bailouts).
        self.kernel_tier = kernel_tier
        self.np_ops = 0
        self.np_lanes = 0
        self.np_bailouts = 0
        self._nan_cache: Dict[int, VPBatch] = {}

    def note(self, n: int, slow: int) -> None:
        """One batched op over ``n`` lanes, ``slow`` of which took the
        per-lane library fallback."""
        self.ops += 1
        self.fast_lanes += n - slow
        if slow:
            self.scalar_fallbacks += slow
        occ = ((n - slow) * 100) // n
        occupancy = self.occupancy
        occupancy[occ] = occupancy.get(occ, 0) + 1

    def nan_batch(self, prec: int) -> VPBatch:
        """Shared broadcast-NaN template (``mpfr_init`` leaves NaN)."""
        batch = self._nan_cache.get(prec)
        if batch is None:
            batch = VPBatch.broadcast(BigFloat.nan(prec), self.lanes)
            self._nan_cache[prec] = batch
        return batch

    def flush(self, registry) -> None:
        """Fold the counters into a MetricsRegistry (None is a no-op)."""
        if registry is None:
            return
        registry.inc("batch.executions")
        registry.inc("batch.lanes", self.lanes)
        registry.inc("batch.ops", self.ops)
        registry.inc("batch.fast_lanes", self.fast_lanes)
        registry.inc("batch.scalar_fallbacks", self.scalar_fallbacks)
        if self.divergences:
            registry.inc("batch.divergence_bailouts", self.divergences)
        if self.serial_fallback_lanes:
            registry.inc("batch.serial_fallback_lanes",
                         self.serial_fallback_lanes)
        if self.np_ops:
            registry.inc("kernel.tier.batch_np.ops", self.np_ops)
            registry.inc("kernel.tier.batch_np.lanes", self.np_lanes)
        if self.np_bailouts:
            registry.inc("kernel.tier.batch_np.bailouts",
                         self.np_bailouts)
        registry.observe("batch.size", self.lanes)
        for occ, count in self.occupancy.items():
            registry.observe("batch.occupancy", occ, count)


def _same_scalar(a, b) -> bool:
    """NaN-aware equality for uniform-lane guards."""
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)
    return a == b


class BatchMpfrLibrary(MpfrLibrary):
    """MPFR call surface over VPBatch values.

    The interpreter's mpfr builtins bind ``self.mpfr`` methods, so
    overriding the arithmetic/assignment/comparison entry points here
    makes every non-inlined handler batch-aware with no interpreter
    changes.  Statistics bumps mirror the base class (one API call per
    batched op); modeled-cycle charging lives in the interpreter
    handlers and is untouched, which is what keeps the shared
    CostReport bit-identical to a serial lane.
    """

    #: arith kernels with a fused batched implementation.
    _BATCH_OPS = {arith.add: "add", arith.sub: "sub",
                  arith.mul: "mul", arith.div: "div"}

    def __init__(self, ctx: BatchContext, pool: bool = False,
                 pool_limit: int = 1024):
        super().__init__(pool=pool, pool_limit=pool_limit)
        self.ctx = ctx
        self._kernels: dict = {}

    # -------------------------------------------------------- #
    # Kernels
    # -------------------------------------------------------- #

    def batch_kernel(self, op: str, prec: int, rm: RoundingMode,
                     exp_bits: Optional[int]):
        key = (op, prec, rm, exp_bits)
        kernel = self._kernels.get(key)
        if kernel is None:
            from ..codegen.batch_kernels import select_batch_kernel
            kernel = select_batch_kernel(op, prec, rm, exp_bits,
                                         self.ctx)
            self._kernels[key] = kernel
        return kernel

    def _clamped(self, value: BigFloat,
                 exp_bits: Optional[int]) -> BigFloat:
        """Per-lane twin of :meth:`MpfrLibrary._clamp`."""
        if exp_bits is None or value.kind is not Kind.FINITE:
            return value
        limit = 1 << (exp_bits - 1)
        exponent = value.exponent()
        if exponent > limit:
            return BigFloat.inf(value.prec, value.sign)
        if exponent < -limit:
            return BigFloat.zero(value.prec, value.sign)
        return value

    def _lanewise(self, kernel, operands, prec, rm, exp_bits) -> VPBatch:
        """Apply a generic library routine per lane (every lane counts
        as a scalar fallback)."""
        ctx = self.ctx
        n = ctx.lanes
        for v in operands:
            if type(v) is VPBatch:
                n = len(v.kind)
                break
        out = []
        for i in range(n):
            lane_args = [v.lane(i) if type(v) is VPBatch else v
                         for v in operands]
            out.append(self._clamped(kernel(*lane_args, prec, rm),
                                     exp_bits))
        ctx.note(n, n)
        return VPBatch.from_lanes(out)

    # -------------------------------------------------------- #
    # Lifetime: fresh/pooled handles start as broadcast NaN
    # -------------------------------------------------------- #

    def acquire(self, prec, exp_bits=None):
        var, pooled = super().acquire(prec, exp_bits)
        var.value = self.ctx.nan_batch(prec)
        return var, pooled

    # -------------------------------------------------------- #
    # Assignment (``set`` and ``swap`` inherit: VPBatch.round_to
    # and attribute swapping already do the right thing)
    # -------------------------------------------------------- #

    def set_d(self, dst, value, rm=RNDN):
        self._check(dst)
        dst.value = VPBatch.broadcast(
            BigFloat.from_float(value, dst.prec, rm), self.ctx.lanes)
        self.stats.sets += 1
        self.stats.bump("mpfr_set_d")

    def set_si(self, dst, value, rm=RNDN):
        self._check(dst)
        dst.value = VPBatch.broadcast(
            BigFloat.from_int(value, dst.prec, rm), self.ctx.lanes)
        self.stats.sets += 1
        self.stats.bump("mpfr_set_si")

    def set_str(self, dst, text, rm=RNDN):
        from ..bigfloat import convert
        self._check(dst)
        dst.value = VPBatch.broadcast(
            convert.from_str(text, dst.prec, rm), self.ctx.lanes)
        self.stats.sets += 1
        self.stats.bump("mpfr_set_str")

    # -------------------------------------------------------- #
    # Arithmetic
    # -------------------------------------------------------- #

    def _binary(self, name, kernel, dst, a, b, rm):
        self._check(dst, a, b)
        op = self._BATCH_OPS.get(kernel)
        if op is None:  # mpfr_pow: generic routine, per-lane
            dst.value = self._lanewise(kernel, (a.value, b.value),
                                       dst.prec, rm, dst.exp_bits)
        else:
            dst.value = self.batch_kernel(op, dst.prec, rm,
                                          dst.exp_bits)(a.value, b.value)
        self.stats.ops += 1
        self.stats.bump(name)

    def _binary_scalar(self, name, kernel, dst, a, scalar, rm,
                       reverse=False):
        self._check(dst, a)
        other = BigFloat.from_value(
            float(scalar) if isinstance(scalar, float) else scalar,
            max(dst.prec, 64),
        )
        lhs, rhs = (other, a.value) if reverse else (a.value, other)
        op = self._BATCH_OPS.get(kernel)
        if op is None:
            dst.value = self._lanewise(kernel, (lhs, rhs), dst.prec, rm,
                                       dst.exp_bits)
        else:
            dst.value = self.batch_kernel(op, dst.prec, rm,
                                          dst.exp_bits)(lhs, rhs)
        self.stats.ops += 1
        self.stats.specialized_ops += 1
        self.stats.bump(name)

    def fma(self, dst, a, b, c, rm=RNDN):
        self._check(dst, a, b, c)
        dst.value = self.batch_kernel("fma", dst.prec, rm, dst.exp_bits)(
            a.value, b.value, c.value)
        self.stats.ops += 1
        self.stats.bump("mpfr_fma")

    def fms(self, dst, a, b, c, rm=RNDN):
        self._check(dst, a, b, c)
        dst.value = self.batch_kernel("fms", dst.prec, rm, dst.exp_bits)(
            a.value, b.value, c.value)
        self.stats.ops += 1
        self.stats.bump("mpfr_fms")

    def _unary(self, name, kernel, dst, a, rm):
        self._check(dst, a)
        if kernel is arith.sqrt:
            dst.value = self.batch_kernel("sqrt", dst.prec, rm,
                                          dst.exp_bits)(a.value)
        else:  # neg/abs/exp/log/sin/cos: generic routine, per-lane
            dst.value = self._lanewise(kernel, (a.value,), dst.prec, rm,
                                       dst.exp_bits)
        self.stats.ops += 1
        self.stats.bump(name)

    # -------------------------------------------------------- #
    # Comparison / conversion: uniform across lanes or bail out
    # -------------------------------------------------------- #

    def _uniform_map(self, fn, *values):
        n = self.ctx.lanes
        for v in values:
            if type(v) is VPBatch:
                n = len(v.kind)
                break
        else:
            return fn(*values)
        result = None
        for i in range(n):
            r = fn(*[v.lane(i) if type(v) is VPBatch else v
                     for v in values])
            if i == 0:
                result = r
            elif not _same_scalar(r, result):
                self.ctx.divergences += 1
                raise BatchDivergence(
                    "batch lanes diverged in a comparison/conversion")
        return result

    def cmp(self, a, b):
        self._check(a, b)
        self.stats.compares += 1
        self.stats.bump("mpfr_cmp")
        return self._uniform_map(lambda x, y: x.compare(y),
                                 a.value, b.value)

    def cmp_d(self, a, d):
        self._check(a)
        self.stats.compares += 1
        self.stats.bump("mpfr_cmp_d")
        other = BigFloat.from_float(d, 64)
        return self._uniform_map(lambda x: x.compare(other), a.value)

    def get_d(self, a, rm=RNDN):
        self._check(a)
        self.stats.conversions += 1
        self.stats.bump("mpfr_get_d")
        return self._uniform_map(lambda x: x.to_float(), a.value)

    def get_si(self, a, rm=RNDN):
        self._check(a)
        self.stats.conversions += 1
        self.stats.bump("mpfr_get_si")
        return self._uniform_map(lambda x: x.to_int(), a.value)

    def get_str(self, a, digits=None):
        from ..bigfloat import convert
        self._check(a)
        self.stats.conversions += 1
        self.stats.bump("mpfr_get_str")
        return self._uniform_map(lambda x: convert.to_str(x, digits),
                                 a.value)


class BatchInterpreter(Interpreter):
    """Interpreter whose vpfloat values are N-lane VPBatches.

    Forces the jit dispatch mode (the closure-table and legacy engines
    are not batch-aware, so a function without a jit entry raises
    :class:`BatchUnsupported` instead of silently falling back), swaps
    in a :class:`BatchMpfrLibrary`, and wraps the few builtins that
    materialize or inspect scalar vpfloat values.  All cost charging is
    inherited untouched.
    """

    def __init__(self, module, lanes: int, accounting=None,
                 max_steps: int = 500_000_000, mpfr_pool: bool = False,
                 pool_limit: int = 1024, codegen_store=None,
                 kernel_tier: str = "auto"):
        ctx = BatchContext(lanes, kernel_tier=kernel_tier)
        self.batch = ctx
        super().__init__(
            module,
            accounting=accounting,
            mpfr_library=BatchMpfrLibrary(ctx, pool=mpfr_pool,
                                          pool_limit=pool_limit),
            max_steps=max_steps,
            dispatch="jit",
            profile=False,
            mpfr_pool=mpfr_pool,
            pool_limit=pool_limit,
            codegen_store=codegen_store,
            kernel_tier=kernel_tier,
        )
        self._install_batch_builtins()

    # -------------------------------------------------------- #
    # Builtin wrappers (raw ``memory.cells`` access only: the
    # stock handlers already charge exactly what a serial run
    # charges, so wrappers must not add observed loads/stores)
    # -------------------------------------------------------- #

    def _install_batch_builtins(self) -> None:
        b = self._builtins
        cells = self.memory.cells
        lanes = self.batch.lanes

        stock_literal = b["__mpfr_set_literal"]

        def set_literal(args, inst, frame):
            result = stock_literal(args, inst, frame)
            cell = cells.get(int(args[0]))
            if cell is not None:
                var = cell[0]
                if type(var.value) is not VPBatch:
                    var.value = VPBatch.broadcast(var.value, lanes)
            return result

        b["__mpfr_set_literal"] = set_literal

        stock_load = b["__mpfr_load_global"]

        def load_global(args, inst, frame):
            addr = int(args[1])
            cell = cells.get(addr)
            if cell is not None and type(cell[0]) is VPBatch:
                batch = cell[0]
                # Swap a lane-0 scalar into the raw cell so the stock
                # handler takes its BigFloat path (and charges exactly
                # once), then install the whole rounded batch.
                cells[addr] = (batch.lane(0), cell[1])
                try:
                    result = stock_load(args, inst, frame)
                finally:
                    cells[addr] = cell
                dst_cell = cells.get(int(args[0]))
                dst = dst_cell[0]
                dst.value = batch.round_to(dst.prec)
                return result
            result = stock_load(args, inst, frame)
            dst_cell = cells.get(int(args[0]))
            if dst_cell is not None:
                dst = dst_cell[0]
                if type(dst.value) is not VPBatch:
                    dst.value = VPBatch.broadcast(dst.value, lanes)
            return result

        b["__mpfr_load_global"] = load_global

        def print_value(args, inst, frame):
            value = args[0]
            if isinstance(value, int):
                cell = cells.get(value)
                if cell is not None and hasattr(cell[0], "prec") and \
                        hasattr(cell[0], "value"):
                    value = cell[0].value
            if type(value) is VPBatch:
                value = value.uniform_lane()
            if isinstance(value, BigFloat):
                from ..bigfloat import convert
                self.stdout.append(convert.to_str(value))
            elif isinstance(value, float):
                self.stdout.append(repr(value))
            else:
                self.stdout.append(str(value))
            return None

        b["print_double"] = print_value
        b["print_int"] = print_value
        b["print_vpfloat"] = print_value

    # -------------------------------------------------------- #
    # Lockstep guards
    # -------------------------------------------------------- #

    def call_function(self, func, args):
        if func.is_declaration:
            return self._call_builtin(func.name, args, None, None)
        if len(args) != len(func.args):
            raise VPRuntimeError(
                f"{func.name}() takes {len(func.args)} argument(s), "
                f"got {len(args)}"
            )
        entry = self._jit_entry(func)
        if entry is None:
            reason = None
            engine = self._jit_engine
            store = getattr(engine, "store", None)
            if store is not None:
                record = store.records.get(func.name) or {}
                reason = record.get("reason")
            raise BatchUnsupported(
                f"batched execution needs a jit entry for {func.name}()"
                + (f": {reason}" if reason else "")
            )
        if self.tracer is not None:
            return self._call_function_traced(func, args)
        return entry(*args)

    def _as_bigfloat(self, value, prec):
        if type(value) is VPBatch:
            raise BatchUnsupported(
                "scalar coercion of a batched vpfloat value")
        return super()._as_bigfloat(value, prec)

    def _fcmp_values(self, a, b, pred):
        a_batched = type(a) is VPBatch
        if a_batched or type(b) is VPBatch:
            base = super()._fcmp_values
            n = len(a.kind) if a_batched else len(b.kind)
            result = 0
            for i in range(n):
                r = base(a.lane(i) if a_batched else a,
                         b.lane(i) if type(b) is VPBatch else b, pred)
                if i == 0:
                    result = r
                elif r != result:
                    self.batch.divergences += 1
                    raise BatchDivergence(
                        "fcmp diverged across batch lanes")
            return result
        return super()._fcmp_values(a, b, pred)

    def _uniform_over(self, batch: VPBatch, fn):
        result = None
        for i in range(len(batch.kind)):
            r = fn(batch.lane(i))
            if i == 0:
                result = r
            elif not _same_scalar(r, result):
                self.batch.divergences += 1
                raise BatchDivergence(
                    "cast diverged across batch lanes")
        return result

    def _cast_value(self, inst, value, frame):
        if type(value) is not VPBatch:
            return super()._cast_value(inst, value, frame)
        opcode = inst.opcode
        target = inst.type
        if opcode == "fptosi":
            bits = target.bits

            def to_si(v):
                if not v.is_finite():
                    raise VPRuntimeError("fptosi of non-finite vpfloat")
                return _mask_int(v.to_int(), bits)

            return self._uniform_over(value, to_si)
        if opcode == "vpconv":
            if target.is_vpfloat:
                if target.format != "mpfr":
                    raise BatchUnsupported(
                        f"vpconv of a batched value to {target.format}")
                prec, _ = self.vp_config(target, frame)
                return value.round_to(prec)

            def to_ieee(v):
                result = v.to_float()
                return _f32(result) if target.bits == 32 else result

            return self._uniform_over(value, to_ieee)
        raise BatchUnsupported(
            f"cast {opcode} applied to a batched vpfloat value")


@dataclass
class BatchResult:
    """Outcome of a batched run: per-lane values and cost reports.

    ``mode`` is ``"batched"`` when the whole batch ran in lockstep
    (one report, shared by every lane) or ``"serial"`` when a
    divergence/unsupported bailout re-ran each lane on the scalar jit
    engine (``fallback_reason`` says why; per-lane reports).
    """

    lanes: int
    values: List[object]
    reports: List[object]
    stdout: List[str] = field(default_factory=list)
    mode: str = "batched"
    fallback_reason: Optional[str] = None
    interpreter: object = None

    @property
    def report(self):
        return self.reports[0]

    def lane_result(self, i: int):
        return self.values[i], self.reports[i]


def lane_view(value, i: int):
    """Lane ``i`` of a possibly-batched runtime value (uniform scalars
    -- ints, floats, plain BigFloats -- are every lane's value)."""
    if type(value) is VPBatch:
        return value.lane(i)
    if isinstance(value, MpfrVar):
        return lane_view(value.value, i)
    return value
