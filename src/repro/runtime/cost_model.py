"""Performance model: per-operation cycle costs, cache hierarchy, reports.

This is the repository's substitute for the paper's Intel Xeon E5-2637v3
testbed (DESIGN.md substitution table).  Cycle costs are calibrated to the
*structure* that drives the paper's results:

- an MPFR library call costs a fixed call overhead plus a per-limb-word
  dataflow term -- hundreds of cycles at the paper's precisions, which is
  why the UNUM coprocessor's few-cycle hardware ops win by 18-27x (Fig. 2);
- ``mpfr_init2``/``mpfr_clear`` include heap allocator work, so lowering
  that avoids temporaries (late lowering + object reuse) saves real cycles
  -- the vpfloat-vs-Boost gap (Fig. 1);
- loads/stores run through a 3-level LRU cache model; misses cost DRAM
  latency, and total DRAM traffic feeds the OpenMP bandwidth-contention
  model (paper: Boost turns compute-bound kernels memory-bound).
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional


# ----------------------------------------------------------------- #
# Cache hierarchy
# ----------------------------------------------------------------- #

@dataclass
class CacheLevel:
    name: str
    capacity_bytes: int
    line_bytes: int
    hit_cycles: int


#: Geometry approximating one Xeon E5-2637v3 core (L3 shared).
DEFAULT_LEVELS = (
    CacheLevel("L1", 32 * 1024, 64, 4),
    CacheLevel("L2", 256 * 1024, 64, 12),
    CacheLevel("L3", 15 * 1024 * 1024, 64, 40),
)
DRAM_CYCLES = 200
#: DRAM bandwidth in bytes per cycle (shared across cores in OpenMP mode);
#: ~20 GB/s at 3 GHz.
DRAM_BYTES_PER_CYCLE = 7.0
#: Serialized cost per heap allocation when many threads hammer the
#: allocator simultaneously (glibc arena lock + freed-block cache-line
#: ping-pong).  This is the proxy for the paper's observation that
#: Boost's per-operation temporaries turn compute-bound kernels
#: memory-bound under OpenMP (hardware counters: up to 90x more LLC
#: misses).
ALLOCATOR_CONTENTION_CYCLES = 110


class CacheModel:
    """Inclusive multi-level LRU cache simulator over line addresses."""

    def __init__(self, levels=DEFAULT_LEVELS, dram_cycles: int = DRAM_CYCLES):
        self.levels = levels
        self.dram_cycles = dram_cycles
        self._sets = [OrderedDict() for _ in levels]
        self.hits = [0 for _ in levels]
        self.misses_to_dram = 0
        self.dram_bytes = 0
        self.access_cycles = 0
        # Hot-path constants (line granularity is the L1 geometry).
        self._line = levels[0].line_bytes
        self._l1 = self._sets[0]
        self._l1_hit_cycles = levels[0].hit_cycles
        self._limits = [lv.capacity_bytes // lv.line_bytes for lv in levels]

    def access(self, kind: str, addr: int, nbytes: int) -> None:
        line = self._line
        first = addr // line
        last = (addr + nbytes - 1) // line if nbytes > 1 else first
        l1 = self._l1
        if first == last:
            # Single-line access: the overwhelmingly common case.
            if first in l1:
                l1.move_to_end(first)
                self.hits[0] += 1
                self.access_cycles += self._l1_hit_cycles
            else:
                self._touch_slow(first)
            return
        for line_addr in range(first, last + 1):
            if line_addr in l1:
                # L1 hit: nothing to promote, just recency + cycles.
                l1.move_to_end(line_addr)
                self.hits[0] += 1
                self.access_cycles += self._l1_hit_cycles
            else:
                self._touch_slow(line_addr)

    def _touch(self, line_addr: int) -> None:
        if line_addr in self._l1:
            self._l1.move_to_end(line_addr)
            self.hits[0] += 1
            self.access_cycles += self._l1_hit_cycles
        else:
            self._touch_slow(line_addr)

    def _touch_slow(self, line_addr: int) -> None:
        levels = self.levels
        for i in range(1, len(levels)):
            cache = self._sets[i]
            if line_addr in cache:
                cache.move_to_end(line_addr)
                self.hits[i] += 1
                self.access_cycles += levels[i].hit_cycles
                self._fill_upper(i, line_addr)
                return
        # Miss all the way to DRAM.
        self.misses_to_dram += 1
        self.dram_bytes += self._line
        self.access_cycles += self.dram_cycles
        self._fill_upper(len(levels), line_addr)

    def _fill_upper(self, found_level: int, line_addr: int) -> None:
        for i in range(found_level):
            cache = self._sets[i]
            cache[line_addr] = True
            cache.move_to_end(line_addr)
            limit = self._limits[i]
            while len(cache) > limit:
                cache.popitem(last=False)

    def llc_misses(self) -> int:
        return self.misses_to_dram


# ----------------------------------------------------------------- #
# Cycle costs
# ----------------------------------------------------------------- #

@dataclass(frozen=True)
class CycleCosts:
    """Scalar-core instruction costs plus MPFR library cost coefficients."""

    int_op: int = 1
    branch: int = 1
    f64_add: int = 3
    f64_mul: int = 5
    f64_div: int = 20
    f64_other: int = 3
    call_overhead: int = 10
    ret: int = 2
    malloc: int = 80
    free: int = 40
    # MPFR library calls: overhead + per-64-bit-word cost.
    mpfr_call_overhead: int = 45
    mpfr_add_per_word: int = 10
    mpfr_mul_per_word: int = 14
    mpfr_div_per_word: int = 38
    mpfr_sqrt_per_word: int = 46
    mpfr_transcendental_per_word: int = 220
    mpfr_set_per_word: int = 4
    mpfr_init_extra: int = 30   # beyond the malloc it performs
    mpfr_clear_extra: int = 12  # beyond the free
    mpfr_cmp: int = 25
    # Runtime free-list pool (interpreter MPFR object reuse): a hit or
    # release touches only the list head -- no allocator round-trip.
    mpfr_pool_hit_extra: int = 6
    mpfr_pool_release_extra: int = 4
    omp_fork_join: int = 4000
    atomic_section: int = 120

    def words(self, prec_bits: int) -> int:
        return max(1, (prec_bits + 63) // 64)

    def mpfr_op_cost(self, name: str, prec_bits: int) -> int:
        """Cycles for one MPFR entry point at the given precision."""
        w = self.words(prec_bits)
        base = self.mpfr_call_overhead
        if "init" in name:
            return base + self.mpfr_init_extra + self.malloc
        if "clear" in name:
            return base + self.mpfr_clear_extra + self.free
        if "cmp" in name:
            return base + self.mpfr_cmp
        if "set" in name or "swap" in name or "get" in name:
            return base + self.mpfr_set_per_word * w
        if "sqrt" in name:
            return base + self.mpfr_sqrt_per_word * w * w
        if any(t in name for t in ("exp", "log", "sin", "cos", "pow")):
            return base + self.mpfr_transcendental_per_word * w * w
        if "div" in name:
            return base + self.mpfr_div_per_word * w * w
        if "mul" in name or "fma" in name or "fms" in name:
            return base + self.mpfr_mul_per_word * w * w
        # add/sub/neg/abs and friends: linear in words.
        return base + self.mpfr_add_per_word * w


#: Cost profile for MPFR software running on the in-order RISC-V Rocket
#: core of the paper's FPGA platform (Fig. 2 baseline).  A Rocket spends
#: several times more cycles per MPFR limb operation than the Xeon the
#: default profile models: single-issue, no out-of-order overlap of the
#: limb loops, slower allocator.  Ratios follow published Rocket-vs-Xeon
#: IPC comparisons (~3-4x on integer-dominated code).
ROCKET_CYCLE_COSTS = CycleCosts(
    int_op=1,
    branch=2,
    f64_add=4,
    f64_mul=6,
    f64_div=30,
    f64_other=4,
    call_overhead=24,
    ret=4,
    malloc=260,
    free=130,
    mpfr_call_overhead=110,
    mpfr_add_per_word=34,
    mpfr_mul_per_word=48,
    mpfr_div_per_word=130,
    mpfr_sqrt_per_word=160,
    mpfr_transcendental_per_word=700,
    mpfr_set_per_word=14,
    mpfr_init_extra=90,
    mpfr_clear_extra=40,
    mpfr_cmp=80,
    mpfr_pool_hit_extra=18,
    mpfr_pool_release_extra=12,
    omp_fork_join=4000,
    atomic_section=200,
)


# ----------------------------------------------------------------- #
# Reports
# ----------------------------------------------------------------- #

@dataclass
class CostReport:
    """Everything a run produces for the evaluation harness."""

    cycles: int = 0
    instructions: int = 0
    mpfr_calls: int = 0
    mpfr_allocations: int = 0
    heap_allocations: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cache_hits: tuple = (0, 0, 0)
    llc_misses: int = 0
    dram_bytes: int = 0
    parallel_cycles: int = 0       # cycles spent inside parallel regions
    serial_cycles: int = 0
    parallel_dram_bytes: int = 0
    parallel_heap_allocations: int = 0
    by_category: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int))

    def charge(self, category: str, cycles: int) -> None:
        self.cycles += cycles
        self.by_category[category] += cycles

    def parallel_time(self, threads: int,
                      bandwidth: float = DRAM_BYTES_PER_CYCLE,
                      fork_join: int = 4000,
                      allocator_contention: int =
                      ALLOCATOR_CONTENTION_CYCLES) -> float:
        """Modeled execution time on ``threads`` cores (roofline).

        Serial cycles run as-is.  Parallel-region cycles divide across
        threads but can never beat (a) the DRAM roofline -- the region's
        DRAM traffic over the shared bandwidth -- or (b) the allocator
        serialization floor: each heap allocation performed inside the
        region serializes on the shared allocator and bounces freed
        blocks between cores.  (b) is what stops per-op-temporary code
        (Boost) from scaling while the vpfloat backend, whose regions
        allocate nothing, keeps scaling to 16 threads -- the paper's
        7-9x OpenMP gap.
        """
        if threads <= 1:
            return float(self.cycles)
        return self.serial_cycles + self.kernel_time(
            threads, bandwidth, fork_join, allocator_contention)

    def kernel_time(self, threads: int,
                    bandwidth: float = DRAM_BYTES_PER_CYCLE,
                    fork_join: int = 4000,
                    allocator_contention: int =
                    ALLOCATOR_CONTENTION_CYCLES) -> float:
        """Time of the parallel region alone (what RAJAPerf's kernel
        timers measure)."""
        if threads <= 1:
            return float(self.parallel_cycles)
        compute = self.parallel_cycles / threads
        memory_floor = self.parallel_dram_bytes / bandwidth
        contention = (self.parallel_heap_allocations * allocator_contention
                      * (threads - 1) / threads)
        return max(compute, memory_floor) + contention + fork_join


class CostAccounting:
    """Mutable accounting shared by the interpreter and runtime libs."""

    def __init__(self, costs: Optional[CycleCosts] = None,
                 cache: Optional[CacheModel] = None):
        self.costs = costs or CycleCosts()
        self.cache = cache if cache is not None else CacheModel()
        self.report = CostReport()
        self._parallel_depth = 0
        self._parallel_start_cycles = 0
        self._parallel_start_dram = 0
        self._parallel_start_allocs = 0

    # -------------------------------------------------------- #

    def charge(self, category: str, cycles: int) -> None:
        self.report.charge(category, cycles)

    def instruction(self) -> None:
        self.report.instructions += 1

    def memory_access(self, kind: str, addr: int, nbytes: int) -> None:
        if self.cache is None:
            return
        before = self.cache.access_cycles
        self.cache.access(kind, addr, nbytes)
        self.report.cycles += self.cache.access_cycles - before

    # ---- OpenMP region tracking ------------------------------ #

    def parallel_begin(self) -> None:
        if self._parallel_depth == 0:
            self._parallel_start_cycles = self.report.cycles
            self._parallel_start_dram = (self.cache.dram_bytes
                                         if self.cache else 0)
            self._parallel_start_allocs = self.report.heap_allocations
        self._parallel_depth += 1

    def parallel_end(self) -> None:
        self._parallel_depth -= 1
        if self._parallel_depth == 0:
            region = self.report.cycles - self._parallel_start_cycles
            self.report.parallel_cycles += region
            if self.cache is not None:
                self.report.parallel_dram_bytes += (
                    self.cache.dram_bytes - self._parallel_start_dram
                )
            self.report.parallel_heap_allocations += (
                self.report.heap_allocations - self._parallel_start_allocs
            )
            self.charge("omp_fork_join", self.costs.omp_fork_join)

    # -------------------------------------------------------- #

    def finalize(self, memory=None) -> CostReport:
        if self.cache is not None:
            self.report.cache_hits = tuple(self.cache.hits)
            self.report.llc_misses = self.cache.llc_misses()
            self.report.dram_bytes = self.cache.dram_bytes
        if memory is not None:
            self.report.bytes_read = memory.bytes_read
            self.report.bytes_written = memory.bytes_written
        self.report.serial_cycles = (self.report.cycles
                                     - self.report.parallel_cycles)
        return self.report
