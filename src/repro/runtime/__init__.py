"""Execution engine: memory, performance model, IR interpreter.

(DESIGN.md: the host-machine substitute -- runs IR functionally while
charging modeled cycles against a Xeon-calibrated cost model.)
"""

from .cost_model import (
    DRAM_BYTES_PER_CYCLE,
    CacheLevel,
    CacheModel,
    CostAccounting,
    CostReport,
    CycleCosts,
    DEFAULT_LEVELS,
)
from .batch import (
    BatchContext,
    BatchDivergence,
    BatchInterpreter,
    BatchResult,
    BatchUnsupported,
    VPBatch,
)
from .dispatch import InterpreterProfile
from .interpreter import (
    ExecutionLimitExceeded,
    ExecutionResult,
    Interpreter,
    VPRuntimeError,
)
from .memory import Memory, MemoryError_

__all__ = [
    "Interpreter",
    "InterpreterProfile",
    "ExecutionResult",
    "VPRuntimeError",
    "ExecutionLimitExceeded",
    "VPBatch",
    "BatchContext",
    "BatchDivergence",
    "BatchInterpreter",
    "BatchResult",
    "BatchUnsupported",
    "Memory",
    "MemoryError_",
    "CostAccounting",
    "CostReport",
    "CycleCosts",
    "CacheModel",
    "CacheLevel",
    "DEFAULT_LEVELS",
    "DRAM_BYTES_PER_CYCLE",
]
