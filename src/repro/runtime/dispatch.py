"""Precompiled closure-table dispatch for the IR interpreter.

The legacy interpreter walks an ``isinstance`` chain for every executed
instruction and re-resolves operands, vpfloat attributes, and builtin
handlers on every dynamic execution.  This module threads each
:class:`~repro.ir.Instruction` to a bound handler exactly once per
function: :class:`FunctionCompiler` turns every basic block into a
:class:`CompiledBlock` holding

- ``steps``: one closure per non-phi, non-terminator instruction, each
  capturing pre-resolved operand getters, cost constants, and (for
  constant-attribute vpfloat types) the resolved precision;
- ``terminator``: a closure returning either the successor
  :class:`CompiledBlock` or a ``("ret", value)`` tuple;
- ``phi_moves``: per-predecessor staged phi assignments, so the block
  header does no list comprehension over ``block.phis()`` per execution.

With ``fuse=True`` (the interpreter's default ``"fast"`` mode) the
compiler additionally peephole-fuses the dominant adjacent pairs into
single *superinstruction* closures at table-build time:

- ``load`` feeding an adjacent binary op (the loaded value skips the
  frame dict when the binary is its only user);
- a binary op feeding an adjacent ``store`` of its result;
- a comparison feeding the block's conditional branch (the i1 skips
  the frame dict when the branch is its only user).

Fusion never crosses a block boundary and only pairs *adjacent*
instructions, so no operand can be redefined between producer and
consumer; multi-user producers keep their frame write.  Per-block
instruction counts (``count``/``tally``) are computed before fusion, so
step limits, ``report.instructions`` and profiles are unchanged.

Compilation must not change observable semantics relative to the legacy
path: the same cycles are charged to the same categories in the same
order, the same memory traffic reaches the cache model, and runtime
errors (attribute validation, unknown builtins, execution limits) are
still raised at execution time, not at compile time.  Fused pairs charge
the identical cycle categories in the identical order as the unfused
sequence, so the cost model stays bit-for-bit.  Anything the compiler
cannot prove static falls back to the interpreter's legacy helper for
that one instruction.

This module is also the per-function fallback target of the ``"jit"``
engine (:mod:`repro.codegen.pyjit`): a function the source generator
cannot fully specialize (dynamic vpfloat attributes, posit/unum
formats, variadic builtins) executes through these closure tables
instead, with identical observable behavior.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..bigfloat import BigFloat, RNDN, arith
from ..ir import (
    AllocaInst,
    ArrayType,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ConstantString,
    ConstantVPFloat,
    FCmpInst,
    FNegInst,
    Function,
    GEPInst,
    GlobalVariable,
    ICmpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    StructType,
    UndefValue,
    UnreachableInst,
    VPFloatType,
)

_VP_KERNELS = {"fadd": arith.add, "fsub": arith.sub,
               "fmul": arith.mul, "fdiv": arith.div}


class InterpreterProfile:
    """Execution observability: what ran, and where the cycles went.

    ``opcode_counts`` tallies executed IR instructions by opcode;
    ``builtin_calls``/``builtin_cycles`` attribute runtime-library work
    (including MPFR entry points) per builtin name.  Cycle attribution
    includes the cache-model cycles incurred inside the builtin.
    """

    def __init__(self) -> None:
        self.opcode_counts: Dict[str, int] = {}
        self.builtin_calls: Dict[str, int] = {}
        self.builtin_cycles: Dict[str, int] = {}

    def count_block(self, tally: List[Tuple[str, int]]) -> None:
        counts = self.opcode_counts
        for op, n in tally:
            counts[op] = counts.get(op, 0) + n

    def count_opcode(self, opcode: str) -> None:
        self.opcode_counts[opcode] = self.opcode_counts.get(opcode, 0) + 1

    def record_builtin(self, name: str, cycles: int) -> None:
        self.builtin_calls[name] = self.builtin_calls.get(name, 0) + 1
        self.builtin_cycles[name] = self.builtin_cycles.get(name, 0) + cycles

    def hottest_opcodes(self, limit: int = 10) -> List[Tuple[str, int]]:
        ranked = sorted(self.opcode_counts.items(),
                        key=lambda kv: kv[1], reverse=True)
        return ranked[:limit]

    def hottest_builtins(self, limit: int = 10) -> List[Tuple[str, int, int]]:
        ranked = sorted(self.builtin_cycles.items(),
                        key=lambda kv: kv[1], reverse=True)
        return [(name, self.builtin_calls.get(name, 0), cycles)
                for name, cycles in ranked[:limit]]


class CompiledBlock:
    __slots__ = ("bid", "name", "steps", "terminator", "phi_moves",
                 "count", "tally")

    def __init__(self, block) -> None:
        self.bid = id(block)
        self.name = block.name
        self.steps: List[Callable] = []
        self.terminator: Optional[Callable] = None
        #: id(predecessor IR block) -> [(id(phi), value getter), ...]
        self.phi_moves: Dict[Optional[int], List[Tuple[int, Callable]]] = {}
        self.count = 0
        self.tally: List[Tuple[str, int]] = []


class CompiledFunction:
    __slots__ = ("entry", "blocks")

    def __init__(self, entry: CompiledBlock,
                 blocks: Dict[int, CompiledBlock]) -> None:
        self.entry = entry
        self.blocks = blocks


class FunctionCompiler:
    """Compiles one function's blocks into closure tables.

    ``fuse`` enables superinstruction fusion (see the module docstring);
    with it off the tables are a 1:1 instruction-to-closure mapping.
    """

    def __init__(self, interp, fuse: bool = False) -> None:
        # Imported here (not at module scope) to avoid a circular import
        # with .interpreter, which imports this module at load time.
        from .interpreter import VPRuntimeError, _f32, _mask_int

        self.interp = interp
        self.fuse = fuse
        self._vpr = VPRuntimeError
        self._f32 = _f32
        self._mask = _mask_int
        self._resolvers: Dict[int, Callable] = {}

    # ------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------ #

    def compile(self, func: Function) -> CompiledFunction:
        blocks: Dict[int, CompiledBlock] = {
            id(b): CompiledBlock(b) for b in func.blocks
        }
        for block in func.blocks:
            cb = blocks[id(block)]
            tally: Dict[str, int] = {}
            body: List = []
            term_inst = None
            for inst in block.instructions:
                if isinstance(inst, PhiInst):
                    for value, pred in inst.incoming:
                        cb.phi_moves.setdefault(id(pred), []).append(
                            (id(inst), self._getter(value)))
                    continue
                tally[inst.opcode] = tally.get(inst.opcode, 0) + 1
                cb.count += 1
                if isinstance(inst, (BranchInst, RetInst, UnreachableInst)):
                    term_inst = inst
                else:
                    body.append(inst)
            cb.tally = sorted(tally.items())
            fused_cmp = None
            if (self.fuse and body and term_inst is not None
                    and isinstance(term_inst, BranchInst)
                    and term_inst.is_conditional
                    and isinstance(body[-1], (ICmpInst, FCmpInst))
                    and term_inst.condition is body[-1]):
                fused_cmp = body.pop()
            cb.steps = self._compile_steps(body)
            if term_inst is None:
                cb.terminator = self._fell_off_end(block.name)
            elif fused_cmp is not None:
                cb.terminator = self._fuse_cmp_branch(fused_cmp, term_inst,
                                                      blocks)
            else:
                cb.terminator = self._compile_terminator(term_inst, blocks)
        return CompiledFunction(blocks[id(func.entry)], blocks)

    def _compile_steps(self, body: List) -> List[Callable]:
        steps: List[Callable] = []
        i, n = 0, len(body)
        fuse = self.fuse
        while i < n:
            if fuse and i + 1 < n:
                fused = self._try_fuse(body[i], body[i + 1])
                if fused is not None:
                    steps.append(fused)
                    i += 2
                    continue
            steps.append(self._compile_step(body[i]))
            i += 1
        return steps

    def _fell_off_end(self, name: str) -> Callable:
        vpr = self._vpr

        def term(frame):
            raise vpr(f"block {name} fell off the end")

        return term

    # ------------------------------------------------------------ #
    # Superinstruction fusion
    # ------------------------------------------------------------ #

    def _try_fuse(self, a, b) -> Optional[Callable]:
        """Fused closure for the adjacent pair (a, b), or None."""
        if isinstance(a, LoadInst) and isinstance(b, BinaryInst) \
                and (b.lhs is a or b.rhs is a):
            return self._fuse_load_binary(a, b)
        if isinstance(a, BinaryInst) and isinstance(b, StoreInst) \
                and b.value is a:
            return self._fuse_binary_store(a, b)
        return None

    def _fuse_load_binary(self, load: LoadInst,
                          binary: BinaryInst) -> Callable:
        if len(load.users) > 1:
            # The loaded value has other readers (or feeds both operand
            # slots): keep the frame write and just glue the two
            # existing steps into one superinstruction.
            first = self._compile_load(load)
            second = self._compile_step(binary)

            def step(frame):
                first(frame)
                second(frame)

            return step
        # Single user: route the loaded value through a box cell instead
        # of the frame dict.  The box is written and consumed within one
        # step invocation, so reuse across iterations cannot go stale.
        load_value = self._load_value(load)
        box: List = [None]

        def inject(frame):
            return box[0]

        ga = inject if binary.lhs is load else self._getter(binary.lhs)
        gb = inject if binary.rhs is load else self._getter(binary.rhs)
        compute = self._binary_value(binary, ga, gb)
        bid = id(binary)

        def step(frame):
            box[0] = load_value(frame)
            frame.values[bid] = compute(frame)

        return step

    def _fuse_binary_store(self, binary: BinaryInst,
                           store: StoreInst) -> Callable:
        interp = self.interp
        compute = self._binary_value(binary, self._getter(binary.lhs),
                                     self._getter(binary.rhs))
        bid = id(binary)
        write_through = len(binary.users) > 1
        gp = self._getter(store.pointer)
        do_store = interp.memory.store
        type_ = store.value.type
        nbytes = self._static_sizeof(type_)
        if nbytes is not None:
            if write_through:
                def step(frame):
                    value = compute(frame)
                    frame.values[bid] = value
                    do_store(int(gp(frame)), value, nbytes)
            else:
                def step(frame):
                    value = compute(frame)
                    do_store(int(gp(frame)), value, nbytes)
        else:
            if write_through:
                def step(frame):
                    value = compute(frame)
                    frame.values[bid] = value
                    do_store(int(gp(frame)), value,
                             interp._sizeof(type_, frame))
            else:
                def step(frame):
                    value = compute(frame)
                    do_store(int(gp(frame)), value,
                             interp._sizeof(type_, frame))

        return step

    def _fuse_cmp_branch(self, cmp_inst, br: BranchInst,
                         blocks) -> Callable:
        interp = self.interp
        value = (self._icmp_value(cmp_inst)
                 if isinstance(cmp_inst, ICmpInst)
                 else self._fcmp_value(cmp_inst))
        charge = interp.accounting.report.charge
        branch_cost = interp.accounting.costs.branch
        then_block = blocks[id(br.targets[0])]
        else_block = blocks[id(br.targets[1])]
        cid = id(cmp_inst)
        if len(cmp_inst.users) > 1:
            def term(frame):
                result = value(frame)
                frame.values[cid] = result
                charge("branch", branch_cost)
                return then_block if result else else_block
        else:
            def term(frame):
                result = value(frame)
                charge("branch", branch_cost)
                return then_block if result else else_block

        return term

    # ------------------------------------------------------------ #
    # Operand getters
    # ------------------------------------------------------------ #

    def _getter(self, v) -> Callable:
        interp = self.interp
        if isinstance(v, ConstantInt):
            value = v.value
            return lambda frame: value
        if isinstance(v, ConstantFloat):
            value = self._f32(v.value) if v.type.bits == 32 else v.value
            return lambda frame: value
        if isinstance(v, ConstantVPFloat):
            # Depends on the (possibly dynamic) precision; the
            # interpreter memoizes per (constant, precision).
            return lambda frame: interp._constant(v, frame)
        if isinstance(v, ConstantPointerNull):
            return lambda frame: 0
        if isinstance(v, ConstantString):
            text = v.text
            return lambda frame: text
        if isinstance(v, UndefValue):
            return lambda frame: interp._default(v.type, frame)
        if isinstance(v, Constant):
            return lambda frame: interp._constant(v, frame)
        if isinstance(v, GlobalVariable):
            addr = interp.globals[v.name]
            return lambda frame: addr
        if isinstance(v, Function):
            return lambda frame: v
        vid = id(v)
        return lambda frame: frame.values[vid]

    def _vp_resolver(self, vptype: VPFloatType) -> Callable:
        """closure(frame) -> (precision_bits, size_bytes), resolved once
        for constant-attribute types and cached per runtime attribute
        tuple for dynamic ones."""
        cached = self._resolvers.get(id(vptype))
        if cached is not None:
            return cached
        interp = self.interp
        attrs = [a for a in (vptype.exp_attr, vptype.prec_attr,
                             getattr(vptype, "size_attr", None))
                 if a is not None]
        if all(isinstance(a, ConstantInt) for a in attrs):
            cell: list = []

            def resolve(frame):
                if cell:
                    return cell[0]
                # Resolved lazily so validation errors still surface at
                # execution time, exactly once.
                config = interp.vp_config(vptype, frame)
                cell.append(config)
                return config
        else:
            getters = [self._getter(a) for a in attrs]
            cache = interp._vp_config_cache
            tid = id(vptype)

            def resolve(frame):
                key = (tid,) + tuple(int(g(frame)) for g in getters)
                config = cache.get(key)
                if config is None:
                    config = interp.vp_config(vptype, frame)
                    cache[key] = config
                return config

        self._resolvers[id(vptype)] = resolve
        return resolve

    def _static_sizeof(self, type) -> Optional[int]:
        """Byte size if resolvable without a frame, else None."""
        try:
            return self.interp._sizeof(type, None)
        except Exception:
            return None

    # ------------------------------------------------------------ #
    # Terminators
    # ------------------------------------------------------------ #

    def _compile_terminator(self, inst, blocks) -> Callable:
        interp = self.interp
        charge = interp.accounting.report.charge
        costs = interp.accounting.costs
        if isinstance(inst, BranchInst):
            branch_cost = costs.branch
            if inst.is_conditional:
                gc = self._getter(inst.condition)
                then_block = blocks[id(inst.targets[0])]
                else_block = blocks[id(inst.targets[1])]

                def term(frame):
                    charge("branch", branch_cost)
                    return then_block if gc(frame) else else_block
            else:
                target = blocks[id(inst.targets[0])]

                def term(frame):
                    charge("branch", branch_cost)
                    return target

            return term
        if isinstance(inst, RetInst):
            if inst.value is None:
                return lambda frame: ("ret", None)
            gv = self._getter(inst.value)
            return lambda frame: ("ret", gv(frame))
        # UnreachableInst
        vpr = self._vpr

        def term(frame):
            raise vpr("executed unreachable instruction")

        return term

    # ------------------------------------------------------------ #
    # Steps
    # ------------------------------------------------------------ #

    def _compile_step(self, inst) -> Callable:
        if isinstance(inst, BinaryInst):
            return self._compile_binary(inst)
        if isinstance(inst, CallInst):
            return self._compile_call(inst)
        if isinstance(inst, LoadInst):
            return self._compile_load(inst)
        if isinstance(inst, StoreInst):
            return self._compile_store(inst)
        if isinstance(inst, GEPInst):
            return self._compile_gep(inst)
        if isinstance(inst, ICmpInst):
            return self._compile_icmp(inst)
        if isinstance(inst, FCmpInst):
            return self._compile_fcmp(inst)
        if isinstance(inst, CastInst):
            return self._compile_cast(inst)
        if isinstance(inst, AllocaInst):
            return self._compile_alloca(inst)
        if isinstance(inst, FNegInst):
            return self._compile_fneg(inst)
        if isinstance(inst, SelectInst):
            return self._compile_select(inst)
        # Unknown instruction kind: defer to the legacy executor so the
        # error message (or any future instruction) matches exactly.
        interp = self.interp
        return lambda frame: interp._execute(inst, frame)

    # ---- binaries ------------------------------------------------ #
    #
    # Each binary kind has a *value* factory (closure(frame) -> result,
    # charging exactly what the legacy path charges, in the same order)
    # so fused superinstructions can reuse the arithmetic with operand
    # getters swapped out; _compile_binary wraps it with the frame write.

    def _compile_binary(self, inst: BinaryInst) -> Callable:
        value = self._binary_value(inst, self._getter(inst.lhs),
                                   self._getter(inst.rhs))
        iid = id(inst)

        def step(frame):
            frame.values[iid] = value(frame)

        return step

    def _binary_value(self, inst: BinaryInst, ga: Callable,
                      gb: Callable) -> Callable:
        if inst.type.is_vpfloat:
            return self._vp_binary_value(inst, ga, gb)
        if inst.type.is_float:
            return self._float_binary_value(inst, ga, gb)
        return self._int_binary_value(inst, ga, gb)

    def _vp_binary_value(self, inst: BinaryInst, ga: Callable,
                         gb: Callable) -> Callable:
        interp = self.interp
        kernel = _VP_KERNELS.get(inst.opcode)
        if kernel is None:
            op = inst.opcode
            vpr = self._vpr

            def bad(frame):
                raise vpr(f"{op} unsupported on vpfloat")

            return bad
        vptype = inst.type
        resolve = self._vp_resolver(vptype)
        as_big = interp._as_bigfloat
        charge = interp.accounting.report.charge
        unit = interp.accounting.costs.f64_other
        if vptype.format == "posit":
            posit_round = interp._posit_round

            def value(frame):
                prec = resolve(frame)[0]
                work = prec + 8
                a = as_big(ga(frame), work)
                b = as_big(gb(frame), work)
                charge("vpfloat_native", unit * max(1, prec // 64))
                return posit_round(kernel(a, b, work, RNDN), vptype, frame)

        elif vptype.format == "mpfr":
            clamp = self._clamp_closure(vptype)

            def value(frame):
                prec = resolve(frame)[0]
                a = as_big(ga(frame), prec)
                b = as_big(gb(frame), prec)
                charge("vpfloat_native", unit * max(1, prec // 64))
                return clamp(kernel(a, b, prec, RNDN), frame)

        else:  # unum: exact intermediate, no per-op re-encoding

            def value(frame):
                prec = resolve(frame)[0]
                a = as_big(ga(frame), prec)
                b = as_big(gb(frame), prec)
                charge("vpfloat_native", unit * max(1, prec // 64))
                return kernel(a, b, prec, RNDN)

        registry = interp.metrics
        if registry is None:
            return value
        # Precision telemetry wrap, built only when a registry is
        # installed: the untraced closure above stays branch-free.
        observe = registry.observe
        inc = registry.inc
        bits_key = f"precision.op.{inst.opcode}.bits"
        rounding_key = "precision.rounding." + RNDN.value
        guard_bits = 8 if vptype.format == "posit" else 0
        plain_value = value

        def value(frame):
            observe(bits_key, resolve(frame)[0])
            observe("precision.guard_bits", guard_bits)
            inc(rounding_key)
            return plain_value(frame)

        return value

    def _clamp_closure(self, vptype: VPFloatType) -> Callable:
        """Exponent-range clamp bound to the type's *exp-info* attribute.

        The attribute is re-read from the frame on every application when
        it is dynamic, so a loop that mutates the attribute mid-iteration
        clamps against the current value, never a cached one."""
        exp_attr = vptype.exp_attr
        if isinstance(exp_attr, ConstantInt):
            limit = 1 << (exp_attr.value - 1)

            def clamp(value, frame):
                if not value.is_finite() or value.is_zero():
                    return value
                exponent = value.exponent()
                if exponent > limit:
                    return BigFloat.inf(value.prec, value.sign)
                if exponent < -limit:
                    return BigFloat.zero(value.prec, value.sign)
                return value

            return clamp
        vid = id(exp_attr)

        def clamp(value, frame):
            if not value.is_finite() or value.is_zero():
                return value
            limit = 1 << (int(frame.values[vid]) - 1)
            exponent = value.exponent()
            if exponent > limit:
                return BigFloat.inf(value.prec, value.sign)
            if exponent < -limit:
                return BigFloat.zero(value.prec, value.sign)
            return value

        return clamp

    def _float_binary_value(self, inst: BinaryInst, ga: Callable,
                            gb: Callable) -> Callable:
        interp = self.interp
        charge = interp.accounting.report.charge
        costs = interp.accounting.costs
        op = inst.opcode
        cost = {"fadd": costs.f64_add, "fsub": costs.f64_add,
                "fmul": costs.f64_mul, "fdiv": costs.f64_div,
                "frem": costs.f64_div}[op]
        narrow = inst.type.bits == 32
        f32 = self._f32
        if op == "fadd":
            def compute(a, b):
                return a + b
        elif op == "fsub":
            def compute(a, b):
                return a - b
        elif op == "fmul":
            def compute(a, b):
                return a * b
        elif op == "frem":
            import math

            def compute(a, b):
                return math.fmod(a, b)
        else:  # fdiv with C-style inf/nan on division by zero
            import math

            def compute(a, b):
                if b != 0.0:
                    return a / b
                return math.copysign(math.inf, a) if a != 0.0 else math.nan

        if narrow:
            def value(frame):
                result = compute(ga(frame), gb(frame))
                charge("f64", cost)
                return f32(result)
        else:
            def value(frame):
                result = compute(ga(frame), gb(frame))
                charge("f64", cost)
                return result

        return value

    def _int_binary_value(self, inst: BinaryInst, ga: Callable,
                          gb: Callable) -> Callable:
        interp = self.interp
        charge = interp.accounting.report.charge
        int_cost = interp.accounting.costs.int_op
        bits = inst.type.bits
        mask = self._mask
        umask = (1 << bits) - 1
        shmask = bits - 1
        op = inst.opcode
        vpr = self._vpr
        if op == "add":
            def compute(a, b):
                return a + b
        elif op == "sub":
            def compute(a, b):
                return a - b
        elif op == "mul":
            def compute(a, b):
                return a * b
        elif op in ("sdiv", "srem"):
            from .interpreter import _trunc_div
            rem = op == "srem"

            def compute(a, b):
                if b == 0:
                    raise vpr("integer division by zero" if not rem
                              else "integer remainder by zero")
                q = _trunc_div(a, b)
                return a - q * b if rem else q
        elif op in ("udiv", "urem"):
            rem = op == "urem"

            def compute(a, b):
                ua, ub = a & umask, b & umask
                if ub == 0:
                    raise vpr("integer division by zero" if not rem
                              else "integer remainder by zero")
                return ua % ub if rem else ua // ub
        elif op == "and":
            def compute(a, b):
                return a & b
        elif op == "or":
            def compute(a, b):
                return a | b
        elif op == "xor":
            def compute(a, b):
                return a ^ b
        elif op == "shl":
            def compute(a, b):
                return a << (b & shmask)
        elif op == "ashr":
            def compute(a, b):
                return a >> (b & shmask)
        elif op == "lshr":
            def compute(a, b):
                return (a & umask) >> (b & shmask)
        else:
            def compute(a, b):
                raise vpr(f"unknown integer op {op}")

        def value(frame):
            charge("int", int_cost)
            return mask(compute(ga(frame), gb(frame)), bits)

        return value

    # ---- memory -------------------------------------------------- #

    def _compile_load(self, inst: LoadInst) -> Callable:
        value = self._load_value(inst)
        iid = id(inst)

        def step(frame):
            frame.values[iid] = value(frame)

        return step

    def _load_value(self, inst: LoadInst) -> Callable:
        interp = self.interp
        gp = self._getter(inst.pointer)
        load = interp.memory.load
        type_ = inst.type
        nbytes = self._static_sizeof(type_)
        if nbytes is not None:
            default = interp._default(type_, None)

            def value(frame):
                return load(int(gp(frame)), nbytes, default)
        else:
            def value(frame):
                n = interp._sizeof(type_, frame)
                default = interp._default(type_, frame)
                return load(int(gp(frame)), n, default)

        return value

    def _compile_store(self, inst: StoreInst) -> Callable:
        interp = self.interp
        gp = self._getter(inst.pointer)
        gv = self._getter(inst.value)
        store = interp.memory.store
        type_ = inst.value.type
        nbytes = self._static_sizeof(type_)
        if nbytes is not None:
            def step(frame):
                # Match legacy evaluation order: pointer before value.
                addr = gp(frame)
                store(int(addr), gv(frame), nbytes)
        else:
            def step(frame):
                addr = gp(frame)
                value = gv(frame)
                store(int(addr), value, interp._sizeof(type_, frame))

        return step

    def _compile_alloca(self, inst: AllocaInst) -> Callable:
        interp = self.interp
        iid = id(inst)
        charge = interp.accounting.report.charge
        int_cost = interp.accounting.costs.int_op
        alloc = interp.memory.alloc_stack
        vpr = self._vpr
        elem = self._static_sizeof(inst.allocated_type)
        allocated = inst.allocated_type
        if inst.count is None:
            if elem is not None:
                def step(frame):
                    frame.values[iid] = alloc(elem)
                    charge("alloca", int_cost)
            else:
                def step(frame):
                    frame.values[iid] = alloc(
                        interp._sizeof(allocated, frame))
                    charge("alloca", int_cost)
            return step
        gc = self._getter(inst.count)

        def step(frame):
            count = int(gc(frame))
            if count < 0:
                raise vpr("negative VLA extent")
            size = elem if elem is not None \
                else interp._sizeof(allocated, frame)
            frame.values[iid] = alloc(size * max(count, 1))
            charge("alloca", int_cost)

        return step

    def _compile_gep(self, inst: GEPInst) -> Callable:
        interp = self.interp
        iid = id(inst)
        charge = interp.accounting.report.charge
        int_cost = interp.accounting.costs.int_op

        def fallback(frame):
            frame.values[iid] = interp._gep(inst, frame)
            charge("addr", int_cost)

        pointee = inst.pointer.type.pointee
        stride0 = self._static_sizeof(pointee)
        if stride0 is None:
            return fallback
        const_offset = 0
        terms: List[Tuple[Callable, int]] = []
        indices = inst.indices
        if isinstance(indices[0], ConstantInt):
            const_offset += indices[0].value * stride0
        else:
            terms.append((self._getter(indices[0]), stride0))
        current = pointee
        for index in indices[1:]:
            if isinstance(current, ArrayType):
                stride = self._static_sizeof(current.element)
                if stride is None:
                    return fallback
                if isinstance(index, ConstantInt):
                    const_offset += index.value * stride
                else:
                    terms.append((self._getter(index), stride))
                current = current.element
            elif isinstance(current, StructType):
                if not isinstance(index, ConstantInt):
                    return fallback
                try:
                    const_offset += current.field_offset(index.value)
                except Exception:
                    return fallback
                current = current.fields[index.value]
            else:
                return fallback  # gep into scalar: legacy raises

        gp = self._getter(inst.pointer)
        if not terms:
            def step(frame):
                frame.values[iid] = int(gp(frame)) + const_offset
                charge("addr", int_cost)
        elif len(terms) == 1:
            g0, s0 = terms[0]

            def step(frame):
                frame.values[iid] = (int(gp(frame)) + const_offset
                                     + int(g0(frame)) * s0)
                charge("addr", int_cost)
        else:
            def step(frame):
                addr = int(gp(frame)) + const_offset
                for g, s in terms:
                    addr += int(g(frame)) * s
                frame.values[iid] = addr
                charge("addr", int_cost)

        return step

    # ---- comparisons, casts, misc -------------------------------- #

    def _compile_icmp(self, inst: ICmpInst) -> Callable:
        value = self._icmp_value(inst)
        iid = id(inst)

        def step(frame):
            frame.values[iid] = value(frame)

        return step

    def _icmp_value(self, inst: ICmpInst) -> Callable:
        interp = self.interp
        ga = self._getter(inst.operands[0])
        gb = self._getter(inst.operands[1])
        charge = interp.accounting.report.charge
        int_cost = interp.accounting.costs.int_op
        bits = (inst.operands[0].type.bits
                if inst.operands[0].type.is_integer else 64)
        umask = (1 << bits) - 1
        pred = inst.predicate
        if pred == "eq":
            def test(a, b):
                return a == b
        elif pred == "ne":
            def test(a, b):
                return a != b
        elif pred == "slt":
            def test(a, b):
                return a < b
        elif pred == "sle":
            def test(a, b):
                return a <= b
        elif pred == "sgt":
            def test(a, b):
                return a > b
        elif pred == "sge":
            def test(a, b):
                return a >= b
        elif pred == "ult":
            def test(a, b):
                return (a & umask) < (b & umask)
        elif pred == "ule":
            def test(a, b):
                return (a & umask) <= (b & umask)
        elif pred == "ugt":
            def test(a, b):
                return (a & umask) > (b & umask)
        else:  # uge
            def test(a, b):
                return (a & umask) >= (b & umask)

        def value(frame):
            result = 1 if test(ga(frame), gb(frame)) else 0
            charge("icmp", int_cost)
            return result

        return value

    def _compile_fcmp(self, inst: FCmpInst) -> Callable:
        value = self._fcmp_value(inst)
        iid = id(inst)

        def step(frame):
            frame.values[iid] = value(frame)

        return step

    def _fcmp_value(self, inst: FCmpInst) -> Callable:
        interp = self.interp
        ga = self._getter(inst.operands[0])
        gb = self._getter(inst.operands[1])
        charge = interp.accounting.report.charge
        cost = interp.accounting.costs.f64_other
        pred = inst.predicate
        fcmp_values = interp._fcmp_values

        def value(frame):
            result = fcmp_values(ga(frame), gb(frame), pred)
            charge("fcmp", cost)
            return result

        return value

    def _compile_cast(self, inst: CastInst) -> Callable:
        interp = self.interp
        gs = self._getter(inst.source)
        iid = id(inst)
        charge = interp.accounting.report.charge
        int_cost = interp.accounting.costs.int_op

        def step(frame):
            result = interp._cast_value(inst, gs(frame), frame)
            charge("cast", int_cost)
            frame.values[iid] = result

        return step

    def _compile_fneg(self, inst: FNegInst) -> Callable:
        interp = self.interp
        gv = self._getter(inst.operands[0])
        iid = id(inst)
        charge = interp.accounting.report.charge
        cost = interp.accounting.costs.f64_other
        f32 = self._f32
        if inst.type.is_float and inst.type.bits == 32:
            def step(frame):
                value = gv(frame)
                frame.values[iid] = (-value if isinstance(value, BigFloat)
                                     else f32(-value))
                charge("fneg", cost)
        else:
            def step(frame):
                frame.values[iid] = -gv(frame)
                charge("fneg", cost)

        return step

    def _compile_select(self, inst: SelectInst) -> Callable:
        interp = self.interp
        gc = self._getter(inst.condition)
        gt = self._getter(inst.true_value)
        gf = self._getter(inst.false_value)
        iid = id(inst)
        charge = interp.accounting.report.charge
        int_cost = interp.accounting.costs.int_op

        def step(frame):
            chosen = gt(frame) if gc(frame) else gf(frame)
            charge("select", int_cost)
            frame.values[iid] = chosen

        return step

    # ---- calls --------------------------------------------------- #

    def _compile_call(self, inst: CallInst) -> Callable:
        interp = self.interp
        iid = id(inst)
        getters = [self._getter(a) for a in inst.operands]
        callee = inst.callee
        if isinstance(callee, Function) and not callee.is_declaration:
            call = interp.call_function

            def step(frame):
                frame.values[iid] = call(
                    callee, [g(frame) for g in getters])

            return step
        name = callee.name if isinstance(callee, Function) else str(callee)
        handler = interp._builtins.get(name)
        if handler is None:
            vpr = self._vpr

            def step(frame):
                raise vpr(f"call to unknown runtime function {name!r}")

            return step
        report = interp.accounting.report
        profile = interp.profile
        if profile is not None:
            record = profile.record_builtin

            def step(frame):
                args = [g(frame) for g in getters]
                before = report.cycles
                frame.values[iid] = handler(args, inst, frame)
                record(name, report.cycles - before)
        else:
            def step(frame):
                frame.values[iid] = handler(
                    [g(frame) for g in getters], inst, frame)

        return step
