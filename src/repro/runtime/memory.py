"""Byte-addressed memory model for the IR interpreter.

Addresses are plain integers; cells hold Python runtime objects (ints,
floats, :class:`~repro.bigfloat.BigFloat` values, MPFR handles) together
with the byte span they occupy, so address arithmetic (GEP) works exactly
as in C while the cache model sees realistic byte traffic.

Stack allocation follows scope lifetimes (mark/release), heap allocation
tracks malloc/free, and every access notifies an optional observer (the
cache model).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

STACK_BASE = 0x1000_0000
HEAP_BASE = 0x8000_0000
GLOBAL_BASE = 0x0010_0000


class MemoryError_(RuntimeError):
    """Invalid access: bad free, overlapping store, wild pointer."""


class Memory:
    """Object-cell memory with byte addressing."""

    def __init__(self, observer: Optional[Callable[[str, int, int], None]] = None):
        self.cells: Dict[int, Tuple[object, int]] = {}
        self.stack_pointer = STACK_BASE
        self.heap_pointer = HEAP_BASE
        self.global_pointer = GLOBAL_BASE
        self.heap_blocks: Dict[int, int] = {}  # base -> size
        self.observer = observer
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------ #

    def alloc_stack(self, nbytes: int) -> int:
        nbytes = max(1, int(nbytes))
        addr = self.stack_pointer
        self.stack_pointer += _align(nbytes, 8)
        return addr

    def stack_mark(self) -> int:
        return self.stack_pointer

    def stack_release(self, mark: int) -> None:
        """Free everything allocated after ``mark`` (scope exit)."""
        doomed = [a for a in self.cells if mark <= a < self.stack_pointer
                  and a >= STACK_BASE and a < HEAP_BASE]
        for a in doomed:
            del self.cells[a]
        self.stack_pointer = mark

    def alloc_heap(self, nbytes: int) -> int:
        nbytes = max(1, int(nbytes))
        addr = self.heap_pointer
        self.heap_pointer += _align(nbytes, 16)
        self.heap_blocks[addr] = nbytes
        return addr

    def free_heap(self, addr: int) -> None:
        if addr == 0:
            return  # free(NULL) is a no-op
        size = self.heap_blocks.pop(addr, None)
        if size is None:
            raise MemoryError_(f"free of non-heap address {addr:#x}")
        doomed = [a for a in self.cells if addr <= a < addr + size]
        for a in doomed:
            del self.cells[a]

    def alloc_global(self, nbytes: int) -> int:
        addr = self.global_pointer
        self.global_pointer += _align(max(1, int(nbytes)), 8)
        return addr

    # ------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------ #

    def store(self, addr: int, value: object, nbytes: int) -> None:
        if addr == 0:
            raise MemoryError_("store through null pointer")
        self.cells[addr] = (value, nbytes)
        self.bytes_written += nbytes
        if self.observer is not None:
            self.observer("w", addr, nbytes)

    def load(self, addr: int, nbytes: int, default: object = None) -> object:
        if addr == 0:
            raise MemoryError_("load through null pointer")
        self.bytes_read += nbytes
        if self.observer is not None:
            self.observer("r", addr, nbytes)
        cell = self.cells.get(addr)
        if cell is None:
            return default  # uninitialized memory reads as the default
        return cell[0]

    def load_bytes(self, addr: int, n: int) -> bytes:
        """Raw byte view for the UNUM machine (cells must hold ints)."""
        cell = self.cells.get(addr)
        if cell is not None and isinstance(cell[0], (bytes, bytearray)):
            return bytes(cell[0][:n])
        if cell is not None and isinstance(cell[0], int):
            return int(cell[0]).to_bytes(n, "little", signed=False)
        return b"\x00" * n

    def store_bytes(self, addr: int, payload: bytes) -> None:
        self.store(addr, bytes(payload), len(payload))


def _align(n: int, a: int) -> int:
    return (n + a - 1) // a * a
