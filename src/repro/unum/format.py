"""UNUM type-I memory format used by the coprocessor backend.

The paper's hardware (Bocco et al. [9]) stores values in a UNUM layout
whose geometry is fixed per *type configuration*: the ``ess``/``fss``
attributes of a ``vpfloat<unum, ess, fss[, size]>`` declaration choose

- exponent width  ``es = 2**ess`` bits (ess in 1..4 -> 2..16 bits),
- fraction width  ``fs = min(2**fss, size*8 - (2 + es + ess + fss))``
  (fss in 1..9 -> up to 512 bits), and
- total size  ``ceil((2 + es + 2**fss + ess + fss) / 8)`` bytes when no
  ``size`` attribute truncates the fraction (paper Table II).

Bit layout, MSB to LSB::

    [ sign:1 | ubit:1 | es-1:ess | fs-1:fss | exponent:es | fraction:fs ]

The exponent is biased IEEE-style (bias ``2**(es-1) - 1``); an all-zero
exponent field encodes subnormals, all-ones encodes inf/NaN.  The ubit
(interval uncertainty) is carried but the paper's backend leaves interval
arithmetic aside, so it is always 0 for computed values.

:func:`paper_literal_bits` additionally reproduces the *literal display
convention* of paper Table III, where the utag fields are left zero
("properly set later in the compilation flow") and the exponent is biased
against the maximum exponent value.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bigfloat import BigFloat, Kind, RNDN, RoundingMode, round_significand

#: Architectural limits of the target ISA (paper §III-A2).
ESS_MIN, ESS_MAX = 1, 4
FSS_MIN, FSS_MAX = 1, 9
SIZE_MIN, SIZE_MAX = 1, 68


class UnumConfigError(ValueError):
    """A vpfloat<unum,...> attribute is outside the ISA's limits."""


@dataclass(frozen=True)
class UnumConfig:
    """Geometry of a UNUM storage format: ``vpfloat<unum, ess, fss[, size]>``."""

    ess: int
    fss: int
    size: int | None = None  # maximum bytes (the optional size-info)

    def __post_init__(self):
        if not ESS_MIN <= self.ess <= ESS_MAX:
            raise UnumConfigError(
                f"ess must be in {ESS_MIN}..{ESS_MAX}, got {self.ess}"
            )
        if not FSS_MIN <= self.fss <= FSS_MAX:
            raise UnumConfigError(
                f"fss must be in {FSS_MIN}..{FSS_MAX}, got {self.fss}"
            )
        if self.size is not None:
            if not SIZE_MIN <= self.size <= SIZE_MAX:
                raise UnumConfigError(
                    f"size must be in {SIZE_MIN}..{SIZE_MAX} bytes, got {self.size}"
                )
            if self.fraction_bits < 1:
                raise UnumConfigError(
                    f"size {self.size} leaves no fraction bits for "
                    f"ess={self.ess}, fss={self.fss}"
                )

    # ------------------------------------------------------------ #
    # Geometry (paper Table II)
    # ------------------------------------------------------------ #

    @property
    def exponent_bits(self) -> int:
        """Exponent field width in bits (2**ess)."""
        return 1 << self.ess

    @property
    def max_fraction_bits(self) -> int:
        """Unbounded fraction width (2**fss)."""
        return 1 << self.fss

    @property
    def tag_bits(self) -> int:
        """sign + ubit + es-1 field + fs-1 field."""
        return 2 + self.ess + self.fss

    @property
    def fraction_bits(self) -> int:
        """Fraction width after any size-info truncation."""
        full = self.max_fraction_bits
        if self.size is None:
            return full
        budget = self.size * 8 - (self.tag_bits + self.exponent_bits)
        return min(full, budget)

    @property
    def precision(self) -> int:
        """Significand precision including the hidden bit."""
        return self.fraction_bits + 1

    @property
    def total_bits(self) -> int:
        return self.tag_bits + self.exponent_bits + self.fraction_bits

    @property
    def size_bytes(self) -> int:
        """Bytes occupied in memory (paper Table II 'size' column)."""
        if self.size is not None:
            return self.size
        return (self.total_bits + 7) // 8

    @property
    def bias(self) -> int:
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_biased_exponent(self) -> int:
        return (1 << self.exponent_bits) - 1

    def __str__(self) -> str:
        if self.size is None:
            return f"vpfloat<unum, {self.ess}, {self.fss}>"
        return f"vpfloat<unum, {self.ess}, {self.fss}, {self.size}>"


def sizeof_vpfloat(ess: int, fss: int, size: int | None = None) -> int:
    """``__sizeof_vpfloat`` runtime entry: validate attributes, return bytes.

    This is the function the compiler emits for every dynamically-sized
    unum declaration (paper §III-A5): it checks the attribute ranges and
    yields the stack-allocation size.
    """
    return UnumConfig(ess, fss, size).size_bytes


# ----------------------------------------------------------------- #
# Encode / decode
# ----------------------------------------------------------------- #

def encode(value: BigFloat, config: UnumConfig,
           rm: RoundingMode = RNDN) -> int:
    """Pack a BigFloat into the UNUM bit pattern (rounding to the format).

    Overflow saturates to infinity; magnitudes below the subnormal range
    flush toward zero under the rounding mode.
    """
    es, fs = config.exponent_bits, config.fraction_bits
    tag = _utag(config, ubit=0)
    exp_all_ones = config.max_biased_exponent

    if value.is_nan():
        # NaN: all-ones exponent, nonzero fraction (MSB set).
        return _pack(config, 0, tag, exp_all_ones, 1 << max(0, fs - 1))
    if value.is_inf():
        return _pack(config, value.sign, tag, exp_all_ones, 0)
    if value.is_zero():
        return _pack(config, value.sign, tag, 0, 0)

    prec = fs + 1
    mant, exp, _ = round_significand(value.sign, value.mant, value.exp, prec, rm)
    unbiased = exp + prec - 1  # value in [2**unbiased, 2**(unbiased+1))
    biased = unbiased + config.bias
    if biased >= exp_all_ones:
        return _pack(config, value.sign, tag, exp_all_ones, 0)  # overflow->inf
    if biased <= 0:
        # Subnormal: fraction scaled by 2**(1 - bias - prec + 1).
        shift = 1 - biased
        full = mant  # prec bits incl. hidden
        if shift >= prec + 2:
            frac = 0
            sticky = True
        else:
            frac = full >> shift
            sticky = bool(full & ((1 << shift) - 1))
        if sticky and _round_up_subnormal(rm, value.sign, full, shift):
            frac += 1
            if frac >> fs:  # rounded up into the normal range
                return _pack(config, value.sign, tag, 1, 0)
        if frac == 0:
            return _pack(config, value.sign, tag, 0, 0)
        return _pack(config, value.sign, tag, 0, frac)
    frac = mant - (1 << (prec - 1))  # drop hidden bit
    return _pack(config, value.sign, tag, biased, frac)


def _round_up_subnormal(rm: RoundingMode, sign: int, full: int, shift: int) -> bool:
    low = full & ((1 << shift) - 1)
    half = 1 << (shift - 1)
    from ..bigfloat.rounding import _should_increment

    return _should_increment(rm, sign, bool((full >> shift) & 1), low, half, False)


def decode(bits: int, config: UnumConfig) -> BigFloat:
    """Unpack a UNUM bit pattern into an exact BigFloat."""
    es, fs = config.exponent_bits, config.fraction_bits
    frac = bits & ((1 << fs) - 1)
    biased = (bits >> fs) & ((1 << es) - 1)
    sign = (bits >> (fs + es + config.ess + self_fss_bits(config) + 1)) & 1
    prec = fs + 1
    if biased == config.max_biased_exponent:
        if frac:
            return BigFloat.nan(prec)
        return BigFloat.inf(prec, sign)
    if biased == 0:
        if frac == 0:
            return BigFloat.zero(prec, sign)
        # Subnormal: frac * 2**(1 - bias - fs)
        mant, exp, _ = round_significand(sign, frac, 1 - config.bias - fs, prec)
        return BigFloat(Kind.FINITE, sign, mant, exp, prec)
    mant = frac | (1 << fs)
    exp = (biased - config.bias) - fs
    mant_n, exp_n, _ = round_significand(sign, mant, exp, prec)
    return BigFloat(Kind.FINITE, sign, mant_n, exp_n, prec)


def self_fss_bits(config: UnumConfig) -> int:
    return config.fss


def _utag(config: UnumConfig, ubit: int) -> int:
    """Pack ubit and the es-1 / fs-1 descriptor fields."""
    es_m1 = config.exponent_bits - 1
    fs_m1 = config.fraction_bits - 1
    # The fs-1 field is fss bits wide; truncated formats still fit because
    # fraction_bits <= 2**fss.
    return (ubit << (config.ess + config.fss)) | (es_m1 << config.fss) | fs_m1


def _pack(config: UnumConfig, sign: int, tag: int, biased_exp: int,
          frac: int) -> int:
    es, fs = config.exponent_bits, config.fraction_bits
    return (
        (sign << (1 + config.ess + config.fss + es + fs))
        | (tag << (es + fs))
        | (biased_exp << fs)
        | frac
    )


def extract_fields(bits: int, config: UnumConfig) -> dict:
    """Explode a bit pattern into named fields (debugging / tests)."""
    es, fs = config.exponent_bits, config.fraction_bits
    frac = bits & ((1 << fs) - 1)
    biased = (bits >> fs) & ((1 << es) - 1)
    fs_m1 = (bits >> (fs + es)) & ((1 << config.fss) - 1)
    es_m1 = (bits >> (fs + es + config.fss)) & ((1 << config.ess) - 1)
    ubit = (bits >> (fs + es + config.fss + config.ess)) & 1
    sign = (bits >> (fs + es + config.fss + config.ess + 1)) & 1
    return {
        "sign": sign,
        "ubit": ubit,
        "es_minus_1": es_m1,
        "fs_minus_1": fs_m1,
        "biased_exponent": biased,
        "fraction": frac,
    }


# ----------------------------------------------------------------- #
# Paper Table III literal display convention
# ----------------------------------------------------------------- #

def paper_literal_bits(value: BigFloat, config: UnumConfig) -> int:
    """Encode a literal using the paper's Table III display convention.

    The utag fields (ubit, es-1, fs-1) are left zero -- the paper's
    footnote explains they are "only properly set later in the compilation
    flow" -- and the exponent is biased against the maximum exponent value
    (stored = unbiased + 2**es - 1), which reproduces the published hex
    patterns, e.g. ``vpfloat<unum,3,6,6>`` of 1.3 -> ``0x001FE999999A``.
    """
    if not value.is_finite() or value.is_zero():
        raise ValueError("paper literal encoding is defined for finite nonzero")
    es, fs = config.exponent_bits, config.fraction_bits
    prec = fs + 1
    mant, exp, _ = round_significand(value.sign, value.mant, value.exp, prec)
    unbiased = exp + prec - 1
    stored = unbiased + ((1 << es) - 1)
    frac = mant - (1 << (prec - 1))
    return (value.sign << (config.tag_bits - 1 + es + fs)) | (stored << fs) | frac


def mpfr_literal_bits(value: BigFloat, exp_bits: int, prec_bits: int) -> int:
    """Encode a ``vpfloat<mpfr, e, p>`` literal per Table III.

    Layout ``[sign][biased exponent][fraction]`` with the same
    maximum-value bias, e.g. ``vpfloat<mpfr,8,48>`` of 1.3 ->
    ``0x0FF4CCCCCCCCCD``.
    """
    if not value.is_finite() or value.is_zero():
        raise ValueError("paper literal encoding is defined for finite nonzero")
    prec = prec_bits + 1
    mant, exp, _ = round_significand(value.sign, value.mant, value.exp, prec)
    unbiased = exp + prec - 1
    stored = unbiased + ((1 << exp_bits) - 1)
    frac = mant - (1 << (prec - 1))
    return (value.sign << (exp_bits + prec_bits)) | (stored << prec_bits) | frac


def chunked_hex(bits: int, total_bits: int, prefix: str) -> str:
    """Render as the paper does: 64-bit chunks, last chunk holds sign/fields."""
    chunks = []
    remaining = bits
    width = total_bits
    while width > 64:
        chunks.append(f"{remaining & ((1 << 64) - 1):016X}")
        remaining >>= 64
        width -= 64
    hex_digits = (width + 3) // 4
    chunks.append(f"{remaining:0{hex_digits}X}")
    # Paper's tables print the low chunk first for multi-chunk values.
    return "0x" + prefix + "".join(chunks)
