"""Posit (type-III unum) format support — the grammar's third format.

The paper's grammar reserves ``vpfloat<posit, ...>`` "with the
possibility of adding new formats or representations as they are
proposed" (§III-A1).  This module adds that format to the toolchain:
``vpfloat<posit, es, nbits>`` maps *exp-info* to the exponent field size
``es`` and *prec-info* to the total width ``nbits``.

Standard posit encoding (Gustafson & Yonemoto):

- ``0`` is zero, ``1000...0`` is NaR (not-a-real);
- negative patterns are two's complements of their absolute value;
- positive patterns: ``[0 | regime | es exponent bits | fraction]``
  where a regime of ``m`` ones (terminated by 0) means ``k = m - 1`` and
  ``m`` zeros (terminated by 1) means ``k = -m``; the represented value
  is ``(1 + f) * 2**(k * 2**es + e)`` — *tapered* precision: values near
  1 get the most fraction bits.

Because unsigned pattern order equals value order for positive posits,
correct posit rounding (round to nearest, ties to even pattern, never to
zero/NaR, saturate at minpos/maxpos) reduces to integer rounding of an
unbounded "ideal" pattern — which is how :func:`posit_encode` works.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bigfloat import BigFloat, Kind
from ..bigfloat.rounding import round_significand


class PositConfigError(ValueError):
    """Attributes outside the supported posit geometry."""


@dataclass(frozen=True)
class PositConfig:
    """Geometry of ``vpfloat<posit, es, nbits>``."""

    es: int
    nbits: int

    def __post_init__(self):
        if not 0 <= self.es <= 4:
            raise PositConfigError(f"posit es must be in 0..4, got {self.es}")
        if not 3 <= self.nbits <= 64:
            raise PositConfigError(
                f"posit nbits must be in 3..64, got {self.nbits}"
            )

    @property
    def size_bytes(self) -> int:
        return (self.nbits + 7) // 8

    @property
    def max_fraction_bits(self) -> int:
        """Fraction bits of values with the shortest regime (near 1)."""
        return max(0, self.nbits - 3 - self.es)

    @property
    def useed_log2(self) -> int:
        return 1 << self.es

    @property
    def nar_pattern(self) -> int:
        return 1 << (self.nbits - 1)

    @property
    def maxpos_pattern(self) -> int:
        return (1 << (self.nbits - 1)) - 1

    def __str__(self) -> str:
        return f"vpfloat<posit, {self.es}, {self.nbits}>"


def posit_encode(value: BigFloat, config: PositConfig) -> int:
    """Round a BigFloat to the nearest posit and return its bit pattern."""
    n = config.nbits
    if value.is_zero():
        return 0
    if value.is_nan() or value.is_inf():
        return config.nar_pattern
    sign = value.sign
    magnitude = abs(value)

    scale = magnitude.exponent() - 1  # |v| = m * 2**scale, m in [1, 2)
    k, e = divmod(scale, config.useed_log2)

    # Ideal unbounded pattern: sign(0) | regime | exponent | fraction.
    if k >= 0:
        regime_bits = k + 2
        regime_value = (1 << (k + 2)) - 2  # k+1 ones then a zero
    else:
        regime_bits = -k + 1
        regime_value = 1  # -k zeros then a one
    frac_width = magnitude.prec - 1
    fraction = magnitude.mant - (1 << frac_width)  # drop the hidden bit
    ideal_width = 1 + regime_bits + config.es + frac_width
    ideal = (regime_value << (config.es + frac_width)) \
        | (e << frac_width) | fraction

    if ideal_width <= n:
        pattern = ideal << (n - ideal_width)
    else:
        # Integer RNE on the pattern == posit rounding (pattern order is
        # value order for positive posits).
        shift = ideal_width - n
        low = ideal & ((1 << shift) - 1)
        pattern = ideal >> shift
        half = 1 << (shift - 1)
        if low > half or (low == half and (pattern & 1)):
            pattern += 1
    # Saturate: never round to zero, NaR, or beyond maxpos.
    pattern = max(1, min(pattern, config.maxpos_pattern))
    if sign:
        pattern = (-pattern) & ((1 << n) - 1)
    return pattern


def posit_decode(bits: int, config: PositConfig) -> BigFloat:
    """Exact BigFloat value of a posit bit pattern."""
    n = config.nbits
    bits &= (1 << n) - 1
    if bits == 0:
        return BigFloat.zero(max(2, config.max_fraction_bits + 1))
    if bits == config.nar_pattern:
        return BigFloat.nan(max(2, config.max_fraction_bits + 1))
    sign = (bits >> (n - 1)) & 1
    if sign:
        bits = (-bits) & ((1 << n) - 1)

    # Regime: run length from bit n-2 downward.
    position = n - 2
    lead = (bits >> position) & 1
    run = 0
    while position >= 0 and ((bits >> position) & 1) == lead:
        run += 1
        position -= 1
    position -= 1  # skip the terminating bit (may fall off the end)
    k = (run - 1) if lead else -run

    exponent = 0
    es_taken = 0
    while es_taken < config.es and position >= 0:
        exponent = (exponent << 1) | ((bits >> position) & 1)
        position -= 1
        es_taken += 1
    exponent <<= (config.es - es_taken)  # truncated bits read as zero

    frac_width = max(0, position + 1)  # regime may consume every bit
    fraction = bits & ((1 << frac_width) - 1) if frac_width > 0 else 0

    scale = k * config.useed_log2 + exponent
    prec = frac_width + 1
    mant = (1 << frac_width) | fraction
    mant_n, exp_n, _ = round_significand(sign, mant, scale - frac_width,
                                         prec)
    return BigFloat(Kind.FINITE, sign, mant_n, exp_n, prec)


def posit_round(value: BigFloat, config: PositConfig) -> BigFloat:
    """Round to the nearest representable posit (tapered rounding)."""
    return posit_decode(posit_encode(value, config), config)
