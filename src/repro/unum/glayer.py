"""The coprocessor's internal g-layer arithmetic.

Bocco's UNUM coprocessor decodes memory-format UNUMs into a wide internal
"g-layer" (general layer) format and computes there at the Working G-layer
Precision (WGP, paper §III-C2).  Results are rounded to WGP bits after
every operation, then re-encoded on store according to the current
ess/fss/MBB configuration.

We model a g-layer value as a :class:`BigFloat` at ``wgp`` bits; the
:class:`GLayerUnit` wraps the correctly-rounded kernels and reports the
cycle cost of each operation (mantissa-word-serial datapath, 64-bit words).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bigfloat import BigFloat, arith

#: Highest precision the ISA supports (fss = 9 -> 512 fraction bits).
MAX_WGP = 512


class GLayerError(ValueError):
    """Invalid WGP or g-layer operand."""


@dataclass(frozen=True)
class GCycleModel:
    """Cycle costs of the scalar g-layer datapath.

    The unit is word-serial over 64-bit mantissa chunks: an add streams
    both mantissas once; a multiply is quadratic in words (schoolbook
    multiplier array, one partial row per cycle); division/sqrt are
    digit-recurrence, linear in result bits with a per-word constant.
    Defaults approximate the SMURF accelerator's reported latencies.
    """

    add_base: int = 3
    add_per_word: int = 1
    mul_base: int = 4
    mul_per_word_sq: int = 1
    div_base: int = 8
    div_per_bit: float = 0.25
    sqrt_base: int = 10
    sqrt_per_bit: float = 0.33
    cmp_cost: int = 2
    mov_cost: int = 1
    cvt_cost: int = 3

    def words(self, wgp: int) -> int:
        return (wgp + 63) // 64

    def add(self, wgp: int) -> int:
        return self.add_base + self.add_per_word * self.words(wgp)

    def mul(self, wgp: int) -> int:
        w = self.words(wgp)
        return self.mul_base + self.mul_per_word_sq * w * w

    def div(self, wgp: int) -> int:
        return self.div_base + int(self.div_per_bit * wgp)

    def sqrt(self, wgp: int) -> int:
        return self.sqrt_base + int(self.sqrt_per_bit * wgp)

    def fma(self, wgp: int) -> int:
        return self.mul(wgp) + self.add_per_word * self.words(wgp)


class GLayerUnit:
    """Functional + timing model of the g-layer ALU at a given WGP."""

    def __init__(self, wgp: int = 128, cycle_model: GCycleModel | None = None):
        self.cycle_model = cycle_model or GCycleModel()
        self.set_wgp(wgp)
        self.cycles = 0

    def set_wgp(self, wgp: int) -> None:
        if not 1 <= wgp <= MAX_WGP:
            raise GLayerError(f"WGP must be in 1..{MAX_WGP}, got {wgp}")
        self.wgp = wgp

    # Each op rounds to WGP and accrues cycles.
    def add(self, a: BigFloat, b: BigFloat) -> BigFloat:
        self.cycles += self.cycle_model.add(self.wgp)
        return arith.add(a, b, self.wgp)

    def sub(self, a: BigFloat, b: BigFloat) -> BigFloat:
        self.cycles += self.cycle_model.add(self.wgp)
        return arith.sub(a, b, self.wgp)

    def mul(self, a: BigFloat, b: BigFloat) -> BigFloat:
        self.cycles += self.cycle_model.mul(self.wgp)
        return arith.mul(a, b, self.wgp)

    def div(self, a: BigFloat, b: BigFloat) -> BigFloat:
        self.cycles += self.cycle_model.div(self.wgp)
        return arith.div(a, b, self.wgp)

    def sqrt(self, a: BigFloat) -> BigFloat:
        self.cycles += self.cycle_model.sqrt(self.wgp)
        return arith.sqrt(a, self.wgp)

    def fma(self, a: BigFloat, b: BigFloat, c: BigFloat) -> BigFloat:
        self.cycles += self.cycle_model.fma(self.wgp)
        return arith.fma(a, b, c, self.wgp)

    def neg(self, a: BigFloat) -> BigFloat:
        self.cycles += self.cycle_model.mov_cost
        return arith.neg(a, self.wgp)

    def cmp(self, a: BigFloat, b: BigFloat) -> int:
        self.cycles += self.cycle_model.cmp_cost
        return a.compare(b)
