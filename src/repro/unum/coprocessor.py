"""Architectural model of the UNUM variable-precision coprocessor.

Models the scalar RISC-V coprocessor of Bocco et al. [9] that the paper's
second backend targets (§III-C2):

- a register file of g-layer registers (``gr0..gr31``) holding decoded
  wide values;
- status/control registers: **ess**, **fss** (UNUM memory geometry),
  **WGP** (working g-layer precision used by the ALU) and **MBB** (memory
  byte budget bounding bytes moved per load/store);
- variable-byte-size loads and stores that encode/decode the UNUM memory
  format, with cost proportional to the bytes transferred;
- arithmetic executed by the :class:`~repro.unum.glayer.GLayerUnit`.

The paper's evaluation hit a hardware erratum in the coprocessor memory
subsystem (gesummv/adi always, plus 3mm/ludcmp/nussinov at maximum
precision under Polly).  :attr:`UnumCoprocessor.erratum_enabled` models
that documented bug so Fig. 2's failure cases can be reproduced and, for
our own runs, disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bigfloat import BigFloat
from .format import UnumConfig, decode, encode
from .glayer import GCycleModel, GLayerUnit

NUM_GREGISTERS = 32


class CoprocessorError(RuntimeError):
    """Architectural misuse: bad register, unconfigured geometry, etc."""


class MemorySubsystemErratum(RuntimeError):
    """Models the paper's coprocessor memory bug (Fig. 2 failed runs)."""


@dataclass
class CoprocessorStats:
    """Dynamic instruction/cycle accounting."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    config_writes: int = 0
    by_opcode: Dict[str, int] = field(default_factory=dict)

    def bump(self, opcode: str) -> None:
        self.instructions += 1
        self.by_opcode[opcode] = self.by_opcode.get(opcode, 0) + 1


@dataclass(frozen=True)
class MemoryCycleModel:
    """Load/store cost: fixed issue cost plus bus beats (8 bytes/beat)."""

    base: int = 4
    per_beat: int = 1

    def cost(self, nbytes: int) -> int:
        return self.base + self.per_beat * ((nbytes + 7) // 8)


class UnumCoprocessor:
    """Functional + timing model of the coprocessor's architectural state."""

    def __init__(
        self,
        wgp: int = 128,
        cycle_model: Optional[GCycleModel] = None,
        memory_model: Optional[MemoryCycleModel] = None,
        erratum_enabled: bool = False,
    ):
        self.glayer = GLayerUnit(wgp, cycle_model)
        self.memory_model = memory_model or MemoryCycleModel()
        self.registers: List[Optional[BigFloat]] = [None] * NUM_GREGISTERS
        self.ess: Optional[int] = None
        self.fss: Optional[int] = None
        self.mbb: Optional[int] = None
        self.stats = CoprocessorStats()
        self.erratum_enabled = erratum_enabled
        self._erratum_byte_count = 0

    # ------------------------------------------------------------ #
    # Control registers (paper: two control regs hold ess/fss; WGP and
    # MBB bound computation precision and memory traffic).
    # ------------------------------------------------------------ #

    @property
    def cycles(self) -> int:
        return self.glayer.cycles

    def add_cycles(self, n: int) -> None:
        self.glayer.cycles += n

    def set_ess(self, value: int) -> None:
        UnumConfig(value, self.fss or 1)  # validates range
        self.ess = value
        self.stats.config_writes += 1
        self.stats.bump("sucfg.ess")
        self.add_cycles(1)

    def set_fss(self, value: int) -> None:
        UnumConfig(self.ess or 1, value)
        self.fss = value
        self.stats.config_writes += 1
        self.stats.bump("sucfg.fss")
        self.add_cycles(1)

    def set_wgp(self, value: int) -> None:
        self.glayer.set_wgp(value)
        self.stats.config_writes += 1
        self.stats.bump("sucfg.wgp")
        self.add_cycles(1)

    def set_mbb(self, value: int) -> None:
        if not 1 <= value <= 68:
            raise CoprocessorError(f"MBB must be in 1..68 bytes, got {value}")
        self.mbb = value
        self.stats.config_writes += 1
        self.stats.bump("sucfg.mbb")
        self.add_cycles(1)

    def memory_config(self) -> UnumConfig:
        if self.ess is None or self.fss is None:
            raise CoprocessorError("ess/fss not configured before memory access")
        size = self.mbb
        config = UnumConfig(self.ess, self.fss)
        if size is not None and size < config.size_bytes:
            config = UnumConfig(self.ess, self.fss, size)
        return config

    # ------------------------------------------------------------ #
    # Register file
    # ------------------------------------------------------------ #

    def _check_reg(self, r: int) -> None:
        if not 0 <= r < NUM_GREGISTERS:
            raise CoprocessorError(f"register gr{r} out of range")

    def read(self, r: int) -> BigFloat:
        self._check_reg(r)
        value = self.registers[r]
        if value is None:
            raise CoprocessorError(f"read of uninitialized register gr{r}")
        return value

    def write(self, r: int, value: BigFloat) -> None:
        self._check_reg(r)
        self.registers[r] = value

    # ------------------------------------------------------------ #
    # Memory instructions (encode/decode the UNUM format; byte count
    # bounded by MBB).  The raw byte I/O is delegated to ``memory``, a
    # byte-addressed object exposing load_bytes/store_bytes.
    # ------------------------------------------------------------ #

    def _erratum_tick(self, nbytes: int) -> None:
        if not self.erratum_enabled:
            return
        self._erratum_byte_count += nbytes
        # The documented bug: wide bursts eventually corrupt the memory
        # pipeline; surfaces only for large footprints.
        if nbytes > 64 or self._erratum_byte_count > (1 << 22):
            raise MemorySubsystemErratum(
                "coprocessor memory subsystem erratum triggered "
                "(paper §IV-B: gesummv/adi + 3 kernels at max precision)"
            )

    def load(self, rd: int, memory, address: int) -> None:
        """``ldu rd, (addr)``: decode a UNUM from memory into a register."""
        config = self.memory_config()
        nbytes = config.size_bytes
        self._erratum_tick(nbytes)
        raw = memory.load_bytes(address, nbytes)
        bits = int.from_bytes(raw, "little")
        self.write(rd, decode(bits, config))
        self.stats.loads += 1
        self.stats.bytes_loaded += nbytes
        self.stats.bump("ldu")
        self.add_cycles(self.memory_model.cost(nbytes))

    def store(self, rs: int, memory, address: int) -> None:
        """``stu rs, (addr)``: encode a register into the UNUM format."""
        config = self.memory_config()
        nbytes = config.size_bytes
        self._erratum_tick(nbytes)
        bits = encode(self.read(rs), config)
        memory.store_bytes(address, bits.to_bytes(nbytes, "little"))
        self.stats.stores += 1
        self.stats.bytes_stored += nbytes
        self.stats.bump("stu")
        self.add_cycles(self.memory_model.cost(nbytes))

    # ------------------------------------------------------------ #
    # Arithmetic instructions
    # ------------------------------------------------------------ #

    def _binop(self, opcode: str, kernel, rd: int, ra: int, rb: int) -> None:
        self.write(rd, kernel(self.read(ra), self.read(rb)))
        self.stats.bump(opcode)

    def gadd(self, rd: int, ra: int, rb: int) -> None:
        self._binop("gadd", self.glayer.add, rd, ra, rb)

    def gsub(self, rd: int, ra: int, rb: int) -> None:
        self._binop("gsub", self.glayer.sub, rd, ra, rb)

    def gmul(self, rd: int, ra: int, rb: int) -> None:
        self._binop("gmul", self.glayer.mul, rd, ra, rb)

    def gdiv(self, rd: int, ra: int, rb: int) -> None:
        self._binop("gdiv", self.glayer.div, rd, ra, rb)

    def gsqrt(self, rd: int, ra: int) -> None:
        self.write(rd, self.glayer.sqrt(self.read(ra)))
        self.stats.bump("gsqrt")

    def gfma(self, rd: int, ra: int, rb: int, rc: int) -> None:
        self.write(
            rd, self.glayer.fma(self.read(ra), self.read(rb), self.read(rc))
        )
        self.stats.bump("gfma")

    def gneg(self, rd: int, ra: int) -> None:
        self.write(rd, self.glayer.neg(self.read(ra)))
        self.stats.bump("gneg")

    def gmov(self, rd: int, ra: int) -> None:
        self.write(rd, self.read(ra))
        self.stats.bump("gmov")
        self.add_cycles(self.glayer.cycle_model.mov_cost)

    def gcmp(self, ra: int, rb: int) -> int:
        self.stats.bump("gcmp")
        return self.glayer.cmp(self.read(ra), self.read(rb))

    # Conversions between the scalar core's IEEE doubles and g-layer.
    def gcvt_d2g(self, rd: int, value: float) -> None:
        self.write(rd, BigFloat.from_float(value, self.glayer.wgp))
        self.stats.bump("gcvt.d.g")
        self.add_cycles(self.glayer.cycle_model.cvt_cost)

    def gcvt_g2d(self, ra: int) -> float:
        self.stats.bump("gcvt.g.d")
        self.add_cycles(self.glayer.cycle_model.cvt_cost)
        return self.read(ra).to_float()

    def gcvt_i2g(self, rd: int, value: int) -> None:
        self.write(rd, BigFloat.from_int(value, self.glayer.wgp))
        self.stats.bump("gcvt.w.g")
        self.add_cycles(self.glayer.cycle_model.cvt_cost)
