"""UNUM type-I format and the variable-precision coprocessor model.

Substrate for the paper's second backend (DESIGN.md §2): the memory
format codec (:mod:`repro.unum.format`), the internal g-layer ALU
(:mod:`repro.unum.glayer`), and the architectural coprocessor model with
ess/fss/WGP/MBB control state (:mod:`repro.unum.coprocessor`).
"""

from .coprocessor import (
    NUM_GREGISTERS,
    CoprocessorError,
    CoprocessorStats,
    MemoryCycleModel,
    MemorySubsystemErratum,
    UnumCoprocessor,
)
from .format import (
    ESS_MAX,
    ESS_MIN,
    FSS_MAX,
    FSS_MIN,
    SIZE_MAX,
    SIZE_MIN,
    UnumConfig,
    UnumConfigError,
    chunked_hex,
    decode,
    encode,
    extract_fields,
    mpfr_literal_bits,
    paper_literal_bits,
    sizeof_vpfloat,
)
from .glayer import MAX_WGP, GCycleModel, GLayerError, GLayerUnit
from .posit import (
    PositConfig,
    PositConfigError,
    posit_decode,
    posit_encode,
    posit_round,
)

__all__ = [
    "UnumConfig",
    "UnumConfigError",
    "encode",
    "decode",
    "extract_fields",
    "paper_literal_bits",
    "mpfr_literal_bits",
    "chunked_hex",
    "sizeof_vpfloat",
    "ESS_MIN",
    "ESS_MAX",
    "FSS_MIN",
    "FSS_MAX",
    "SIZE_MIN",
    "SIZE_MAX",
    "GLayerUnit",
    "GLayerError",
    "GCycleModel",
    "MAX_WGP",
    "UnumCoprocessor",
    "CoprocessorError",
    "CoprocessorStats",
    "MemoryCycleModel",
    "MemorySubsystemErratum",
    "NUM_GREGISTERS",
    "PositConfig",
    "PositConfigError",
    "posit_encode",
    "posit_decode",
    "posit_round",
]
