"""Abstract syntax tree for the vpfloat C dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .ctypes import CType


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


# ----------------------------------------------------------------- #
# Expressions
# ----------------------------------------------------------------- #

@dataclass
class Expr(Node):
    #: Filled by semantic analysis.
    ctype: Optional[CType] = field(default=None, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int = 0
    unsigned: bool = False
    long: bool = False


@dataclass
class FloatLit(Expr):
    text: str = "0.0"
    #: '' = double, 'f' = float, 'v' = unum literal, 'y' = mpfr literal.
    suffix: str = ""


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class Ident(Expr):
    name: str = ""
    #: Resolved declaration (VarDecl/ParamDecl), set by sema.
    decl: object = field(default=None, kw_only=True)


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class Unary(Expr):
    """Prefix ops: -, +, !, ~, ++, --; postfix ++/-- use postfix=True."""

    op: str = ""
    operand: Expr = None
    postfix: bool = False


@dataclass
class Assign(Expr):
    """op is '=', '+=', '-=', '*=', '/=', '%='."""

    op: str = "="
    target: Expr = None
    value: Expr = None


@dataclass
class Ternary(Expr):
    cond: Expr = None
    true_expr: Expr = None
    false_expr: Expr = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)
    #: Resolved FunctionDecl, set by sema.
    decl: object = field(default=None, kw_only=True)


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Cast(Expr):
    target_type: CType = None
    expr: Expr = None


@dataclass
class SizeofExpr(Expr):
    operand: Expr = None


@dataclass
class SizeofType(Expr):
    queried_type: CType = None


@dataclass
class AddressOf(Expr):
    operand: Expr = None


@dataclass
class Deref(Expr):
    operand: Expr = None


# ----------------------------------------------------------------- #
# Statements
# ----------------------------------------------------------------- #

@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Node):
    name: str = ""
    type: CType = None
    init: Optional[Expr] = None
    is_global: bool = False


@dataclass
class DeclStmt(Stmt):
    decls: List[VarDecl] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None
    then_body: Stmt = None
    else_body: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class DoWhile(Stmt):
    body: Stmt = None
    cond: Expr = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None  # DeclStmt or ExprStmt
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None
    #: Set when '#pragma omp parallel for' precedes the loop.
    omp_parallel: bool = False
    #: Set for 'omp atomic' regions inside (tracked per assignment).


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Pragma(Stmt):
    """A pragma attached as a standalone statement (e.g. 'omp atomic')."""

    text: str = ""
    statement: Optional[Stmt] = None


# ----------------------------------------------------------------- #
# Declarations
# ----------------------------------------------------------------- #

@dataclass
class ParamDecl(Node):
    name: str = ""
    type: CType = None
    index: int = 0


@dataclass
class FunctionDecl(Node):
    name: str = ""
    return_type: CType = None
    params: List[ParamDecl] = field(default_factory=list)
    body: Optional[Block] = None
    is_static: bool = False


@dataclass
class TranslationUnit(Node):
    declarations: List[Node] = field(default_factory=list)  # funcs + globals

    def functions(self) -> List[FunctionDecl]:
        return [d for d in self.declarations if isinstance(d, FunctionDecl)]

    def globals(self) -> List[VarDecl]:
        return [d for d in self.declarations if isinstance(d, VarDecl)]
