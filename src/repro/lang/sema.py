"""Semantic analysis for the vpfloat C dialect.

Implements the paper's type-system rules:

- vpfloat attributes are well-formed: integer literals within the format's
  limits, or identifiers resolving to in-scope integer declarations
  (§III-A2).  A parameter's attributes may only reference *previously
  declared* parameters; a return type's attributes may reference any
  parameter (§III-A5, Listing 3's ``example_dyn_type_return``).
- Strict type equality: two vpfloat types are equal only with identical
  attributes; no subtyping, no implicit conversion *except plain variable
  assignment* (§III-A3).  Mixed vpfloat/primitive arithmetic is allowed
  (Listing 2 multiplies ``double`` by vpfloat) and later lowered to the
  specialized ``mpfr_*_d/si`` entry points.
- Call-site attribute checking: constant-vs-constant mismatches are
  compile-time errors (Listing 3 line 10); dynamic attributes produce
  runtime verification calls recorded on the Call node (lines 14/17).
- Dynamically-sized types follow VLA rules: locals and parameters only,
  never globals (§III-A5).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import ast
from .ctypes import (
    ArrayT,
    AttrConst,
    AttrRef,
    BOOL,
    CType,
    DOUBLE,
    FloatT,
    INT,
    IntT,
    PointerT,
    VoidT,
    VPFloatT,
    decay,
)
from .lexer import SourceError

#: Builtin functions visible without declaration: name -> (ret, [params]).
#: ``None`` in params means "any arithmetic"; varargs marked with "...".
_BUILTINS: Dict[str, tuple] = {
    "sqrt": (DOUBLE, [DOUBLE]),
    "fabs": (DOUBLE, [DOUBLE]),
    "exp": (DOUBLE, [DOUBLE]),
    "log": (DOUBLE, [DOUBLE]),
    "pow": (DOUBLE, [DOUBLE, DOUBLE]),
    "sin": (DOUBLE, [DOUBLE]),
    "cos": (DOUBLE, [DOUBLE]),
    "floor": (DOUBLE, [DOUBLE]),
    "ceil": (DOUBLE, [DOUBLE]),
    "fmax": (DOUBLE, [DOUBLE, DOUBLE]),
    "fmin": (DOUBLE, [DOUBLE, DOUBLE]),
    # vpfloat math builtins: polymorphic over the vpfloat argument type.
    "vp_sqrt": (None, [None]),
    "vp_fabs": (None, [None]),
    "vp_exp": (None, [None]),
    "vp_log": (None, [None]),
    "vp_sin": (None, [None]),
    "vp_cos": (None, [None]),
    "vp_pow": (None, [None, None]),
    # I/O helpers for examples.
    "print_double": (VoidT(), [DOUBLE]),
    "print_int": (VoidT(), [INT]),
    "print_vpfloat": (VoidT(), [None]),
    "malloc": (PointerT(IntT(8, True)), [IntT(64, True)]),
    "free": (VoidT(), [PointerT(IntT(8, True))]),
}


class SemanticError(SourceError):
    """A violation of the dialect's typing rules."""


class Scope:
    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, ast.Node] = {}

    def declare(self, name: str, decl: ast.Node, node: ast.Node) -> None:
        if name in self.symbols:
            raise SemanticError(f"redeclaration of {name!r}",
                                node.line, node.column)
        self.symbols[name] = decl

    def lookup(self, name: str) -> Optional[ast.Node]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class Sema:
    """Type checker / resolver; annotates the AST in place."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.global_scope = Scope()
        self.functions: Dict[str, ast.FunctionDecl] = {}
        self.current_function: Optional[ast.FunctionDecl] = None
        self.loop_depth = 0

    # ------------------------------------------------------------ #

    def run(self) -> ast.TranslationUnit:
        for decl in self.unit.declarations:
            if isinstance(decl, ast.FunctionDecl):
                self._register_function(decl)
            else:
                self._check_global(decl)
        for decl in self.unit.functions():
            if decl.body is not None:
                self._check_function(decl)
        return self.unit

    # ------------------------------------------------------------ #
    # Declarations
    # ------------------------------------------------------------ #

    def _register_function(self, func: ast.FunctionDecl) -> None:
        existing = self.functions.get(func.name)
        if existing is not None:
            if existing.body is not None and func.body is not None:
                raise SemanticError(f"redefinition of function {func.name!r}",
                                    func.line, func.column)
            if len(existing.params) != len(func.params):
                raise SemanticError(
                    f"conflicting declaration of {func.name!r}",
                    func.line, func.column,
                )
            if func.body is not None:
                self.functions[func.name] = func
                self.global_scope.symbols[func.name] = func
            return
        self.functions[func.name] = func
        self.global_scope.declare(func.name, func, func)
        self._check_signature(func)

    def _check_signature(self, func: ast.FunctionDecl) -> None:
        param_names = {}
        for param in func.params:
            self._check_type(param.type, scope_params=param_names,
                             node=param, context=f"parameter {param.name!r}")
            if param.name:
                param_names[param.name] = param
        # Return types may reference ANY parameter (checked after all
        # params are processed -- paper: "Our compiler checks and builds a
        # function's return type after all arguments are processed").
        self._check_type(func.return_type, scope_params=param_names,
                         node=func, context="return type")
        if isinstance(func.return_type, ArrayT):
            raise SemanticError("functions cannot return arrays",
                                func.line, func.column)

    def _check_type(self, ctype: CType, scope_params: Dict[str, ast.Node],
                    node: ast.Node, context: str,
                    local_scope: Optional[Scope] = None) -> None:
        """Validate vpfloat attribute references inside ``ctype``."""
        if isinstance(ctype, PointerT):
            self._check_type(ctype.pointee, scope_params, node, context,
                             local_scope)
            return
        if isinstance(ctype, ArrayT):
            self._check_type(ctype.element, scope_params, node, context,
                             local_scope)
            return
        if not isinstance(ctype, VPFloatT):
            return
        for attr in ctype.attributes():
            if isinstance(attr, AttrConst):
                self._check_const_attr(ctype, attr, node)
                continue
            decl = scope_params.get(attr.name)
            if decl is None and local_scope is not None:
                decl = local_scope.lookup(attr.name)
            if decl is None:
                decl = self.global_scope.lookup(attr.name)
            if decl is None or isinstance(decl, ast.FunctionDecl):
                raise SemanticError(
                    f"{context}: vpfloat attribute {attr.name!r} does not "
                    f"name an in-scope integer declaration",
                    node.line, node.column,
                )
            decl_type = decl.type
            if not decl_type.is_integer:
                raise SemanticError(
                    f"{context}: vpfloat attribute {attr.name!r} must have "
                    f"integer type, found {decl_type}",
                    node.line, node.column,
                )

    def _check_const_attr(self, ctype: VPFloatT, attr: AttrConst,
                          node: ast.Node) -> None:
        """Range-check constant attributes at compile time."""
        from ..unum import ESS_MAX, ESS_MIN, FSS_MAX, FSS_MIN, SIZE_MAX, SIZE_MIN

        if ctype.format == "posit":
            if attr is ctype.exp and not 0 <= attr.value <= 4:
                raise SemanticError(
                    f"posit es must be in 0..4, got {attr.value}",
                    node.line, node.column)
            if attr is ctype.prec and not 3 <= attr.value <= 64:
                raise SemanticError(
                    f"posit nbits must be in 3..64, got {attr.value}",
                    node.line, node.column)
            return
        if ctype.format == "unum":
            if attr is ctype.exp and not ESS_MIN <= attr.value <= ESS_MAX:
                raise SemanticError(
                    f"unum ess must be in {ESS_MIN}..{ESS_MAX}, "
                    f"got {attr.value}", node.line, node.column)
            if attr is ctype.prec and not FSS_MIN <= attr.value <= FSS_MAX:
                raise SemanticError(
                    f"unum fss must be in {FSS_MIN}..{FSS_MAX}, "
                    f"got {attr.value}", node.line, node.column)
            if attr is ctype.size and not SIZE_MIN <= attr.value <= SIZE_MAX:
                raise SemanticError(
                    f"unum size must be in {SIZE_MIN}..{SIZE_MAX} bytes, "
                    f"got {attr.value}", node.line, node.column)
        else:
            from ..ir.types import MPFR_MAX_EXP_BITS, MPFR_MAX_PREC, MPFR_MIN_PREC

            if attr is ctype.exp and not 1 <= attr.value <= MPFR_MAX_EXP_BITS:
                raise SemanticError(
                    f"mpfr exponent width must be in 1..{MPFR_MAX_EXP_BITS}, "
                    f"got {attr.value}", node.line, node.column)
            if attr is ctype.prec and not \
                    MPFR_MIN_PREC <= attr.value <= MPFR_MAX_PREC:
                raise SemanticError(
                    f"mpfr precision must be in {MPFR_MIN_PREC}.."
                    f"{MPFR_MAX_PREC}, got {attr.value}",
                    node.line, node.column)

    def _check_global(self, decl: ast.VarDecl) -> None:
        if _contains_dynamic_vpfloat(decl.type):
            raise SemanticError(
                f"global {decl.name!r}: dynamically-sized vpfloat types may "
                f"only be declared as local variables and function "
                f"parameters (VLA rule)", decl.line, decl.column,
            )
        if isinstance(decl.type, ArrayT) and decl.type.is_vla:
            raise SemanticError(
                f"global {decl.name!r} cannot be a variable length array",
                decl.line, decl.column,
            )
        self._check_type(decl.type, {}, decl, f"global {decl.name!r}")
        self.global_scope.declare(decl.name, decl, decl)
        if decl.init is not None:
            self._check_expr(decl.init, Scope(self.global_scope))
            self._check_initializer(decl, decl.init)

    # ------------------------------------------------------------ #
    # Function bodies
    # ------------------------------------------------------------ #

    def _check_function(self, func: ast.FunctionDecl) -> None:
        self.current_function = func
        scope = Scope(self.global_scope)
        for param in func.params:
            if not param.name:
                raise SemanticError("parameter of a definition must be named",
                                    func.line, func.column)
            scope.declare(param.name, param, param)
        self._check_block(func.body, scope)
        self.current_function = None

    def _check_block(self, block: ast.Block, parent: Scope) -> None:
        scope = Scope(parent)
        for stmt in block.statements:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._check_local_decl(decl, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_condition(stmt.cond, scope)
            self._check_stmt(stmt.then_body, scope)
            if stmt.else_body is not None:
                self._check_stmt(stmt.else_body, scope)
        elif isinstance(stmt, ast.While):
            self._check_condition(stmt.cond, scope)
            self._in_loop(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._in_loop(stmt.body, scope)
            self._check_condition(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_condition(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._in_loop(stmt.body, inner)
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt, scope)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                kind = "break" if isinstance(stmt, ast.Break) else "continue"
                raise SemanticError(f"{kind!r} outside of a loop",
                                    stmt.line, stmt.column)
        elif isinstance(stmt, ast.Pragma):
            if stmt.statement is not None:
                self._check_stmt(stmt.statement, scope)
        else:
            raise SemanticError(f"unhandled statement {type(stmt).__name__}",
                                stmt.line, stmt.column)

    def _in_loop(self, body: ast.Stmt, scope: Scope) -> None:
        self.loop_depth += 1
        try:
            self._check_stmt(body, scope)
        finally:
            self.loop_depth -= 1

    def _check_local_decl(self, decl: ast.VarDecl, scope: Scope) -> None:
        params = {p.name: p for p in self.current_function.params}
        self._check_type(decl.type, params, decl,
                         f"declaration of {decl.name!r}", local_scope=scope)
        if isinstance(decl.type, ArrayT) and decl.type.is_vla:
            extent = decl.type.vla_extent
            self._check_expr(extent, scope)
            if not decay(extent.ctype).is_integer:
                raise SemanticError(
                    f"VLA extent of {decl.name!r} must be an integer",
                    decl.line, decl.column,
                )
        scope.declare(decl.name, decl, decl)
        if decl.init is not None:
            self._check_expr(decl.init, scope)
            self._check_initializer(decl, decl.init)

    def _check_initializer(self, decl: ast.VarDecl, init: ast.Expr) -> None:
        target = decay(decl.type)
        source = decay(init.ctype)
        if not _assignable(target, source):
            raise SemanticError(
                f"cannot initialize {decl.name!r} of type {decl.type} "
                f"from {init.ctype}", decl.line, decl.column,
            )

    def _check_return(self, stmt: ast.Return, scope: Scope) -> None:
        expected = self.current_function.return_type
        if stmt.value is None:
            if not isinstance(expected, VoidT):
                raise SemanticError(
                    f"non-void function {self.current_function.name!r} must "
                    f"return a value", stmt.line, stmt.column,
                )
            return
        if isinstance(expected, VoidT):
            raise SemanticError(
                f"void function {self.current_function.name!r} cannot "
                f"return a value", stmt.line, stmt.column,
            )
        self._check_expr(stmt.value, scope)
        if not _assignable(decay(expected), decay(stmt.value.ctype)):
            raise SemanticError(
                f"return type mismatch: expected {expected}, "
                f"got {stmt.value.ctype}", stmt.line, stmt.column,
            )

    def _check_condition(self, cond: ast.Expr, scope: Scope) -> None:
        self._check_expr(cond, scope)
        ctype = decay(cond.ctype)
        if not (ctype.is_arithmetic or isinstance(ctype, PointerT)):
            raise SemanticError(f"condition has non-scalar type {cond.ctype}",
                                cond.line, cond.column)

    # ------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------ #

    def _check_expr(self, expr: ast.Expr, scope: Scope) -> CType:
        method = getattr(self, f"_expr_{type(expr).__name__}", None)
        if method is None:
            raise SemanticError(f"unhandled expression {type(expr).__name__}",
                                expr.line, expr.column)
        expr.ctype = method(expr, scope)
        return expr.ctype

    def _expr_IntLit(self, expr: ast.IntLit, scope: Scope) -> CType:
        bits = 64 if expr.long else 32
        return IntT(bits, not expr.unsigned)

    def _expr_FloatLit(self, expr: ast.FloatLit, scope: Scope) -> CType:
        if expr.suffix == "f":
            return FloatT(32)
        if expr.suffix in ("v", "y"):
            # Suffixed vpfloat literals take their type from context; sema
            # types them as the widest double and irgen re-types them when
            # the assignment target is known.  Standalone use is double.
            return FloatT(64)
        return FloatT(64)

    def _expr_StringLit(self, expr: ast.StringLit, scope: Scope) -> CType:
        return PointerT(IntT(8, True))

    def _expr_Ident(self, expr: ast.Ident, scope: Scope) -> CType:
        decl = scope.lookup(expr.name)
        if decl is None:
            raise SemanticError(f"use of undeclared identifier {expr.name!r}",
                                expr.line, expr.column)
        if isinstance(decl, ast.FunctionDecl):
            raise SemanticError(
                f"function {expr.name!r} used as a value", expr.line,
                expr.column,
            )
        expr.decl = decl
        return decl.type

    def _expr_Binary(self, expr: ast.Binary, scope: Scope) -> CType:
        lhs = decay(self._check_expr(expr.lhs, scope))
        rhs = decay(self._check_expr(expr.rhs, scope))
        op = expr.op
        if op == ",":
            return rhs
        if op in ("&&", "||"):
            return BOOL
        if op in ("==", "!=", "<", "<=", ">", ">="):
            self._require_comparable(expr, lhs, rhs)
            return BOOL
        if op in ("%", "<<", ">>", "&", "|", "^"):
            if not (lhs.is_integer and rhs.is_integer):
                raise SemanticError(
                    f"operator {op!r} requires integer operands, "
                    f"got {lhs} and {rhs}", expr.line, expr.column,
                )
            return _int_promote(lhs, rhs)
        # + - * / : arithmetic or pointer arithmetic.
        if isinstance(lhs, PointerT) and rhs.is_integer and op in ("+", "-"):
            return lhs
        if lhs.is_integer and isinstance(rhs, PointerT) and op == "+":
            return rhs
        if isinstance(lhs, PointerT) and isinstance(rhs, PointerT) and op == "-":
            return IntT(64, True)
        return self._arithmetic_result(expr, lhs, rhs)

    def _require_comparable(self, expr, lhs: CType, rhs: CType) -> None:
        if isinstance(lhs, PointerT) or isinstance(rhs, PointerT):
            return
        self._arithmetic_result(expr, lhs, rhs)

    def _arithmetic_result(self, expr, lhs: CType, rhs: CType) -> CType:
        """Usual arithmetic conversions, extended for vpfloat.

        vpfloat (x) primitive is allowed -> vpfloat (lowered to the
        specialized MPFR entry points); vpfloat (x) vpfloat requires the
        exact same type, otherwise the user must cast (paper §III-A3).
        """
        if isinstance(lhs, VPFloatT) and isinstance(rhs, VPFloatT):
            if lhs != rhs:
                raise SemanticError(
                    f"operands have different vpfloat types {lhs} and {rhs}; "
                    f"insert an explicit cast (no implicit conversions, "
                    f"paper §III-A3)", expr.line, expr.column,
                )
            return lhs
        if isinstance(lhs, VPFloatT):
            if not rhs.is_arithmetic:
                raise SemanticError(f"invalid operand type {rhs}",
                                    expr.line, expr.column)
            return lhs
        if isinstance(rhs, VPFloatT):
            if not lhs.is_arithmetic:
                raise SemanticError(f"invalid operand type {lhs}",
                                    expr.line, expr.column)
            return rhs
        if not (lhs.is_arithmetic and rhs.is_arithmetic):
            raise SemanticError(
                f"invalid operands {lhs} and {rhs}", expr.line, expr.column
            )
        if isinstance(lhs, FloatT) or isinstance(rhs, FloatT):
            bits = max(
                lhs.bits if isinstance(lhs, FloatT) else 0,
                rhs.bits if isinstance(rhs, FloatT) else 0,
            )
            return FloatT(bits)
        return _int_promote(lhs, rhs)

    def _expr_Unary(self, expr: ast.Unary, scope: Scope) -> CType:
        operand = decay(self._check_expr(expr.operand, scope))
        if expr.op in ("++", "--"):
            self._require_lvalue(expr.operand)
            if not (operand.is_integer or isinstance(operand, PointerT)):
                raise SemanticError(
                    f"{expr.op} requires an integer or pointer operand",
                    expr.line, expr.column,
                )
            return operand
        if expr.op == "!":
            return BOOL
        if expr.op == "~":
            if not operand.is_integer:
                raise SemanticError("~ requires an integer operand",
                                    expr.line, expr.column)
            return operand
        if not operand.is_arithmetic:
            raise SemanticError(f"unary {expr.op} on non-arithmetic type",
                                expr.line, expr.column)
        return operand

    def _expr_Assign(self, expr: ast.Assign, scope: Scope) -> CType:
        target = self._check_expr(expr.target, scope)
        self._require_lvalue(expr.target)
        value = decay(self._check_expr(expr.value, scope))
        target_d = decay(target)
        if expr.op == "=":
            if not _assignable(target_d, value):
                raise SemanticError(
                    f"cannot assign {value} to {target}",
                    expr.line, expr.column,
                )
        else:
            # Compound assignment: 'a op= b' types like 'a = a op b'.
            fake = ast.Binary(op=expr.op[:-1], lhs=expr.target,
                              rhs=expr.value, line=expr.line,
                              column=expr.column)
            self._expr_Binary(fake, scope)
        return target

    def _require_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.Ident, ast.Index, ast.Deref)):
            return
        raise SemanticError("expression is not assignable",
                            expr.line, expr.column)

    def _expr_Ternary(self, expr: ast.Ternary, scope: Scope) -> CType:
        self._check_condition(expr.cond, scope)
        t = decay(self._check_expr(expr.true_expr, scope))
        f = decay(self._check_expr(expr.false_expr, scope))
        if t == f:
            return t
        if t.is_arithmetic and f.is_arithmetic:
            return self._arithmetic_result(expr, t, f)
        raise SemanticError(f"incompatible ternary arms {t} and {f}",
                            expr.line, expr.column)

    def _expr_Call(self, expr: ast.Call, scope: Scope) -> CType:
        func = self.functions.get(expr.name)
        if func is None:
            return self._check_builtin_call(expr, scope)
        expr.decl = func
        if len(expr.args) != len(func.params):
            raise SemanticError(
                f"call to {expr.name!r}: expected {len(func.params)} "
                f"arguments, got {len(expr.args)}", expr.line, expr.column,
            )
        #: Bind attribute-parameter names to the actual argument exprs so
        #: dependent types can be compared (paper §III-A5).
        bindings: Dict[str, ast.Expr] = {}
        runtime_checks: List[tuple] = []
        for param, arg in zip(func.params, expr.args):
            self._check_expr(arg, scope)
            if param.name:
                bindings[param.name] = arg
        for param, arg in zip(func.params, expr.args):
            self._check_call_arg(expr, param, arg, bindings, runtime_checks)
        expr.runtime_attr_checks = runtime_checks
        return _substitute_return_type(func.return_type, bindings)

    def _check_call_arg(self, call: ast.Call, param: ast.ParamDecl,
                        arg: ast.Expr, bindings: Dict[str, ast.Expr],
                        runtime_checks: List[tuple]) -> None:
        expected = decay(param.type)
        actual = decay(arg.ctype)
        exp_vp, act_vp = _vpfloat_core(expected), _vpfloat_core(actual)
        if exp_vp is not None and act_vp is not None:
            if exp_vp.format != act_vp.format:
                raise SemanticError(
                    f"call to {call.name!r}: parameter {param.name!r} "
                    f"expects format {exp_vp.format}, got {act_vp.format}",
                    call.line, call.column,
                )
            pairs = list(zip(exp_vp.attributes(), act_vp.attributes()))
            if len(exp_vp.attributes()) != len(act_vp.attributes()):
                raise SemanticError(
                    f"call to {call.name!r}: attribute count mismatch for "
                    f"parameter {param.name!r}", call.line, call.column,
                )
            for expected_attr, actual_attr in pairs:
                self._check_attr_binding(call, param, expected_attr,
                                         actual_attr, bindings,
                                         runtime_checks,
                                         is_pointer=expected is not exp_vp
                                         or actual is not act_vp)
            return
        if (exp_vp is None) != (act_vp is None):
            # Scalar vpfloat params accept primitives via plain-assignment
            # conversion; pointers never convert.
            if isinstance(expected, PointerT) or isinstance(actual, PointerT):
                raise SemanticError(
                    f"call to {call.name!r}: cannot pass {arg.ctype} for "
                    f"parameter of type {param.type}", call.line, call.column,
                )
            if not _assignable(expected, actual):
                raise SemanticError(
                    f"call to {call.name!r}: cannot convert {arg.ctype} to "
                    f"{param.type}", call.line, call.column,
                )
            return
        if not _assignable(expected, actual) and not (
            isinstance(expected, PointerT) and isinstance(actual, PointerT)
            and expected == actual
        ):
            if expected != actual:
                raise SemanticError(
                    f"call to {call.name!r}: cannot convert {arg.ctype} to "
                    f"{param.type} for parameter {param.name!r}",
                    call.line, call.column,
                )

    def _check_attr_binding(self, call, param, expected_attr, actual_attr,
                            bindings, runtime_checks, is_pointer) -> None:
        """Compare one attribute of a callee type with the caller's type."""
        if isinstance(expected_attr, AttrConst):
            if isinstance(actual_attr, AttrConst):
                if expected_attr.value != actual_attr.value:
                    raise SemanticError(
                        f"call to {call.name!r}: parameter {param.name!r} "
                        f"requires attribute {expected_attr.value}, the "
                        f"argument has {actual_attr.value} "
                        f"(compile-time mismatch, paper Listing 3)",
                        call.line, call.column,
                    )
                return
            # Dynamic argument attribute vs constant parameter: runtime check.
            runtime_checks.append((actual_attr.name, expected_attr.value))
            return
        # Parameter attribute is dynamic: it binds to a caller expression.
        bound = bindings.get(expected_attr.name)
        if bound is None:
            # Bound to a non-argument (global): compare names directly.
            if isinstance(actual_attr, AttrRef) and \
                    actual_attr.name == expected_attr.name:
                return
            runtime_checks.append(
                (expected_attr.name,
                 actual_attr.value if isinstance(actual_attr, AttrConst)
                 else actual_attr.name)
            )
            return
        if isinstance(actual_attr, AttrConst):
            if isinstance(bound, ast.IntLit):
                if bound.value != actual_attr.value:
                    raise SemanticError(
                        f"call to {call.name!r}: attribute bound to "
                        f"{expected_attr.name!r} is {bound.value} but the "
                        f"argument type carries {actual_attr.value} "
                        f"(compile-time mismatch, paper Listing 3 line 10)",
                        call.line, call.column,
                    )
                return
            runtime_checks.append((expected_attr.name, actual_attr.value))
            return
        # Both dynamic: runtime equality check between the bound argument
        # expression and the attribute variable's current value (paper
        # Listing 3 lines 14 and 17).
        runtime_checks.append((expected_attr.name, actual_attr.name))

    def _check_builtin_call(self, expr: ast.Call, scope: Scope) -> CType:
        signature = _BUILTINS.get(expr.name)
        if signature is None:
            raise SemanticError(f"call to undeclared function {expr.name!r}",
                                expr.line, expr.column)
        ret, params = signature
        if len(expr.args) != len(params):
            raise SemanticError(
                f"builtin {expr.name!r} expects {len(params)} arguments",
                expr.line, expr.column,
            )
        arg_types = [decay(self._check_expr(a, scope)) for a in expr.args]
        for declared, actual in zip(params, arg_types):
            if declared is None:
                if not actual.is_arithmetic:
                    raise SemanticError(
                        f"builtin {expr.name!r}: argument must be arithmetic",
                        expr.line, expr.column,
                    )
            elif not _assignable(declared, actual):
                raise SemanticError(
                    f"builtin {expr.name!r}: cannot convert {actual} "
                    f"to {declared}", expr.line, expr.column,
                )
        if ret is None:
            # Polymorphic: result type follows the (first) vpfloat argument.
            for t in arg_types:
                if isinstance(t, VPFloatT):
                    return t
            return arg_types[0]
        return ret

    def _expr_Index(self, expr: ast.Index, scope: Scope) -> CType:
        base = decay(self._check_expr(expr.base, scope))
        index = decay(self._check_expr(expr.index, scope))
        if not isinstance(base, PointerT):
            raise SemanticError(f"subscripted value has type {expr.base.ctype}, "
                                f"not an array or pointer",
                                expr.line, expr.column)
        if not index.is_integer:
            raise SemanticError("array subscript must be an integer",
                                expr.line, expr.column)
        return base.pointee

    def _expr_Cast(self, expr: ast.Cast, scope: Scope) -> CType:
        self._check_expr(expr.expr, scope)
        params = {p.name: p for p in self.current_function.params} \
            if self.current_function else {}
        self._check_type(expr.target_type, params, expr, "cast",
                         local_scope=scope)
        source = decay(expr.expr.ctype)
        target = expr.target_type
        if isinstance(target, PointerT) and not (
            isinstance(source, PointerT) or source.is_integer
        ):
            raise SemanticError(f"cannot cast {source} to pointer",
                                expr.line, expr.column)
        return target

    def _expr_SizeofExpr(self, expr: ast.SizeofExpr, scope: Scope) -> CType:
        self._check_expr(expr.operand, scope)
        return IntT(64, False)

    def _expr_SizeofType(self, expr: ast.SizeofType, scope: Scope) -> CType:
        params = {p.name: p for p in self.current_function.params} \
            if self.current_function else {}
        self._check_type(expr.queried_type, params, expr, "sizeof",
                         local_scope=scope)
        return IntT(64, False)

    def _expr_AddressOf(self, expr: ast.AddressOf, scope: Scope) -> CType:
        self._check_expr(expr.operand, scope)
        self._require_lvalue(expr.operand)
        return PointerT(expr.operand.ctype)

    def _expr_Deref(self, expr: ast.Deref, scope: Scope) -> CType:
        operand = decay(self._check_expr(expr.operand, scope))
        if not isinstance(operand, PointerT):
            raise SemanticError(f"cannot dereference {expr.operand.ctype}",
                                expr.line, expr.column)
        return operand.pointee


# ----------------------------------------------------------------- #
# Helpers
# ----------------------------------------------------------------- #

def _int_promote(a: IntT, b: IntT) -> IntT:
    bits = max(a.bits, b.bits, 32)
    signed = a.signed and b.signed
    return IntT(bits, signed)


def _assignable(target: CType, source: CType) -> bool:
    """Plain-assignment compatibility (the only implicit conversion)."""
    if target == source:
        return True
    if target.is_arithmetic and source.is_arithmetic:
        return True  # includes vpfloat <-> vpfloat and vpfloat <-> IEEE
    if isinstance(target, PointerT) and isinstance(source, PointerT):
        return target == source or isinstance(source.pointee, IntT) \
            or isinstance(target.pointee, IntT)
    return False


def _vpfloat_core(ctype: CType) -> Optional[VPFloatT]:
    """The vpfloat type inside a scalar/pointer/array type, if any."""
    current = ctype
    while isinstance(current, (PointerT, ArrayT)):
        current = current.pointee if isinstance(current, PointerT) \
            else current.element
    return current if isinstance(current, VPFloatT) else None


def _contains_dynamic_vpfloat(ctype: CType) -> bool:
    core = _vpfloat_core(ctype)
    return core is not None and not core.is_static


def _substitute_return_type(ret: CType, bindings: Dict[str, ast.Expr]) -> CType:
    """Resolve a dependent return type against the call's arguments.

    ``vpfloat<mpfr, 16, prec>`` returned from a function whose ``prec``
    argument was passed a literal or a variable becomes the corresponding
    caller-side type.
    """
    if isinstance(ret, VPFloatT) and not ret.is_static:
        def subst(attr):
            if isinstance(attr, AttrRef):
                bound = bindings.get(attr.name)
                if isinstance(bound, ast.IntLit):
                    return AttrConst(bound.value)
                if isinstance(bound, ast.Ident):
                    return AttrRef(bound.name)
            return attr

        return VPFloatT(ret.format, subst(ret.exp), subst(ret.prec),
                        subst(ret.size) if ret.size else None)
    return ret


def analyze(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Run semantic analysis; returns the annotated unit."""
    return Sema(unit).run()
