"""Lexer for the C dialect with the ``vpfloat`` extension.

Tokenizes the C subset the paper's examples use (Listings 2-4): scalar
types, pointers, arrays, control flow, function definitions, plus:

- the ``vpfloat`` keyword and format names (``mpfr``, ``unum``, ...);
- FP literal suffixes ``v`` (unum literal) and ``y`` (mpfr literal),
  paper §III-A4;
- ``#pragma omp ...`` lines surfaced as PRAGMA tokens for OpenMP support.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class SourceError(Exception):
    """A compile-time diagnostic with source position."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.message = message
        self.line = line
        self.column = column


class TokenKind(enum.Enum):
    IDENT = "identifier"
    KEYWORD = "keyword"
    INT_LIT = "integer literal"
    FLOAT_LIT = "floating literal"
    STRING_LIT = "string literal"
    PUNCT = "punctuation"
    PRAGMA = "pragma"
    EOF = "end of file"


KEYWORDS = frozenset({
    "void", "int", "unsigned", "long", "char", "float", "double",
    "vpfloat", "for", "while", "do", "if", "else", "return", "break",
    "continue", "sizeof", "const", "static", "extern", "struct",
})

#: Format names recognized inside vpfloat<...>; parsed as identifiers but
#: listed here for diagnostics.
VPFLOAT_FORMATS = ("mpfr", "unum", "posit", "bfloat16")

# Longest-match punctuation table.
_PUNCTUATION = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=", "^=", "->", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


@dataclass
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int
    #: For numeric literals: the suffix letter ('f', 'v', 'y', 'u', 'l', '').
    suffix: str = ""

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}@{self.line}:{self.column})"


class Lexer:
    """Single-pass tokenizer with // and /* */ comment support."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> SourceError:
        return SourceError(message, self.line, self.column)

    # ------------------------------------------------------------ #

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, n: int = 1) -> str:
        text = self.source[self.pos:self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += n
        return text

    def _skip_trivia(self) -> Optional[Token]:
        """Skip whitespace/comments; returns a PRAGMA token when one is seen."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in (" ", "\t", "\r", "\n"):
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise SourceError("unterminated block comment",
                                          start_line, start_col)
                    self._advance()
                self._advance(2)
            elif ch == "#":
                line, col = self.line, self.column
                text = []
                while self.pos < len(self.source) and self._peek() != "\n":
                    text.append(self._advance())
                directive = "".join(text).strip()
                if directive.startswith("#pragma"):
                    return Token(TokenKind.PRAGMA,
                                 directive[len("#pragma"):].strip(), line, col)
                # Other directives (e.g. #include) are ignored: the dialect
                # has no preprocessor; headers are resolved by the driver.
            else:
                return None
        return None

    # ------------------------------------------------------------ #

    def tokens(self) -> List[Token]:
        result: List[Token] = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind is TokenKind.EOF:
                return result

    def next_token(self) -> Token:
        pragma = self._skip_trivia()
        if pragma is not None:
            return pragma
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", self.line, self.column)

        line, column = self.line, self.column
        ch = self._peek()

        if ch.isalpha() or ch == "_":
            return self._lex_identifier(line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        for punct in _PUNCTUATION:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line, column)
        raise self.error(f"unexpected character {ch!r}")

    def _lex_identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        is_float = False
        # NB: membership tests against string literals must exclude the
        # empty string _peek() returns at EOF ('"" in "xX"' is True).
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() in set("0123456789abcdefABCDEF"):
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == "." and self._peek(1) != ".":
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() in ("e", "E") and (
                self._peek(1).isdigit()
                or (self._peek(1) in ("+", "-") and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() in ("+", "-"):
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        text = self.source[start:self.pos]
        suffix = ""
        if self._peek() and self._peek().lower() in ("f", "v", "y", "u", "l"):
            suffix = self._advance().lower()
            if suffix in ("f", "v", "y"):
                is_float = True
        kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
        return Token(kind, text, line, column, suffix)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise SourceError("unterminated string literal", line, column)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                escape = self._advance()
                chars.append({"n": "\n", "t": "\t", "0": "\0",
                              "\\": "\\", '"': '"'}.get(escape, escape))
            else:
                chars.append(ch)
        return Token(TokenKind.STRING_LIT, "".join(chars), line, column)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: full token stream including the EOF token."""
    return Lexer(source).tokens()
