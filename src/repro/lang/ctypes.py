"""Semantic (C-level) types for the vpfloat dialect.

These are the frontend's types; :mod:`repro.codegen.irgen` maps them onto
IR types.  ``VPFloatT`` attributes are :class:`Attr` values -- either
integer constants or references to in-scope integer declarations, matching
the paper's grammar (§III-A1: *exp-info / prec-info / size-info* are
integer literals or identifiers).

Type equality follows §III-A3: vpfloat types are equal only when they hold
the exact same attributes; there is no subtyping and no implicit
conversion except plain variable assignment (enforced by sema).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


class CType:
    """Base class for frontend types."""

    @property
    def is_vpfloat(self) -> bool:
        return isinstance(self, VPFloatT)

    @property
    def is_arithmetic(self) -> bool:
        return isinstance(self, (IntT, FloatT, VPFloatT))

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntT)

    @property
    def is_pointerish(self) -> bool:
        return isinstance(self, (PointerT, ArrayT))


@dataclass(frozen=True)
class VoidT(CType):
    def __str__(self):
        return "void"


@dataclass(frozen=True)
class IntT(CType):
    bits: int = 32
    signed: bool = True

    def __str__(self):
        base = {8: "char", 32: "int", 64: "long"}.get(self.bits, f"i{self.bits}")
        return base if self.signed else f"unsigned {base}"


@dataclass(frozen=True)
class FloatT(CType):
    bits: int = 64

    def __str__(self):
        return "float" if self.bits == 32 else "double"


@dataclass(frozen=True)
class AttrConst:
    """A compile-time constant attribute."""

    value: int

    def __str__(self):
        return str(self.value)


@dataclass(frozen=True)
class AttrRef:
    """An attribute naming an in-scope integer declaration."""

    name: str

    def __str__(self):
        return self.name


Attr = Union[AttrConst, AttrRef]


class VPFloatT(CType):
    """``vpfloat<format, exp-info, prec-info[, size-info]>``."""

    def __init__(self, format: str, exp: Attr, prec: Attr,
                 size: Optional[Attr] = None):
        self.format = format
        self.exp = exp
        self.prec = prec
        self.size = size

    @property
    def is_static(self) -> bool:
        attrs = [self.exp, self.prec] + ([self.size] if self.size else [])
        return all(isinstance(a, AttrConst) for a in attrs)

    def attributes(self):
        attrs = [self.exp, self.prec]
        if self.size is not None:
            attrs.append(self.size)
        return attrs

    def __str__(self):
        parts = [self.format, str(self.exp), str(self.prec)]
        if self.size is not None:
            parts.append(str(self.size))
        return f"vpfloat<{', '.join(parts)}>"

    def __eq__(self, other):
        if not isinstance(other, VPFloatT) or other.format != self.format:
            return False
        return (self.exp == other.exp and self.prec == other.prec
                and self.size == other.size)

    def __hash__(self):
        return hash(("vpfloat", self.format, self.exp, self.prec, self.size))


@dataclass(frozen=True)
class PointerT(CType):
    pointee: CType = None

    def __str__(self):
        return f"{self.pointee}*"


class ArrayT(CType):
    """Array type; ``size`` is an int for constant arrays, None for VLAs
    (the VLA extent expression lives on the declaration)."""

    def __init__(self, element: CType, size: Optional[int],
                 vla_extent=None):
        self.element = element
        self.size = size
        self.vla_extent = vla_extent  # Expr for VLAs

    @property
    def is_vla(self) -> bool:
        return self.size is None

    def __str__(self):
        extent = "" if self.size is None else str(self.size)
        return f"{self.element}[{extent}]"

    def __eq__(self, other):
        return (isinstance(other, ArrayT) and other.element == self.element
                and other.size == self.size)

    def __hash__(self):
        return hash(("array", self.element, self.size))


# Common singletons.
VOID = VoidT()
INT = IntT(32, True)
UNSIGNED = IntT(32, False)
LONG = IntT(64, True)
CHAR = IntT(8, True)
BOOL = IntT(1, True)
FLOAT = FloatT(32)
DOUBLE = FloatT(64)


def decay(type: CType) -> CType:
    """Array-to-pointer decay for expression contexts."""
    if isinstance(type, ArrayT):
        return PointerT(type.element)
    return type
