"""Frontend for the C dialect with the ``vpfloat`` type extension.

Pipeline: :func:`~repro.lang.lexer.tokenize` ->
:func:`~repro.lang.parser.parse` -> :func:`~repro.lang.sema.analyze`.
"""

from . import ast
from .ctypes import (
    ArrayT,
    AttrConst,
    AttrRef,
    BOOL,
    CHAR,
    CType,
    DOUBLE,
    FLOAT,
    FloatT,
    INT,
    IntT,
    LONG,
    PointerT,
    UNSIGNED,
    VOID,
    VoidT,
    VPFloatT,
    decay,
)
from .lexer import Lexer, SourceError, Token, TokenKind, tokenize
from .parser import Parser, parse
from .sema import Sema, SemanticError, analyze

__all__ = [
    "ast", "tokenize", "parse", "analyze",
    "Lexer", "Parser", "Sema",
    "Token", "TokenKind", "SourceError", "SemanticError",
    "CType", "VoidT", "IntT", "FloatT", "VPFloatT", "PointerT", "ArrayT",
    "AttrConst", "AttrRef", "decay",
    "VOID", "INT", "UNSIGNED", "LONG", "CHAR", "BOOL", "FLOAT", "DOUBLE",
]
