"""Recursive-descent parser for the vpfloat C dialect."""

from __future__ import annotations

from typing import List, Optional

from . import ast
from .ctypes import (
    ArrayT,
    AttrConst,
    AttrRef,
    CHAR,
    CType,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    PointerT,
    UNSIGNED,
    VOID,
    VPFloatT,
)
from .lexer import SourceError, Token, TokenKind, VPFLOAT_FORMATS, tokenize

#: Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_TYPE_START_KEYWORDS = frozenset({
    "void", "char", "int", "unsigned", "long", "float", "double",
    "vpfloat", "const", "static", "extern",
})


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------ #

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> SourceError:
        token = token or self.current
        return SourceError(message, token.line, token.column)

    def expect_punct(self, text: str) -> Token:
        if not self.current.is_punct(text):
            raise self.error(f"expected {text!r}, found {self.current.text!r}")
        return self.advance()

    def accept_punct(self, text: str) -> bool:
        if self.current.is_punct(text):
            self.advance()
            return True
        return False

    def expect_ident(self) -> Token:
        if self.current.kind is not TokenKind.IDENT:
            raise self.error(
                f"expected identifier, found {self.current.text!r}"
            )
        return self.advance()

    def at_type_start(self, offset: int = 0) -> bool:
        token = self.peek(offset)
        return (token.kind is TokenKind.KEYWORD
                and token.text in _TYPE_START_KEYWORDS)

    # ------------------------------------------------------------ #
    # Types
    # ------------------------------------------------------------ #

    def parse_type_specifier(self) -> CType:
        is_static = False
        while self.current.kind is TokenKind.KEYWORD and self.current.text in (
            "const", "static", "extern"
        ):
            self.advance()

        token = self.current
        if token.is_keyword("void"):
            self.advance()
            return VOID
        if token.is_keyword("char"):
            self.advance()
            return CHAR
        if token.is_keyword("float"):
            self.advance()
            return FLOAT
        if token.is_keyword("double"):
            self.advance()
            return DOUBLE
        if token.is_keyword("vpfloat"):
            return self.parse_vpfloat_type()
        if token.kind is TokenKind.KEYWORD and token.text in (
            "int", "unsigned", "long"
        ):
            signed = True
            bits = 32
            while self.current.kind is TokenKind.KEYWORD and \
                    self.current.text in ("int", "unsigned", "long"):
                word = self.advance().text
                if word == "unsigned":
                    signed = False
                elif word == "long":
                    bits = 64
            from .ctypes import IntT

            return IntT(bits, signed)
        raise self.error(f"expected a type, found {token.text!r}")

    def parse_vpfloat_type(self) -> VPFloatT:
        start = self.advance()  # 'vpfloat'
        self.expect_punct("<")
        fmt_token = self.expect_ident()
        fmt = fmt_token.text
        if fmt not in VPFLOAT_FORMATS:
            raise self.error(
                f"unknown vpfloat format {fmt!r} "
                f"(supported: {', '.join(VPFLOAT_FORMATS)})", fmt_token
            )
        if fmt not in ("mpfr", "unum", "posit"):
            raise self.error(
                f"vpfloat format {fmt!r} is declared in the grammar but has "
                f"no backend in this toolchain", fmt_token
            )
        attrs = []
        while self.accept_punct(","):
            attrs.append(self.parse_attr())
        self.expect_punct(">")
        if fmt == "mpfr" and len(attrs) != 2:
            raise self.error(
                f"vpfloat<mpfr, ...> takes exponent and precision attributes, "
                f"got {len(attrs)}", start
            )
        if fmt == "posit" and len(attrs) != 2:
            raise self.error(
                f"vpfloat<posit, ...> takes es and nbits attributes, "
                f"got {len(attrs)}", start
            )
        if fmt == "unum" and len(attrs) not in (2, 3):
            raise self.error(
                f"vpfloat<unum, ...> takes ess, fss and optional size, "
                f"got {len(attrs)}", start
            )
        size = attrs[2] if len(attrs) == 3 else None
        return VPFloatT(fmt, attrs[0], attrs[1], size)

    def parse_attr(self):
        token = self.current
        if token.kind is TokenKind.INT_LIT:
            self.advance()
            return AttrConst(int(token.text, 0))
        if token.kind is TokenKind.IDENT:
            self.advance()
            return AttrRef(token.text)
        raise self.error(
            "vpfloat attribute must be an integer literal or identifier"
        )

    def parse_pointers(self, base: CType) -> CType:
        while self.accept_punct("*"):
            base = PointerT(base)
        return base

    def parse_array_suffixes(self, base: CType) -> CType:
        """Parse trailing [N] / [expr] and build (possibly VLA) array types."""
        extents = []
        while self.accept_punct("["):
            if self.current.is_punct("]"):
                extents.append(None)  # unsized: decays to pointer
            else:
                extents.append(self.parse_expression())
            self.expect_punct("]")
        for extent in reversed(extents):
            if extent is None:
                base = PointerT(base)
            elif isinstance(extent, ast.IntLit):
                base = ArrayT(base, extent.value)
            else:
                base = ArrayT(base, None, vla_extent=extent)
        return base

    # ------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------ #

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.current.kind is not TokenKind.EOF:
            if self.current.kind is TokenKind.PRAGMA:
                self.advance()  # file-scope pragmas are ignored
                continue
            unit.declarations.extend(self.parse_external_declaration())
        return unit

    def parse_external_declaration(self) -> List[ast.Node]:
        base = self.parse_type_specifier()
        decl_type = self.parse_pointers(base)
        name_token = self.expect_ident()
        if self.current.is_punct("("):
            return [self.parse_function_rest(decl_type, name_token)]
        return self.parse_global_rest(decl_type, name_token, base)

    def parse_function_rest(self, return_type: CType,
                            name_token: Token) -> ast.FunctionDecl:
        func = ast.FunctionDecl(
            name=name_token.text, return_type=return_type,
            line=name_token.line, column=name_token.column,
        )
        self.expect_punct("(")
        if not self.current.is_punct(")"):
            if self.current.is_keyword("void") and self.peek(1).is_punct(")"):
                self.advance()
            else:
                index = 0
                while True:
                    param = self.parse_param(index)
                    func.params.append(param)
                    index += 1
                    if not self.accept_punct(","):
                        break
        self.expect_punct(")")
        if self.accept_punct(";"):
            func.body = None
        else:
            func.body = self.parse_block()
        return func

    def parse_param(self, index: int) -> ast.ParamDecl:
        base = self.parse_type_specifier()
        ptype = self.parse_pointers(base)
        name = ""
        line = col = 0
        if self.current.kind is TokenKind.IDENT:
            token = self.expect_ident()
            name, line, col = token.text, token.line, token.column
        ptype = self.parse_array_suffixes(ptype)
        from .ctypes import decay

        return ast.ParamDecl(name=name, type=decay(ptype), index=index,
                             line=line, column=col)

    def parse_global_rest(self, first_type: CType, name_token: Token,
                          base: CType) -> List[ast.Node]:
        decls: List[ast.Node] = []
        decl_type = self.parse_array_suffixes(first_type)
        # Initializers bind tighter than the declarator comma.
        init = self.parse_assignment() if self.accept_punct("=") else None
        decls.append(ast.VarDecl(
            name=name_token.text, type=decl_type, init=init, is_global=True,
            line=name_token.line, column=name_token.column,
        ))
        while self.accept_punct(","):
            next_type = self.parse_pointers(base)
            token = self.expect_ident()
            next_type = self.parse_array_suffixes(next_type)
            init = self.parse_assignment() if self.accept_punct("=") else None
            decls.append(ast.VarDecl(
                name=token.text, type=next_type, init=init, is_global=True,
                line=token.line, column=token.column,
            ))
        self.expect_punct(";")
        return decls

    # ------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------ #

    def parse_block(self) -> ast.Block:
        open_token = self.expect_punct("{")
        block = ast.Block(line=open_token.line, column=open_token.column)
        while not self.current.is_punct("}"):
            if self.current.kind is TokenKind.EOF:
                raise self.error("unterminated block", open_token)
            block.statements.append(self.parse_statement())
        self.expect_punct("}")
        return block

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind is TokenKind.PRAGMA:
            return self.parse_pragma_statement()
        if token.is_punct("{"):
            return self.parse_block()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("while"):
            return self.parse_while()
        if token.is_keyword("do"):
            return self.parse_do_while()
        if token.is_keyword("for"):
            return self.parse_for()
        if token.is_keyword("return"):
            self.advance()
            value = None
            if not self.current.is_punct(";"):
                value = self.parse_expression()
            self.expect_punct(";")
            return ast.Return(value=value, line=token.line, column=token.column)
        if token.is_keyword("break"):
            self.advance()
            self.expect_punct(";")
            return ast.Break(line=token.line, column=token.column)
        if token.is_keyword("continue"):
            self.advance()
            self.expect_punct(";")
            return ast.Continue(line=token.line, column=token.column)
        if self.at_type_start():
            return self.parse_declaration_statement()
        if token.is_punct(";"):
            self.advance()
            return ast.Block(line=token.line, column=token.column)
        expr = self.parse_expression()
        self.expect_punct(";")
        return ast.ExprStmt(expr=expr, line=token.line, column=token.column)

    def parse_pragma_statement(self) -> ast.Stmt:
        token = self.advance()
        text = token.text
        if text.replace(" ", "").startswith("ompparallelfor"):
            stmt = self.parse_statement()
            if not isinstance(stmt, ast.For):
                raise self.error(
                    "'#pragma omp parallel for' must precede a for loop", token
                )
            stmt.omp_parallel = True
            return stmt
        if text.replace(" ", "").startswith("ompatomic"):
            stmt = self.parse_statement()
            return ast.Pragma(text="omp atomic", statement=stmt,
                              line=token.line, column=token.column)
        # Unknown pragmas attach to the next statement transparently.
        stmt = self.parse_statement()
        return ast.Pragma(text=text, statement=stmt,
                          line=token.line, column=token.column)

    def parse_declaration_statement(self) -> ast.DeclStmt:
        start = self.current
        base = self.parse_type_specifier()
        decls = []
        while True:
            decl_type = self.parse_pointers(base)
            token = self.expect_ident()
            decl_type = self.parse_array_suffixes(decl_type)
            init = self.parse_assignment() if self.accept_punct("=") else None
            decls.append(ast.VarDecl(
                name=token.text, type=decl_type, init=init,
                line=token.line, column=token.column,
            ))
            if not self.accept_punct(","):
                break
        self.expect_punct(";")
        return ast.DeclStmt(decls=decls, line=start.line, column=start.column)

    def parse_if(self) -> ast.If:
        token = self.advance()
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        then_body = self.parse_statement()
        else_body = None
        if self.current.is_keyword("else"):
            self.advance()
            else_body = self.parse_statement()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body,
                      line=token.line, column=token.column)

    def parse_while(self) -> ast.While:
        token = self.advance()
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.While(cond=cond, body=body,
                         line=token.line, column=token.column)

    def parse_do_while(self) -> ast.DoWhile:
        token = self.advance()
        body = self.parse_statement()
        if not self.current.is_keyword("while"):
            raise self.error("expected 'while' after do body")
        self.advance()
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        self.expect_punct(";")
        return ast.DoWhile(body=body, cond=cond,
                           line=token.line, column=token.column)

    def parse_for(self) -> ast.For:
        token = self.advance()
        self.expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self.current.is_punct(";"):
            if self.at_type_start():
                init = self.parse_declaration_statement()
            else:
                expr = self.parse_expression()
                self.expect_punct(";")
                init = ast.ExprStmt(expr=expr)
        else:
            self.advance()
        cond = None
        if not self.current.is_punct(";"):
            cond = self.parse_expression()
        self.expect_punct(";")
        step = None
        if not self.current.is_punct(")"):
            step = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.For(init=init, cond=cond, step=step, body=body,
                       line=token.line, column=token.column)

    # ------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------ #

    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.accept_punct(","):
            # Comma expression: evaluate both, yield the right side.
            rhs = self.parse_assignment()
            expr = ast.Binary(op=",", lhs=expr, rhs=rhs,
                              line=rhs.line, column=rhs.column)
        return expr

    def parse_assignment(self) -> ast.Expr:
        lhs = self.parse_ternary()
        token = self.current
        if token.kind is TokenKind.PUNCT and token.text in (
            "=", "+=", "-=", "*=", "/=", "%="
        ):
            self.advance()
            rhs = self.parse_assignment()
            return ast.Assign(op=token.text, target=lhs, value=rhs,
                              line=token.line, column=token.column)
        return lhs

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.accept_punct("?"):
            true_expr = self.parse_assignment()
            self.expect_punct(":")
            false_expr = self.parse_assignment()
            return ast.Ternary(cond=cond, true_expr=true_expr,
                               false_expr=false_expr,
                               line=cond.line, column=cond.column)
        return cond

    def parse_binary(self, min_precedence: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            token = self.current
            if token.kind is not TokenKind.PUNCT:
                return lhs
            precedence = _BINARY_PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return lhs
            self.advance()
            rhs = self.parse_binary(precedence + 1)
            lhs = ast.Binary(op=token.text, lhs=lhs, rhs=rhs,
                             line=token.line, column=token.column)

    def parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.PUNCT and token.text in (
            "-", "+", "!", "~", "++", "--", "&", "*"
        ):
            self.advance()
            operand = self.parse_unary()
            if token.text == "&":
                return ast.AddressOf(operand=operand,
                                     line=token.line, column=token.column)
            if token.text == "*":
                return ast.Deref(operand=operand,
                                 line=token.line, column=token.column)
            return ast.Unary(op=token.text, operand=operand,
                             line=token.line, column=token.column)
        if token.is_keyword("sizeof"):
            self.advance()
            if self.current.is_punct("(") and self.at_type_start(1):
                self.expect_punct("(")
                queried = self.parse_type_specifier()
                queried = self.parse_pointers(queried)
                self.expect_punct(")")
                return ast.SizeofType(queried_type=queried,
                                      line=token.line, column=token.column)
            operand = self.parse_unary()
            return ast.SizeofExpr(operand=operand,
                                  line=token.line, column=token.column)
        if token.is_punct("(") and self.at_type_start(1):
            self.expect_punct("(")
            target = self.parse_type_specifier()
            target = self.parse_pointers(target)
            self.expect_punct(")")
            expr = self.parse_unary()
            return ast.Cast(target_type=target, expr=expr,
                            line=token.line, column=token.column)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.current
            if token.is_punct("["):
                self.advance()
                index = self.parse_expression()
                self.expect_punct("]")
                expr = ast.Index(base=expr, index=index,
                                 line=token.line, column=token.column)
            elif token.is_punct("(") and isinstance(expr, ast.Ident):
                self.advance()
                args = []
                if not self.current.is_punct(")"):
                    args.append(self.parse_assignment())
                    while self.accept_punct(","):
                        args.append(self.parse_assignment())
                self.expect_punct(")")
                expr = ast.Call(name=expr.name, args=args,
                                line=token.line, column=token.column)
            elif token.kind is TokenKind.PUNCT and token.text in ("++", "--"):
                self.advance()
                expr = ast.Unary(op=token.text, operand=expr, postfix=True,
                                 line=token.line, column=token.column)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.INT_LIT:
            self.advance()
            try:
                value = int(token.text, 0)
            except ValueError:
                raise self.error(
                    f"malformed integer literal {token.text!r}") from None
            return ast.IntLit(value=value,
                              unsigned=token.suffix == "u",
                              long=token.suffix == "l",
                              line=token.line, column=token.column)
        if token.kind is TokenKind.FLOAT_LIT:
            self.advance()
            return ast.FloatLit(text=token.text, suffix=token.suffix,
                                line=token.line, column=token.column)
        if token.kind is TokenKind.STRING_LIT:
            self.advance()
            return ast.StringLit(value=token.text,
                                 line=token.line, column=token.column)
        if token.kind is TokenKind.IDENT:
            self.advance()
            return ast.Ident(name=token.text,
                             line=token.line, column=token.column)
        if token.is_punct("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        raise self.error(f"unexpected token {token.text!r} in expression")


def parse(source: str) -> ast.TranslationUnit:
    """Parse a full translation unit."""
    return Parser(source).parse_translation_unit()
