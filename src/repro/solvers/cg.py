"""Variable-precision Conjugate Gradient (paper §IV-C, Algorithm 1).

The original Hestenes-Stiefel iteration implemented on the precision-
generic BLAS of :mod:`repro.blas.vblas`: the core loop takes the working
precision as a parameter, so "every run of the function can make use of a
different precision value ... without recompilation" -- exactly the
paper's dynamically-sized-type use case.

:func:`precision_sweep` reproduces Fig. 3: iterations-to-convergence and
modeled execution time as functions of precision, including the paper's
observed *increase* of runtime past the plateau (per-iteration cost keeps
growing with the word count while iterations stop improving).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..bigfloat import BigFloat, arith
from ..blas.vblas import (
    BlasOps,
    Vector,
    vaxpy,
    vcopy,
    vdot,
    vfrom,
    vgemv,
    vzero,
)
from .matrices import CSRMatrix


@dataclass
class CGResult:
    """One CG solve."""

    x: Vector
    iterations: int
    converged: bool
    precision: int
    residual_norm: BigFloat
    residual_history: List[float] = field(default_factory=list)
    ops: BlasOps = field(default_factory=BlasOps)

    def modeled_cycles(self, per_op_temp: bool = False,
                       overhead_factor: float = 1.0) -> float:
        """Execution-time model: BLAS op tally x MPFR cost at this
        precision (+ optional Boost-style per-op temporaries, + a
        language-runtime overhead factor for the Julia comparison)."""
        return self.ops.cycles(self.precision,
                               per_op_temp=per_op_temp) * overhead_factor


def conjugate_gradient(matrix: CSRMatrix, b: Sequence[float],
                       precision: int,
                       tolerance: float = 1e-10,
                       max_iterations: Optional[int] = None,
                       x0: Optional[Vector] = None) -> CGResult:
    """Algorithm 1 of the paper at ``precision`` bits of significand."""
    n = matrix.nrows
    if max_iterations is None:
        max_iterations = 20 * n
    prec = precision
    ops = BlasOps()
    one = BigFloat.from_int(1, prec)
    minus_one = BigFloat.from_int(-1, prec)
    zero = BigFloat.zero(prec)

    bv = vfrom(list(b), prec)
    x = x0[:] if x0 is not None else vzero(n, prec)
    # r0 = b - A x0
    ax = vgemv(prec, one, matrix, x, zero, vzero(n, prec), ops)
    r = vaxpy(prec, minus_one, ax, bv, ops)
    p = vcopy(r, prec, ops)
    rr = vdot(prec, r, r, ops)
    tol = BigFloat.from_float(tolerance, prec)
    history: List[float] = []

    iterations = 0
    converged = False
    residual_norm = arith.sqrt(rr, prec)
    history.append(residual_norm.to_float())
    if residual_norm <= tol:
        converged = True
    while not converged and iterations < max_iterations:
        ap = vgemv(prec, one, matrix, p, zero, vzero(n, prec), ops)
        pap = vdot(prec, p, ap, ops)
        if pap.is_zero() or pap.is_nan() or pap.sign == 1:
            break  # loss of positive-definiteness at this precision
        alpha = arith.div(rr, pap, prec)
        ops.divs += 1
        x = vaxpy(prec, alpha, p, x, ops)
        r = vaxpy(prec, -alpha, ap, r, ops)
        rr_next = vdot(prec, r, r, ops)
        residual_norm = arith.sqrt(rr_next, prec)
        ops.sqrts += 1
        history.append(residual_norm.to_float())
        iterations += 1
        if residual_norm <= tol:
            converged = True
            break
        if rr.is_zero():
            break
        beta = arith.div(rr_next, rr, prec)
        ops.divs += 1
        p = vaxpy(prec, beta, p, r, ops)  # p_{k+1} = r_{k+1} + beta*p_k
        rr = rr_next
    return CGResult(x=x, iterations=iterations, converged=converged,
                    precision=prec, residual_norm=residual_norm,
                    residual_history=history, ops=ops)


@dataclass
class SweepPoint:
    precision: int
    iterations: int
    converged: bool
    cycles_vpfloat: float
    cycles_boost: float
    cycles_julia: float
    final_residual: float


def precision_sweep(matrix: CSRMatrix, b: Sequence[float],
                    precisions: Sequence[int],
                    tolerance: float = 1e-10,
                    max_iterations: Optional[int] = None,
                    julia_overhead: float = 9.0) -> List[SweepPoint]:
    """Fig. 3: iterations + modeled runtime over a precision sweep.

    ``julia_overhead`` models the dynamic-typing/GC overhead the paper
    measures against Julia (">9x" slower than vpfloat at the same
    operation count).  Boost time adds per-operation temporaries."""
    points: List[SweepPoint] = []
    for prec in precisions:
        result = conjugate_gradient(matrix, b, prec, tolerance,
                                    max_iterations)
        points.append(SweepPoint(
            precision=prec,
            iterations=result.iterations,
            converged=result.converged,
            cycles_vpfloat=result.modeled_cycles(),
            cycles_boost=result.modeled_cycles(per_op_temp=True),
            cycles_julia=result.modeled_cycles(
                overhead_factor=julia_overhead),
            final_residual=result.residual_norm.to_float(),
        ))
    return points
