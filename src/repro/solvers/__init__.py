"""Iterative solvers and test matrices (paper §IV-C)."""

from .adaptive import AdaptiveCGResult, AdaptiveStage, adaptive_cg
from .cg import CGResult, SweepPoint, conjugate_gradient, precision_sweep
from .matrices import (
    CSRMatrix,
    bcsstk20_like,
    condition_estimate,
    from_coordinates,
    load_matrix_market,
    rhs_for,
    save_matrix_market,
)

__all__ = [
    "conjugate_gradient", "precision_sweep", "CGResult", "SweepPoint",
    "adaptive_cg", "AdaptiveCGResult", "AdaptiveStage",
    "CSRMatrix", "from_coordinates", "load_matrix_market",
    "save_matrix_market", "bcsstk20_like", "rhs_for", "condition_estimate",
]
