"""Sparse matrices: CSR storage, Matrix Market I/O, bcsstk20 stand-in.

The paper's Fig. 3 runs CG on *bcsstk20* from the Matrix Market
collection -- a 485x485 symmetric positive-definite stiffness matrix with
condition number about 3.9e12.  That file is not redistributable here, so
:func:`bcsstk20_like` deterministically synthesizes a matrix with the
properties CG cares about (SPD, banded stiffness structure, and a huge
spectral spread), scaled to a simulator-friendly size.  A real ``.mtx``
file can be loaded with :func:`load_matrix_market` instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass
class CSRMatrix:
    """Compressed sparse row matrix of doubles."""

    nrows: int
    ncols: int
    indptr: List[int]
    indices: List[int]
    data: List[float]

    def row(self, i: int) -> Iterable[Tuple[int, float]]:
        start, end = self.indptr[i], self.indptr[i + 1]
        return zip(self.indices[start:end], self.data[start:end])

    @property
    def nnz(self) -> int:
        return len(self.data)

    def to_dense(self) -> List[List[float]]:
        dense = [[0.0] * self.ncols for _ in range(self.nrows)]
        for i in range(self.nrows):
            for j, a in self.row(i):
                dense[i][j] = a
        return dense

    def matvec(self, x: List[float]) -> List[float]:
        result = []
        for i in range(self.nrows):
            acc = 0.0
            for j, a in self.row(i):
                acc += a * x[j]
            result.append(acc)
        return result


def from_coordinates(nrows: int, ncols: int,
                     entries: Dict[Tuple[int, int], float]) -> CSRMatrix:
    indptr = [0]
    indices: List[int] = []
    data: List[float] = []
    for i in range(nrows):
        row_entries = sorted((j, v) for (r, j), v in entries.items()
                             if r == i)
        for j, v in row_entries:
            indices.append(j)
            data.append(v)
        indptr.append(len(indices))
    return CSRMatrix(nrows, ncols, indptr, indices, data)


# ----------------------------------------------------------------- #
# Matrix Market (coordinate real symmetric/general)
# ----------------------------------------------------------------- #

def load_matrix_market(path: str) -> CSRMatrix:
    """Parse a MatrixMarket ``.mtx`` coordinate file."""
    symmetric = False
    entries: Dict[Tuple[int, int], float] = {}
    nrows = ncols = None
    with open(path) as handle:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("not a MatrixMarket file")
        tokens = header.lower().split()
        if "coordinate" not in tokens:
            raise ValueError("only coordinate format is supported")
        symmetric = "symmetric" in tokens
        for line in handle:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            if nrows is None:
                nrows, ncols = int(parts[0]), int(parts[1])
                continue
            i, j = int(parts[0]) - 1, int(parts[1]) - 1
            value = float(parts[2]) if len(parts) > 2 else 1.0
            entries[(i, j)] = value
            if symmetric and i != j:
                entries[(j, i)] = value
    if nrows is None:
        raise ValueError("missing size line")
    return from_coordinates(nrows, ncols, entries)


def save_matrix_market(matrix: CSRMatrix, path: str,
                       comment: str = "") -> None:
    """Write the lower triangle as coordinate real symmetric."""
    with open(path, "w") as handle:
        handle.write("%%MatrixMarket matrix coordinate real symmetric\n")
        if comment:
            handle.write(f"% {comment}\n")
        lower = [(i, j, v) for i in range(matrix.nrows)
                 for j, v in matrix.row(i) if j <= i]
        handle.write(f"{matrix.nrows} {matrix.ncols} {len(lower)}\n")
        for i, j, v in lower:
            handle.write(f"{i + 1} {j + 1} {v!r}\n")


# ----------------------------------------------------------------- #
# The bcsstk20 stand-in
# ----------------------------------------------------------------- #

def _lcg(seed: int):
    state = seed & 0xFFFFFFFF

    def next_float() -> float:
        nonlocal state
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        return state / 0x7FFFFFFF

    return next_float


def bcsstk20_like(n: int = 64, condition: float = 1e12,
                  bandwidth: int = 3, seed: int = 20) -> CSRMatrix:
    """Synthetic SPD stiffness-style matrix with spectral spread
    ~``condition`` (DESIGN.md substitution for bcsstk20).

    Construction: a banded SPD base (discrete 1-D stiffness chain) whose
    per-node stiffness coefficients sweep log-uniformly over
    ``condition`` decades -- just like the beam-element stiffness matrix
    bcsstk20, whose extreme element stiffness ratios are what make it
    ill-conditioned.
    """
    rand = _lcg(seed)
    decades = math.log10(condition)
    stiffness = []
    for i in range(n + 1):
        exponent = (i / n) * decades
        jitter = 0.5 + rand()
        stiffness.append(jitter * 10.0 ** exponent)
    entries: Dict[Tuple[int, int], float] = {}
    for i in range(n):
        diag = stiffness[i] + stiffness[i + 1]
        entries[(i, i)] = diag
        for off in range(1, bandwidth):
            j = i + off
            if j >= n:
                continue
            coupling = -stiffness[min(i, j) + 1] / (off + 1)
            entries[(i, j)] = coupling
            entries[(j, i)] = coupling
    # Diagonal boost for strict positive definiteness under the band fill.
    for i in range(n):
        row_sum = sum(abs(v) for (r, c), v in entries.items()
                      if r == i and c != i)
        if entries[(i, i)] <= row_sum:
            entries[(i, i)] = row_sum * 1.01 + 1.0
    return from_coordinates(n, n, entries)


def rhs_for(matrix: CSRMatrix, seed: int = 7) -> List[float]:
    """A deterministic right-hand side with unit-scale entries."""
    rand = _lcg(seed)
    return [rand() * 2.0 - 1.0 for _ in range(matrix.nrows)]


def condition_estimate(matrix: CSRMatrix, iterations: int = 200) -> float:
    """Rough 2-norm condition estimate via power iteration on A and a
    Gershgorin-style lower bound (diagnostic only)."""
    n = matrix.nrows
    x = [1.0 / math.sqrt(n)] * n
    lam_max = 0.0
    for _ in range(iterations):
        y = matrix.matvec(x)
        norm = math.sqrt(sum(v * v for v in y))
        if norm == 0:
            break
        x = [v / norm for v in y]
        lam_max = norm
    lam_min = min(matrix.data[matrix.indptr[i]:matrix.indptr[i + 1]]
                  [list(matrix.indices[matrix.indptr[i]:
                                       matrix.indptr[i + 1]]).index(i)]
                  - sum(abs(v) for j, v in matrix.row(i) if j != i)
                  for i in range(n))
    lam_min = max(lam_min, 1e-300)
    return lam_max / lam_min
