"""Transprecision CG: adapt the working precision at runtime.

Paper §II describes the "transprecision" pattern its type system is built
for: *"instead of computing the necessary precision a priori, the
modified kernel uses an outer loop to systematically check the result for
accuracy at predefined points. If the residual is above a predefined
threshold, or if convergence is too slow, the solver increases its
internal precision and resumes the computation."*

:func:`adaptive_cg` implements exactly that driver on top of the
precision-generic :func:`~repro.solvers.cg.conjugate_gradient`: run a
bounded burst of iterations, measure progress, and escalate the precision
when the residual stalls -- reusing the current iterate (rounded into the
new precision) as the warm start.  Because the solver takes precision as
a runtime parameter, no recompilation happens between stages -- the
paper's single-source requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..bigfloat import BigFloat
from ..blas.vblas import BlasOps
from .cg import conjugate_gradient
from .matrices import CSRMatrix


@dataclass
class AdaptiveStage:
    """One burst at a fixed precision."""

    precision: int
    iterations: int
    entry_residual: float
    exit_residual: float
    escalated: bool


@dataclass
class AdaptiveCGResult:
    x: List[BigFloat]
    converged: bool
    stages: List[AdaptiveStage] = field(default_factory=list)
    total_iterations: int = 0
    final_precision: int = 0
    final_residual: float = float("inf")
    ops: BlasOps = field(default_factory=BlasOps)

    def modeled_cycles(self) -> float:
        """Stage-weighted cost: each burst billed at its own precision."""
        return self._cycles

    _cycles: float = 0.0


def adaptive_cg(matrix: CSRMatrix, b: Sequence[float],
                initial_precision: int = 60,
                max_precision: int = 2048,
                tolerance: float = 1e-10,
                burst: Optional[int] = None,
                stall_factor: float = 0.5,
                escalation: float = 2.0) -> AdaptiveCGResult:
    """Solve ``A x = b`` escalating precision on stalls.

    A burst of ``burst`` iterations (default: the matrix dimension) runs
    at the current precision; if it neither converges nor improves the
    residual by at least ``stall_factor``, the precision is multiplied by
    ``escalation`` (the iterate carries over).  Gives the practical
    behaviour the paper motivates: pay for high precision only when, and
    for as long as, the conditioning demands it.
    """
    n = matrix.nrows
    if burst is None:
        burst = 2 * n
    result = AdaptiveCGResult(x=[], converged=False)
    precision = initial_precision
    x = None
    previous_residual = float("inf")
    cycles = 0.0

    while precision <= max_precision:
        stage = conjugate_gradient(matrix, b, precision,
                                   tolerance=tolerance,
                                   max_iterations=burst, x0=x)
        cycles += stage.ops.cycles(precision)
        result.ops.merge(stage.ops)
        exit_residual = stage.residual_norm.to_float()
        escalate = not stage.converged and not (
            exit_residual < previous_residual * stall_factor
        )
        result.stages.append(AdaptiveStage(
            precision=precision,
            iterations=stage.iterations,
            entry_residual=previous_residual,
            exit_residual=exit_residual,
            escalated=escalate and not stage.converged,
        ))
        result.total_iterations += stage.iterations
        x = stage.x
        previous_residual = exit_residual
        if stage.converged:
            result.converged = True
            break
        if escalate:
            precision = int(precision * escalation)
        # else: keep iterating at the same precision (progress was real).

    result.x = x or []
    result.final_precision = precision
    result.final_residual = previous_residual
    result._cycles = cycles
    return result
