"""``vpfloat-cc``: command-line driver for the vpfloat toolchain.

Compile a dialect source file, inspect the IR or UNUM assembly, or run a
function on the modeled machine::

    vpfloat-cc kernel.c --emit-ir
    vpfloat-cc kernel.c --backend unum --emit-asm
    vpfloat-cc kernel.c --backend mpfr --run main --args 64 --report
    vpfloat-cc kernel.c --polly --contract-fma --run run --args 16

(equivalently ``python -m repro.cli ...``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List

from .core import BACKENDS, CompileCache, CompilerDriver, ENGINES, \
    default_cache_dir
from .observability import ledger_session, telemetry_session


def _parse_run_args(raw: List[str]) -> List[object]:
    values: List[object] = []
    for token in raw:
        try:
            values.append(int(token, 0))
            continue
        except ValueError:
            pass
        try:
            values.append(float(token))
            continue
        except ValueError:
            pass
        raise SystemExit(f"--args values must be numbers, got {token!r}")
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vpfloat-cc",
        description="Compiler driver for the vpfloat C dialect "
                    "(CGO 2021 reproduction).",
    )
    parser.add_argument("source", help="input source file ('-' for stdin)")
    parser.add_argument("--backend", choices=BACKENDS, default="mpfr")
    parser.add_argument("-O", dest="opt_level", type=int, default=3,
                        choices=(0, 1, 2, 3), help="optimization level")
    parser.add_argument("--polly", action="store_true",
                        help="enable Polly-lite loop nest tiling")
    parser.add_argument("--polly-tile", type=int, default=16)
    parser.add_argument("--contract-fma", action="store_true",
                        help="fuse a*b+c into fma (FP_CONTRACT)")
    parser.add_argument("--no-reuse", action="store_true",
                        help="disable MPFR object reuse (ablation)")
    parser.add_argument("--no-specialize", action="store_true",
                        help="disable mpfr_*_d/_si specialization")
    parser.add_argument("--no-in-place", action="store_true",
                        help="disable in-place stores")
    parser.add_argument("--emit-ir", action="store_true",
                        help="print the final IR module")
    parser.add_argument("--emit-asm", action="store_true",
                        help="print UNUM assembly (backend=unum)")
    parser.add_argument("--run", metavar="FUNC",
                        help="execute FUNC after compiling")
    parser.add_argument("--args", nargs="*", default=[],
                        help="numeric arguments for --run")
    parser.add_argument("--report", action="store_true",
                        help="print the performance report after --run")
    parser.add_argument("--profile", action="store_true",
                        help="print opcode/builtin/pool/pass-time profile "
                             "after --run")
    parser.add_argument("--engine", choices=ENGINES, default=None,
                        help="execution engine (default: 'jit' for the "
                             "mpfr backend, else 'fast'; 'jit' compiles "
                             "IR functions to specialized Python source, "
                             "'unfused' disables superinstruction "
                             "fusion, 'legacy' is the reference tree "
                             "walker)")
    parser.add_argument("--dispatch", dest="engine",
                        choices=("jit", "fast", "unfused", "legacy"),
                        default=None, help=argparse.SUPPRESS)
    parser.add_argument("--no-pool", action="store_true",
                        help="disable the runtime MPFR object pool")
    parser.add_argument("--kernel-tier",
                        choices=("auto", "generic", "small"),
                        default="auto",
                        help="kernel-tier policy for the jit engine's "
                             "precision-specialized fast-path kernels "
                             "(<=64-bit and <=128-bit significands): "
                             "'auto' tiers by precision, 'generic' "
                             "forces the generic kernels, 'small' also "
                             "waives the batched numpy tier's lane-"
                             "count floor; results are bit-identical "
                             "across policies")
    parser.add_argument("--batch", type=int, default=None, metavar="N",
                        help="execute --run as one batched SPMD run of "
                             "N independent lanes (mpfr backend, jit "
                             "engine): one IR dispatch per instruction "
                             "amortized over all lanes, bit-identical "
                             "per-lane values and cycle reports to N "
                             "serial runs; with --validate, certify "
                             "every lane against a serial reference "
                             "run (the serial<->batched transition)")
    parser.add_argument("--validate", action="store_true",
                        help="after --run, emit a translation-validation "
                             "certificate: re-run FUNC on every other "
                             "execution engine and with the pool off "
                             "(bit-identical values + engine/pool report "
                             "invariants), and cross-check -O0 and each "
                             "-O3 pass switch (bit-identical values); "
                             "exit 3 if any check fails")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent compile-cache directory (default: "
                             "$VPFLOAT_CACHE_DIR or ~/.cache/vpfloat-repro; "
                             "created on first use)")
    parser.add_argument("--no-compile-cache", dest="compile_cache",
                        action="store_false",
                        help="always compile from scratch")
    parser.add_argument("--threads", type=int, default=1,
                        help="model OpenMP regions at this thread count")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON of the "
                             "compile + run (view in Perfetto)")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write the metrics registry (compiler, "
                             "runtime, cache, pool, precision "
                             "telemetry) as JSON")
    parser.add_argument("--ledger", metavar="FILE", default=None,
                        help="append compile/run records to this JSONL "
                             "run ledger (compare runs with "
                             "'vpfloat-stats compare')")
    return parser


def _print_cache_stats(cache) -> None:
    if cache is None:
        return
    stats = cache.stats
    total = stats.hits + stats.misses
    if not total and not stats.stores:
        return
    print(f"compile cache:     {stats.hits}/{total} hits "
          f"({100.0 * stats.hit_rate():.1f}%): "
          f"{stats.memory_hits} memory, {stats.disk_hits} disk; "
          f"{stats.stores} stored, {stats.errors} errors")


def _print_profile(result, program) -> None:
    profile = result.profile
    if profile is not None:
        print("hottest opcodes:")
        for opcode, count in profile.hottest_opcodes(10):
            print(f"  {opcode:<16} {count}")
        if profile.builtin_calls:
            print("hottest builtins (by modeled cycles):")
            for name, calls, cycles in profile.hottest_builtins(10):
                print(f"  {name:<24} {calls:>10} calls  {cycles:>12} cycles")
    interpreter = getattr(result, "interpreter", None)
    if interpreter is not None:
        stats = interpreter.mpfr.stats
        attempts = stats.pool_hits + stats.pool_misses
        if attempts:
            print(f"mpfr pool:         {stats.pool_hits}/{attempts} hits "
                  f"({100.0 * stats.pool_hit_rate():.1f}%), "
                  f"{stats.pool_releases} released")
    if program.pass_timings:
        print("pass wall time:")
        for name, seconds in program.pass_timings.items():
            print(f"  {name:<24} {seconds * 1e3:8.3f} ms")


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cache_dir is not None:
        expanded = os.path.expanduser(args.cache_dir)
        if os.path.exists(expanded) and not os.path.isdir(expanded):
            parser.error(f"--cache-dir {args.cache_dir!r} exists and is "
                         f"not a directory")
    if args.ledger is not None:
        with ledger_session(args.ledger):
            return _telemetry_run(args)
    return _telemetry_run(args)


def _telemetry_run(args) -> int:
    if args.trace is None and args.metrics_out is None:
        return _run(args)
    with telemetry_session(trace=args.trace is not None,
                           metrics=args.metrics_out is not None) \
            as (tracer, registry):
        try:
            return _run(args)
        finally:
            if tracer is not None:
                tracer.export(args.trace)
                print(f"trace written to {args.trace}", file=sys.stderr)
            if registry is not None:
                registry.save(args.metrics_out)
                print(f"metrics written to {args.metrics_out}",
                      file=sys.stderr)


def _run(args) -> int:
    if args.source == "-":
        source = sys.stdin.read()
    else:
        with open(args.source) as handle:
            source = handle.read()

    driver = CompilerDriver(
        backend=args.backend,
        opt_level=args.opt_level,
        polly=args.polly,
        polly_tile=args.polly_tile,
        contract_fma=args.contract_fma,
        reuse_objects=not args.no_reuse,
        specialize_scalars=not args.no_specialize,
        in_place_stores=not args.no_in_place,
        engine=args.engine,
        kernel_tier=args.kernel_tier,
        cache=CompileCache(args.cache_dir or default_cache_dir())
        if args.compile_cache else None,
    )
    try:
        program = driver.compile(source, name=args.source)
    except Exception as error:  # diagnostics carry positions already
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.polly and program.tiled_nests:
        print(f"; polly-lite: tiled {program.tiled_nests} loop nest(s)",
              file=sys.stderr)
    if args.emit_ir:
        print(program.module)
    if args.emit_asm:
        if program.asm is None:
            print("error: --emit-asm requires --backend unum",
                  file=sys.stderr)
            return 1
        print(program.asm)

    if args.run:
        run_args = _parse_run_args(args.args)
        if args.batch is not None:
            return _run_batched(args, run_args, program)
        try:
            result = program.run(args.run, run_args,
                                 engine=args.engine,
                                 profile=args.profile,
                                 pool=False if args.no_pool else None)
        except Exception as error:
            print(f"runtime error: {error}", file=sys.stderr)
            return 2
        print(f"{args.run}(...) = {result.value}")
        if args.report:
            report = result.report
            print(f"cycles:            {report.cycles}")
            print(f"instructions:      {report.instructions}")
            print(f"mpfr calls:        {report.mpfr_calls}")
            print(f"heap allocations:  {report.heap_allocations}")
            print(f"LLC misses:        {report.llc_misses}")
            if report.parallel_cycles:
                time = report.parallel_time(args.threads)
                print(f"parallel cycles:   {report.parallel_cycles}")
                print(f"t({args.threads} threads):      {time:.0f}")
        if args.profile:
            _print_profile(result, program)
            _print_cache_stats(driver.cache)
        if args.validate:
            return _validate(args, source, run_args, driver)
    return 0


def _run_batched(args, run_args, program) -> int:
    """Execute --run as one batched SPMD run of --batch lanes."""
    if args.batch < 1:
        print(f"error: --batch must be >= 1, got {args.batch}",
              file=sys.stderr)
        return 1
    if args.backend != "mpfr":
        print("error: --batch requires --backend mpfr", file=sys.stderr)
        return 1
    if args.engine not in (None, "jit"):
        print(f"error: --batch runs on the jit engine, not "
              f"--engine {args.engine}", file=sys.stderr)
        return 1
    try:
        result = program.run_batch(args.run, run_args, lanes=args.batch,
                                   pool=False if args.no_pool else None)
    except Exception as error:
        print(f"runtime error: {error}", file=sys.stderr)
        return 2
    print(f"{args.run}(...) = {result.values[0]}  "
          f"[{result.lanes} lanes, {result.mode}]")
    if result.mode == "serial":
        print(f"; batch bailed out to per-lane serial execution: "
              f"{result.fallback_reason}", file=sys.stderr)
    if args.report:
        report = result.reports[0]
        print(f"per-lane cycles:   {report.cycles}")
        print(f"instructions:      {report.instructions}")
        print(f"mpfr calls:        {report.mpfr_calls}")
        print(f"heap allocations:  {report.heap_allocations}")
        print(f"LLC misses:        {report.llc_misses}")
    if args.validate:
        return _validate_batch(args, run_args, program, result)
    return 0


def _validate_batch(args, run_args, program, result) -> int:
    """Certify the serial<->batched transition for the batch just run:
    a serial jit reference run, every lane checked bit-for-bit under
    the ``exact`` report invariant."""
    from .validation import TRANSITIONS, certificate_for_outcomes

    strictness = TRANSITIONS["serial↔batched"]
    serial = program.run(args.run, run_args, engine="jit",
                         pool=False if args.no_pool else None)
    candidates = [(f"batch{result.lanes}.lane{i}", strictness,
                   [result.values[i]], result.reports[i])
                  for i in range(result.lanes)]
    if result.mode == "batched":
        # The generic↔specialized transition, batched: the same batch
        # with the fast-path kernel tier forced off must match every
        # lane (and the shared report) bit-for-bit.
        tier_strictness = TRANSITIONS["generic↔specialized"]
        generic = program.run_batch(args.run, run_args,
                                    lanes=result.lanes,
                                    pool=False if args.no_pool else None,
                                    kernel_tier="generic")
        candidates.extend(
            (f"tier.generic.lane{i}", tier_strictness,
             [generic.values[i]], generic.reports[i])
            for i in range(generic.lanes))
    certificate = certificate_for_outcomes(
        subject=args.source,
        reference_label="engine.jit.serial",
        reference=([serial.value], serial.report),
        candidates=candidates,
        witness={"func": args.run, "args": list(run_args),
                 "lanes": result.lanes, "batch_mode": result.mode},
        strict=False)
    print(certificate.render())
    return 0 if certificate.passed else 3


def _validate(args, source: str, run_args, driver) -> int:
    """Emit engine + pass certificates for the function just run."""
    if args.backend == "unum":
        print("error: --validate requires an interpreter backend "
              "(none/mpfr/boost)", file=sys.stderr)
        return 1
    from .validation import validate_engines, validate_passes, \
        validate_tiers

    options = dict(
        polly=args.polly,
        polly_tile=args.polly_tile,
        contract_fma=args.contract_fma,
        reuse_objects=not args.no_reuse,
        specialize_scalars=not args.no_specialize,
        in_place_stores=not args.no_in_place,
    )
    certificates = [
        validate_engines(source, args.run, run_args,
                         backend=args.backend, engine=args.engine,
                         name=args.source, cache=driver.cache,
                         strict=False, opt_level=args.opt_level,
                         **options),
        validate_passes(source, args.run, run_args,
                        backend=args.backend, engine=args.engine,
                        name=args.source, cache=driver.cache,
                        strict=False, **options),
        validate_tiers(source, args.run, run_args,
                       backend=args.backend, engine=args.engine,
                       name=args.source, cache=driver.cache,
                       strict=False, **options),
    ]
    for certificate in certificates:
        print(certificate.render())
    if not all(certificate.passed for certificate in certificates):
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
