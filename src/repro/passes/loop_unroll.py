"""Full unrolling of small constant-trip-count loops.

The UNUM backend benefits from unrolling + the register allocator keeping
g-layer values live across iterations (paper §IV-B: "cache and register
reuse through polyhedral loop optimization with downstream loop unrolling
and scalar promotion").  This pass fully unrolls canonical
``for (i = C0; i cmp C1; i += C2)`` loops whose body is a single block
and whose trip count is a small constant.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir import (
    BinaryInst,
    BranchInst,
    Constant,
    ConstantInt,
    Function,
    ICmpInst,
    Instruction,
    Loop,
    LoopInfo,
    PhiInst,
    Value,
)
from .pass_manager import FunctionPass
from .inline import _clone_instruction

MAX_TRIP = 8
MAX_BODY = 24


class LoopUnrollPass(FunctionPass):
    name = "loop-unroll"

    def __init__(self, max_trip: int = MAX_TRIP, max_body: int = MAX_BODY):
        self.max_trip = max_trip
        self.max_body = max_body

    def run(self, func: Function) -> int:
        changed = 0
        # Re-discover loops after each change (the CFG mutates).
        progress = True
        while progress:
            progress = False
            loopinfo = LoopInfo(func)
            for loop in loopinfo.innermost():
                if self._unroll(func, loop):
                    changed += 1
                    progress = True
                    break
        return changed

    def _unroll(self, func: Function, loop: Loop) -> bool:
        shape = self._analyze(loop)
        if shape is None:
            return False
        header, body, trip, phis, start_values, step_fn = shape
        preheader = loop.preheader()
        if preheader is None:
            return False
        exits = loop.exits()
        if len(exits) != 1:
            return False
        exit_block = exits[0]
        body_size = len(body.instructions) if body is not None else 0
        if trip * max(body_size, 1) > self.max_trip * self.max_body:
            return False

        # Current value of each header phi.
        current: Dict[int, Value] = {
            id(phi): start for phi, start in zip(phis, start_values)
        }

        insert_block = preheader
        insert_point = preheader.instructions.index(
            preheader.instructions[-1])

        def emit(inst: Instruction) -> Instruction:
            nonlocal insert_point
            inst.parent = insert_block
            insert_block.instructions.insert(insert_point, inst)
            insert_point += 1
            return inst

        body_insts = [] if body is None else [
            i for i in body.instructions if not i.is_terminator
        ]
        header_insts = [i for i in header.instructions
                        if not isinstance(i, PhiInst) and not i.is_terminator]

        last_map: Dict[int, Value] = {}
        for _ in range(trip):
            iteration_map: Dict[int, Value] = dict(current)

            def mapped(value: Value) -> Value:
                if isinstance(value, Constant):
                    return value
                return iteration_map.get(id(value), value)

            for inst in header_insts + body_insts:
                clone = _clone_instruction(inst, mapped, lambda t: t, {},
                                           func)
                emit(clone)
                iteration_map[id(inst)] = clone
            # Advance the induction phis.
            for phi in phis:
                latch_value = step_fn[id(phi)]
                current[id(phi)] = iteration_map.get(id(latch_value),
                                                     latch_value) \
                    if not isinstance(latch_value, Constant) else latch_value
            last_map = iteration_map

        # Rewire: preheader jumps straight to the exit.
        preheader.terminator.replace_target(header, exit_block)
        # Uses of loop values outside the loop: only the phis' final
        # values are well-defined; replace them.
        for phi in phis:
            outside_users = [u for u in list(phi.users)
                             if u.parent not in loop.blocks]
            for user in outside_users:
                user.replace_operand(phi, current[id(phi)])
        # Non-phi loop values used outside take their final-iteration clone.
        for inst in header_insts + body_insts:
            replacement = last_map.get(id(inst))
            if replacement is None:
                continue
            for user in [u for u in list(inst.users)
                         if u.parent not in loop.blocks]:
                user.replace_operand(inst, replacement)
        for phi in exit_block.phis():
            phi.replace_incoming_block(header, preheader)
        # The loop body is now unreachable; let SimplifyCFG collect it.
        return True

    def _analyze(self, loop: Loop) -> Optional[tuple]:
        header = loop.header
        blocks = [b for b in loop.blocks if b is not header]
        if len(blocks) > 1:
            return None
        body = blocks[0] if blocks else None
        if body is not None and body.phis():
            return None  # body phis would need per-iteration merging
        term = header.terminator
        if not isinstance(term, BranchInst) or not term.is_conditional:
            return None
        cond = term.condition
        if not isinstance(cond, ICmpInst):
            return None
        if cond.parent is not header:
            return None
        phis = header.phis()
        if not phis:
            return None
        # Identify the controlling induction phi and constants.
        induction = None
        for phi in phis:
            if cond.operands[0] is phi and isinstance(cond.operands[1],
                                                      ConstantInt):
                induction = phi
                bound = cond.operands[1].value
                break
        else:
            return None
        start_values = []
        step_fn: Dict[int, Value] = {}
        start = step = None
        for phi in phis:
            phi_start = phi_latch = None
            for value, block in phi.incoming:
                if block in loop.blocks:
                    phi_latch = value
                else:
                    phi_start = value
            if phi_start is None or phi_latch is None:
                return None
            start_values.append(phi_start)
            step_fn[id(phi)] = phi_latch
            if phi is induction:
                if not isinstance(phi_start, ConstantInt):
                    return None
                start = phi_start.value
                if not isinstance(phi_latch, BinaryInst) or \
                        phi_latch.opcode != "add":
                    return None
                operands = phi_latch.operands
                if operands[0] is phi and isinstance(operands[1],
                                                     ConstantInt):
                    step = operands[1].value
                elif operands[1] is phi and isinstance(operands[0],
                                                       ConstantInt):
                    step = operands[0].value
                else:
                    return None
        if step is None or step <= 0:
            return None
        # Any instruction in the body cloned per-iteration must not be a
        # call with control side effects we cannot replicate (all calls are
        # fine to clone -- they execute the same number of times).
        predicate = cond.predicate
        if predicate in ("slt", "ult"):
            if start >= bound:
                trip = 0
            else:
                trip = (bound - start + step - 1) // step
        elif predicate in ("sle", "ule"):
            trip = 0 if start > bound else (bound - start) // step + 1
        else:
            return None
        if trip < 0 or trip > self.max_trip:
            return None
        # The exit must come from the header only.
        for block in loop.blocks:
            for succ in block.successors():
                if succ not in loop.blocks and block is not header:
                    return None
        return header, body, trip, phis, start_values, step_fn
