"""SCoP detection and rectangular loop tiling (the Polly-lite core).

A *tilable nest* is a perfect nest of ``for`` loops with

- canonical induction: ``for (T i = L; i < U; i++)`` (or ``++i``/``i+=1``)
  with loop-invariant bounds,
- a body consisting only of assignments/compound-assignments whose array
  accesses are *affine-canonical* in the induction variables, and
- a dependence pattern the conservative legality test accepts: every
  array that is written is accessed (read or written) through **one**
  canonical index expression.  Then all dependences are loop-independent,
  the nest is fully permutable, and rectangular tiling is legal.

This test deliberately rejects stencils with shifted self-accesses
(adi-style) and triangular factorizations (ludcmp) -- mirroring where
real Polly bails out or mis-tunes in the paper's Fig. 1/2 discussion.

Tiling ``for(i=L;i<U;i++)`` by ``T`` produces::

    for (TY it = L; it < U; it += T)
      for (TY i = it; i < (it+T < U ? it+T : U); i++)
        ...
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...lang import ast
from ...lang.ctypes import IntT

DEFAULT_TILE = 16


@dataclass
class LoopNest:
    """A perfect nest: loops outermost-first plus the innermost body."""

    loops: List[ast.For]
    body: ast.Stmt
    induction_vars: List[str]


class PollyLite:
    """Apply tiling to every legal nest in a translation unit."""

    def __init__(self, tile_size: int = DEFAULT_TILE, min_depth: int = 2):
        self.tile_size = tile_size
        self.min_depth = min_depth
        self.tiled_nests = 0

    def run(self, unit: ast.TranslationUnit) -> int:
        for func in unit.functions():
            if func.body is not None:
                self._walk_block(func.body)
        return self.tiled_nests

    # ------------------------------------------------------------ #

    def _walk_block(self, block: ast.Block) -> None:
        for i, stmt in enumerate(block.statements):
            replacement = self._try_stmt(stmt)
            if replacement is not None:
                block.statements[i] = replacement
            elif isinstance(stmt, ast.Block):
                self._walk_block(stmt)
            elif isinstance(stmt, ast.If):
                self._walk_nested(stmt.then_body)
                if stmt.else_body is not None:
                    self._walk_nested(stmt.else_body)
            elif isinstance(stmt, (ast.While, ast.DoWhile)):
                self._walk_nested(stmt.body)
            elif isinstance(stmt, ast.For):
                self._walk_nested(stmt.body)

    def _walk_nested(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._walk_block(stmt)
        else:
            wrapper = ast.Block(statements=[stmt])
            self._walk_block(wrapper)

    def _try_stmt(self, stmt: ast.Stmt) -> Optional[ast.Stmt]:
        if not isinstance(stmt, ast.For):
            return None
        nest = _match_nest(stmt)
        if nest is None or len(nest.loops) < self.min_depth:
            return None
        if not _legal_to_tile(nest):
            return None
        self.tiled_nests += 1
        return _tile_nest(nest, self.tile_size)


# ----------------------------------------------------------------- #
# Nest matching
# ----------------------------------------------------------------- #

def _match_nest(loop: ast.For) -> Optional[LoopNest]:
    loops: List[ast.For] = []
    vars_: List[str] = []
    current: ast.Stmt = loop
    while isinstance(current, ast.For):
        shape = _canonical_loop(current)
        if shape is None:
            break
        # Rectangular tiling requires bounds invariant in the whole nest:
        # a triangular inner bound (j < i) would reference a point-loop
        # variable from a tile-loop header.
        if any(_mentions(current.cond.rhs, outer) for outer in vars_) or \
                any(_mentions(current.init.decls[0].init, outer)
                    for outer in vars_):
            break
        loops.append(current)
        vars_.append(shape)
        body = current.body
        inner = _single_statement(body)
        if isinstance(inner, ast.For):
            current = inner
        else:
            current = body
            break
    if not loops:
        return None
    return LoopNest(loops=loops, body=loops[-1].body, induction_vars=vars_)


def _single_statement(stmt: ast.Stmt) -> Optional[ast.Stmt]:
    if isinstance(stmt, ast.Block):
        if len(stmt.statements) == 1:
            return _single_statement(stmt.statements[0])
        return None
    return stmt


def _canonical_loop(loop: ast.For) -> Optional[str]:
    """Return the induction variable name for for(T i=L; i<U; i++)."""
    if loop.omp_parallel:
        return None  # keep parallel loops intact for the OpenMP model
    if not isinstance(loop.init, ast.DeclStmt) or len(loop.init.decls) != 1:
        return None
    decl = loop.init.decls[0]
    if not isinstance(decl.type, IntT) or decl.init is None:
        return None
    name = decl.name
    cond = loop.cond
    if not isinstance(cond, ast.Binary) or cond.op != "<":
        return None
    if not (isinstance(cond.lhs, ast.Ident) and cond.lhs.name == name):
        return None
    if _mentions(cond.rhs, name):
        return None  # bound depends on the induction variable
    step = loop.step
    if isinstance(step, ast.Unary) and step.op == "++" and \
            isinstance(step.operand, ast.Ident) and \
            step.operand.name == name:
        return name
    if isinstance(step, ast.Assign) and step.op == "+=" and \
            isinstance(step.target, ast.Ident) and \
            step.target.name == name and \
            isinstance(step.value, ast.IntLit) and step.value.value == 1:
        return name
    return None


def _mentions(expr: ast.Expr, name: str) -> bool:
    if isinstance(expr, ast.Ident):
        return expr.name == name
    for child in _children(expr):
        if _mentions(child, name):
            return True
    return False


def _children(expr: ast.Expr):
    if isinstance(expr, ast.Binary):
        return [expr.lhs, expr.rhs]
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, ast.Assign):
        return [expr.target, expr.value]
    if isinstance(expr, ast.Index):
        return [expr.base, expr.index]
    if isinstance(expr, ast.Call):
        return list(expr.args)
    if isinstance(expr, ast.Cast):
        return [expr.expr]
    if isinstance(expr, ast.Ternary):
        return [expr.cond, expr.true_expr, expr.false_expr]
    if isinstance(expr, (ast.Deref, ast.AddressOf)):
        return [expr.operand]
    return []


# ----------------------------------------------------------------- #
# Legality: the single-canonical-index dependence test
# ----------------------------------------------------------------- #

def _legal_to_tile(nest: LoopNest) -> bool:
    accesses: Dict[str, Dict[str, set]] = {}
    locals_declared: set = set()
    if not _collect_accesses(nest.body, accesses, locals_declared,
                             nest.induction_vars):
        return False
    for array, kinds in accesses.items():
        if "w" not in kinds:
            continue  # read-only arrays never constrain
        index_forms = kinds.get("w", set()) | kinds.get("r", set())
        if len(index_forms) != 1:
            return False
    # Scalar variables written inside the body must be declared inside it
    # (expression temporaries) -- otherwise a loop-carried scalar
    # dependence (a reduction across a tiled loop) could be reordered.
    return True


def _collect_accesses(stmt: ast.Stmt, accesses, locals_declared,
                      induction_vars) -> bool:
    if isinstance(stmt, ast.Block):
        return all(_collect_accesses(s, accesses, locals_declared,
                                     induction_vars)
                   for s in stmt.statements)
    if isinstance(stmt, ast.DeclStmt):
        for decl in stmt.decls:
            locals_declared.add(decl.name)
            if decl.init is not None and not _scan_expr(
                    decl.init, "r", accesses, locals_declared,
                    induction_vars):
                return False
        return True
    if isinstance(stmt, ast.ExprStmt):
        return _scan_expr(stmt.expr, "r", accesses, locals_declared,
                          induction_vars)
    return False  # control flow inside the body: bail out


def _scan_expr(expr: ast.Expr, mode: str, accesses, locals_declared,
               induction_vars) -> bool:
    if isinstance(expr, ast.Assign):
        target = expr.target
        if isinstance(target, ast.Index):
            if not _record_access(target, "w", accesses, induction_vars):
                return False
            # Compound assignment also reads the target.
            if expr.op != "=" and not _record_access(
                    target, "r", accesses, induction_vars):
                return False
            if not _scan_expr(target.base, "r", accesses, locals_declared,
                              induction_vars):
                return False
            if not _scan_expr(target.index, "r", accesses, locals_declared,
                              induction_vars):
                return False
        elif isinstance(target, ast.Ident):
            if target.name not in locals_declared:
                return False  # scalar reduction across the nest: illegal
        else:
            return False
        return _scan_expr(expr.value, "r", accesses, locals_declared,
                          induction_vars)
    if isinstance(expr, ast.Index):
        if not _record_access(expr, "r", accesses, induction_vars):
            return False
        return _scan_expr(expr.base, "r", accesses, locals_declared,
                          induction_vars) and \
            _scan_expr(expr.index, "r", accesses, locals_declared,
                       induction_vars)
    if isinstance(expr, ast.Call):
        return False  # opaque side effects
    for child in _children(expr):
        if not _scan_expr(child, "r", accesses, locals_declared,
                          induction_vars):
            return False
    return True


def _record_access(index_expr: ast.Index, mode: str, accesses,
                   induction_vars) -> bool:
    base, canon = _canonical_access(index_expr)
    if base is None:
        return False
    entry = accesses.setdefault(base, {})
    entry.setdefault(mode, set()).add(canon)
    return True


def _canonical_access(expr: ast.Index) -> Tuple[Optional[str], str]:
    """(base array name, canonical index string) or (None, '')."""
    indices = []
    current: ast.Expr = expr
    while isinstance(current, ast.Index):
        indices.append(_canon(current.index))
        current = current.base
    if not isinstance(current, ast.Ident):
        return None, ""
    if any(c is None for c in indices):
        return None, ""
    return current.name, "[" + "][".join(reversed(indices)) + "]"


def _canon(expr: ast.Expr) -> Optional[str]:
    """Canonical string of an affine-ish index expression."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.Binary) and expr.op in ("+", "-", "*"):
        lhs = _canon(expr.lhs)
        rhs = _canon(expr.rhs)
        if lhs is None or rhs is None:
            return None
        if expr.op in ("+", "*") and rhs < lhs:
            lhs, rhs = rhs, lhs  # commutative normal form
        return f"({lhs}{expr.op}{rhs})"
    if isinstance(expr, ast.Cast):
        return _canon(expr.expr)
    return None


# ----------------------------------------------------------------- #
# The tiling transformation
# ----------------------------------------------------------------- #

def _tile_nest(nest: LoopNest, tile: int) -> ast.Stmt:
    """Rebuild the nest as tile loops (outer) + point loops (inner)."""
    point_loops: List[ast.For] = []
    tile_loops: List[ast.For] = []
    for loop, var in zip(nest.loops, nest.induction_vars):
        decl = loop.init.decls[0]
        tile_var = f"{var}__t"
        lower = decl.init
        upper = loop.cond.rhs
        int_type = decl.type
        tile_loop = ast.For(
            init=ast.DeclStmt(decls=[ast.VarDecl(
                name=tile_var, type=int_type, init=copy.deepcopy(lower))]),
            cond=ast.Binary(op="<", lhs=ast.Ident(name=tile_var),
                            rhs=copy.deepcopy(upper)),
            step=ast.Assign(op="+=", target=ast.Ident(name=tile_var),
                            value=ast.IntLit(value=tile)),
            body=None,
        )
        tile_end = ast.Binary(op="+", lhs=ast.Ident(name=tile_var),
                              rhs=ast.IntLit(value=tile))
        bounded = ast.Ternary(
            cond=ast.Binary(op="<", lhs=copy.deepcopy(tile_end),
                            rhs=copy.deepcopy(upper)),
            true_expr=copy.deepcopy(tile_end),
            false_expr=copy.deepcopy(upper),
        )
        point_loop = ast.For(
            init=ast.DeclStmt(decls=[ast.VarDecl(
                name=var, type=int_type,
                init=ast.Ident(name=tile_var))]),
            cond=ast.Binary(op="<", lhs=ast.Ident(name=var), rhs=bounded),
            step=ast.Unary(op="++", operand=ast.Ident(name=var)),
            body=None,
        )
        tile_loops.append(tile_loop)
        point_loops.append(point_loop)

    # Assemble: tile loops outermost, then point loops, then the body.
    current: ast.Stmt = nest.body
    for loop in reversed(point_loops):
        loop.body = current
        current = loop
    for loop in reversed(tile_loops):
        loop.body = current
        current = loop
    return current


def find_tilable_nests(unit: ast.TranslationUnit,
                       min_depth: int = 2) -> List[LoopNest]:
    """Report (without transforming) the nests Polly-lite would tile."""
    found: List[LoopNest] = []

    def scan(stmt):
        if isinstance(stmt, ast.For):
            nest = _match_nest(stmt)
            if nest is not None and len(nest.loops) >= min_depth and \
                    _legal_to_tile(nest):
                found.append(nest)
                return
        for child in _stmt_children(stmt):
            scan(child)

    for func in unit.functions():
        if func.body is not None:
            scan(func.body)
    return found


def _stmt_children(stmt):
    if isinstance(stmt, ast.Block):
        return stmt.statements
    if isinstance(stmt, ast.For):
        return [stmt.body]
    if isinstance(stmt, (ast.While, ast.DoWhile)):
        return [stmt.body]
    if isinstance(stmt, ast.If):
        return [stmt.then_body] + ([stmt.else_body]
                                   if stmt.else_body else [])
    return []


def optimize_unit(unit: ast.TranslationUnit,
                  tile_size: int = DEFAULT_TILE) -> int:
    """Run Polly-lite; returns the number of tiled nests.

    NOTE: the unit must be re-analyzed (sema) afterwards because tiling
    introduces new declarations.
    """
    return PollyLite(tile_size).run(unit)
