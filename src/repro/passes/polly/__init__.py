"""Polly-lite: source-level polyhedral loop nest optimization.

The paper's "+Polly" configurations run Polly's polyhedral scheduler over
the LLVM IR.  This reproduction implements the part of that machinery the
evaluation exercises -- cache-locality tiling of affine loop nests -- as a
source-to-source scheduling step over the analyzed AST (a legitimate
placement: polyhedral schedules are source-level reorderings).

Pipeline position: parse -> sema -> **polly** -> irgen -> -O3 -> backend.

See :mod:`repro.passes.polly.tiling` for the SCoP detection, the
conservative dependence test, and the rectangular tiling transformation.
"""

from .tiling import (
    DEFAULT_TILE,
    LoopNest,
    PollyLite,
    find_tilable_nests,
    optimize_unit,
)

__all__ = [
    "PollyLite",
    "optimize_unit",
    "find_tilable_nests",
    "LoopNest",
    "DEFAULT_TILE",
]
