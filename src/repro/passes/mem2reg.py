"""mem2reg: promote allocas to SSA registers.

Standard SSA construction (dominance-frontier phi placement + renaming).
Because vpfloat values are first-class scalars (paper §III-C1 footnote:
"vpfloat variables are typed as first-class scalar values, they are
modeled as stack-allocated in upstream passes"), vpfloat allocas promote
exactly like ints and doubles -- this is what lets every later pass see
through variable-precision dataflow.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir import (
    AllocaInst,
    BasicBlock,
    DominatorTree,
    Function,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
    UndefValue,
    Value,
)
from .pass_manager import FunctionPass


def promotable_allocas(func: Function) -> List[AllocaInst]:
    """Allocas whose address never escapes: only direct loads/stores."""
    result = []
    for inst in func.instructions():
        if not isinstance(inst, AllocaInst):
            continue
        if inst.count is not None:
            continue  # VLAs stay in memory
        ok = True
        for user in inst.users:
            if isinstance(user, LoadInst):
                continue
            if isinstance(user, StoreInst) and user.pointer is inst \
                    and user.value is not inst:
                continue
            ok = False
            break
        if ok:
            result.append(inst)
    return result


class Mem2RegPass(FunctionPass):
    name = "mem2reg"

    def run(self, func: Function) -> int:
        allocas = promotable_allocas(func)
        if not allocas:
            return 0
        domtree = DominatorTree(func)
        frontiers = domtree.frontiers()
        reachable = set(domtree.rpo)

        phi_for: Dict[PhiInst, AllocaInst] = {}
        for alloca in allocas:
            defining_blocks = {
                user.parent for user in alloca.users
                if isinstance(user, StoreInst) and user.parent in reachable
            }
            # Iterated dominance frontier.
            worklist = list(defining_blocks)
            has_phi: Set[BasicBlock] = set()
            while worklist:
                block = worklist.pop()
                for frontier_block in frontiers.get(block, ()):
                    if frontier_block in has_phi:
                        continue
                    has_phi.add(frontier_block)
                    phi = PhiInst(alloca.allocated_type)
                    phi.name = func.unique_name(f"{_base_name(alloca)}.phi")
                    phi.parent = frontier_block
                    frontier_block.instructions.insert(0, phi)
                    phi_for[phi] = alloca
                    if frontier_block not in defining_blocks:
                        worklist.append(frontier_block)

        # Renaming walk over the dominator tree.
        stacks: Dict[AllocaInst, List[Value]] = {a: [] for a in allocas}
        alloca_set = set(allocas)
        to_erase: List[Instruction] = []

        def current(alloca: AllocaInst) -> Value:
            stack = stacks[alloca]
            if stack:
                return stack[-1]
            return UndefValue(alloca.allocated_type)

        def rename(block: BasicBlock) -> None:
            pushed: List[AllocaInst] = []
            for inst in list(block.instructions):
                if isinstance(inst, PhiInst) and inst in phi_for:
                    stacks[phi_for[inst]].append(inst)
                    pushed.append(phi_for[inst])
                elif isinstance(inst, LoadInst) and inst.pointer in alloca_set:
                    inst.replace_all_uses_with(current(inst.pointer))
                    to_erase.append(inst)
                elif isinstance(inst, StoreInst) and inst.pointer in alloca_set:
                    stacks[inst.pointer].append(inst.value)
                    pushed.append(inst.pointer)
                    to_erase.append(inst)
            for succ in block.successors():
                for phi in succ.phis():
                    if phi in phi_for:
                        phi.add_incoming(current(phi_for[phi]), block)
            for child in domtree.children.get(block, ()):
                rename(child)
            for alloca in pushed:
                stacks[alloca].pop()

        rename(func.entry)

        for inst in to_erase:
            if not inst.users:
                inst.erase_from_parent()
        erased = 0
        for alloca in allocas:
            remaining = [u for u in alloca.users]
            if not remaining:
                alloca.erase_from_parent()
                erased += 1
        # Prune dead phis (no users) introduced over-eagerly.
        changed = True
        while changed:
            changed = False
            for block in func.blocks:
                for phi in list(block.phis()):
                    if phi in phi_for and not phi.users:
                        phi.drop_all_references()
                        block.instructions.remove(phi)
                        changed = True
        return len(allocas)


def _base_name(alloca: AllocaInst) -> str:
    name = alloca.name or "var"
    return name.split(".")[0]
