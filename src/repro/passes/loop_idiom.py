"""Loop Idiom Recognition, extended for dynamically-sized vpfloat types.

Transforms zero-initialization loops into ``memset`` calls and
element-copy loops into ``memcpy`` calls (the two idioms the paper names
in §III-B).  The paper's two modifications are reproduced:

- when the element type is a *dynamically-sized* vpfloat, the byte count
  is computed at runtime by multiplying the trip count with a
  ``__sizeof_vpfloat`` call;
- the idiom is **disabled for mpfr vpfloat types**: an ``__mpfr_struct``
  holds a pointer to its mantissa limbs, so a raw memset/memcpy would
  corrupt or alias mantissa storage (§III-B: "Due to the requirements of
  mpfr types, this optimization can only be enabled for unum types").
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..ir import (
    BinaryInst,
    BranchInst,
    CallInst,
    ConstantFloat,
    ConstantInt,
    ConstantVPFloat,
    Function,
    FunctionType,
    GEPInst,
    I8,
    I32,
    I64,
    ICmpInst,
    LoadInst,
    Loop,
    LoopInfo,
    PhiInst,
    PointerType,
    StoreInst,
    VOID,
    Value,
    VPFloatType,
)
from .pass_manager import FunctionPass


class LoopIdiomPass(FunctionPass):
    name = "loop-idiom"

    def __init__(self, allow_unum: bool = True):
        self.allow_unum = allow_unum

    def run(self, func: Function) -> int:
        changed = 0
        loopinfo = LoopInfo(func)
        for loop in loopinfo.innermost():
            if self._try_rewrite(func, loop):
                changed += 1
        return changed

    # ------------------------------------------------------------ #

    def _try_rewrite(self, func: Function, loop: Loop) -> bool:
        shape = self._canonical_shape(loop)
        if shape is None:
            return False
        header, body, induction, bound = shape
        idiom = self._match_body(body, induction, loop)
        if idiom is None:
            return False
        kind, store, load = idiom
        element_type = store.value.type
        if isinstance(element_type, VPFloatType):
            if element_type.format == "mpfr":
                return False  # paper: mpfr structs cannot be memset/memcpy'd
            if not self.allow_unum:
                return False
        preheader = loop.preheader()
        if preheader is None:
            return False
        exits = loop.exits()
        if len(exits) != 1:
            return False
        exit_block = exits[0]
        # Exit-block phis must not depend on loop values we cannot rebuild.
        for phi in exit_block.phis():
            return False

        module = func.parent
        insert_before = preheader.instructions[-1]

        def emit(inst):
            inst.parent = preheader
            preheader.instructions.insert(
                preheader.instructions.index(insert_before), inst)
            return inst

        # Byte count = trip_count * element_size.
        trip = self._as_i64(emit, bound)
        elem_size = self._element_size(emit, module, func, element_type)
        total = emit(BinaryInst("mul", trip, elem_size))
        total.name = func.unique_name("idiom.bytes")

        base_ptr = store.pointer
        base = self._base_pointer(base_ptr)
        base = self._hoist_base(base, loop, preheader)
        if base is None:
            return False
        if kind == "memset":
            callee = module.get_or_declare(
                "memset", FunctionType(VOID, (PointerType(I8), I32, I64)))
            call = CallInst(callee, [base, ConstantInt(I32, 0), total])
        else:
            src_base = self._hoist_base(self._base_pointer(load.pointer),
                                        loop, preheader)
            if src_base is None:
                return False
            callee = module.get_or_declare(
                "memcpy",
                FunctionType(VOID, (PointerType(I8), PointerType(I8), I64)))
            call = CallInst(callee, [base, src_base, total])
        emit(call)

        # Bypass the loop entirely.
        preheader.terminator.replace_target(header, exit_block)
        return True

    # ------------------------------------------------------------ #

    def _canonical_shape(self, loop: Loop) -> Optional[Tuple]:
        """Match for(i=0; i<N; ++i) with a single body block."""
        header = loop.header
        term = header.terminator
        if not isinstance(term, BranchInst) or not term.is_conditional:
            return None
        cond = term.condition
        if not isinstance(cond, ICmpInst) or cond.predicate not in (
            "slt", "ult"
        ):
            return None
        phis = header.phis()
        if len(phis) != 1:
            return None
        induction = phis[0]
        if cond.operands[0] is not induction:
            return None
        bound = cond.operands[1]
        # Induction must start at 0 and step by 1.
        start = step_add = None
        for value, block in induction.incoming:
            if block in loop.blocks:
                step_add = value
            else:
                start = value
        if not isinstance(start, ConstantInt) or start.value != 0:
            return None
        if not isinstance(step_add, BinaryInst) or step_add.opcode != "add":
            return None
        operands = step_add.operands
        if not ((operands[0] is induction and _is_one(operands[1])) or
                (operands[1] is induction and _is_one(operands[0]))):
            return None
        body_blocks = [b for b in loop.blocks if b is not header]
        if len(body_blocks) > 2:
            return None
        bound_block = getattr(bound, "parent", None)
        if bound_block is not None and bound_block in loop.blocks:
            return None  # bound not available at the preheader
        return header, body_blocks, induction, bound

    def _match_body(self, body_blocks, induction, loop):
        """The body must be exactly one store of a zero constant (memset)
        or one load+store pair (memcpy), plus address computation."""
        stores = []
        loads = []
        for block in body_blocks:
            for inst in block.instructions:
                if isinstance(inst, StoreInst):
                    stores.append(inst)
                elif isinstance(inst, LoadInst):
                    loads.append(inst)
                elif isinstance(inst, CallInst):
                    name = getattr(inst.callee, "name", "")
                    if name not in ("__sizeof_vpfloat",
                                    "__sizeof_vpfloat_mpfr"):
                        return None
                elif not isinstance(inst, (GEPInst, BinaryInst, PhiInst,
                                           BranchInst, ICmpInst)) and \
                        inst.opcode not in ("sext", "zext", "trunc"):
                    return None
        if len(stores) != 1:
            return None
        store = stores[0]
        if not self._strided_by_induction(store.pointer, induction):
            return None
        if len(loads) == 0:
            if _is_zero_constant(store.value):
                return ("memset", store, None)
            return None
        if len(loads) == 1 and store.value is loads[0]:
            if self._strided_by_induction(loads[0].pointer, induction):
                return ("memcpy", store, loads[0])
        return None

    def _strided_by_induction(self, pointer: Value, induction) -> bool:
        """pointer must be gep(base, f(i)) with a unit stride in i."""
        if not isinstance(pointer, GEPInst):
            return False
        if len(pointer.indices) != 1:
            # gep [0, i] into a fixed array is also unit-stride.
            if len(pointer.indices) == 2 and \
                    isinstance(pointer.indices[0], ConstantInt) and \
                    pointer.indices[0].value == 0:
                index = pointer.indices[1]
            else:
                return False
        else:
            index = pointer.indices[0]
        return self._is_induction_expr(index, induction)

    def _is_induction_expr(self, index: Value, induction) -> bool:
        if index is induction:
            return True
        if hasattr(index, "opcode") and index.opcode in ("sext", "zext"):
            return self._is_induction_expr(index.operands[0], induction)
        return False

    def _base_pointer(self, pointer: Value) -> Optional[Value]:
        if isinstance(pointer, GEPInst):
            return pointer.pointer
        return None

    def _hoist_base(self, base: Optional[Value], loop: Loop,
                    preheader) -> Optional[Value]:
        """Make the array base available at the preheader.  Loop-invariant
        decay GEPs (e.g. ``gep [N x T]* %A, 0, 0``) are moved out."""
        if base is None:
            return None
        if self._available_outside(base, loop):
            return base
        if isinstance(base, GEPInst) and all(
            self._available_outside(op, loop) for op in base.operands
        ):
            base.parent.instructions.remove(base)
            base.parent = preheader
            terminator = preheader.instructions[-1]
            preheader.instructions.insert(
                preheader.instructions.index(terminator), base)
            return base
        return None

    def _available_outside(self, value: Value, loop: Loop) -> bool:
        block = getattr(value, "parent", None)
        return block is None or block not in loop.blocks

    def _as_i64(self, emit, value: Value) -> Value:
        if value.type == I64:
            return value
        if isinstance(value, ConstantInt):
            return ConstantInt(I64, value.value)
        cast = emit(_sext(value))
        return cast

    def _element_size(self, emit, module, func, element_type) -> Value:
        if isinstance(element_type, VPFloatType) and not element_type.is_static:
            # Dynamically-sized: runtime __sizeof_vpfloat (paper §III-B).
            exp, prec = element_type.exp_attr, element_type.prec_attr
            size = element_type.size_attr or ConstantInt(I32, 0)
            callee = module.get_or_declare(
                "__sizeof_vpfloat", FunctionType(I64, (I32, I32, I32)))
            call = CallInst(callee, [exp, prec, size])
            call.name = func.unique_name("idiom.elemsize")
            emit(call)
            return call
        size = element_type.size_bytes() \
            if not isinstance(element_type, VPFloatType) \
            else element_type.static_geometry()[2]
        return ConstantInt(I64, size)


def _is_one(v: Value) -> bool:
    return isinstance(v, ConstantInt) and v.value == 1


def _is_zero_constant(v: Value) -> bool:
    if isinstance(v, ConstantInt):
        return v.value == 0
    if isinstance(v, ConstantFloat):
        return v.value == 0.0
    if isinstance(v, ConstantVPFloat):
        return v.value.is_zero()
    return False


def _sext(value: Value):
    from ..ir import CastInst

    return CastInst("sext", value, I64)
