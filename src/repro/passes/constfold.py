"""Constant folding + algebraic instruction simplification.

Folds integer/float/vpfloat constant expressions (vpfloat folding uses the
correctly-rounded BigFloat kernels at the type's static precision, so the
compiler's compile-time arithmetic agrees with runtime MPFR results) and
applies identity simplifications (x+0, x*1, x*0 for integers, branches on
constants are left to SimplifyCFG).
"""

from __future__ import annotations

from typing import Optional

from ..bigfloat import BigFloat, RNDN, arith
from ..ir import (
    BinaryInst,
    CastInst,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantVPFloat,
    FCmpInst,
    FNegInst,
    Function,
    ICmpInst,
    Instruction,
    IntType,
    SelectInst,
    Value,
)
from .pass_manager import FunctionPass


class ConstantFoldPass(FunctionPass):
    name = "constfold"

    def run(self, func: Function) -> int:
        changed = 0
        again = True
        while again:
            again = False
            for inst in list(func.instructions()):
                folded = fold_instruction(inst)
                if folded is not None and folded is not inst:
                    inst.replace_all_uses_with(folded)
                    if not inst.users:
                        inst.erase_from_parent()
                    changed += 1
                    again = True
        return changed


def fold_instruction(inst: Instruction) -> Optional[Value]:
    if isinstance(inst, BinaryInst):
        return _fold_binary(inst)
    if isinstance(inst, FNegInst):
        operand = inst.operands[0]
        if isinstance(operand, ConstantFloat):
            return ConstantFloat(operand.type, -operand.value)
        if isinstance(operand, ConstantVPFloat):
            return ConstantVPFloat(operand.type, -operand.value)
        return None
    if isinstance(inst, ICmpInst):
        return _fold_icmp(inst)
    if isinstance(inst, FCmpInst):
        return _fold_fcmp(inst)
    if isinstance(inst, CastInst):
        return _fold_cast(inst)
    if isinstance(inst, SelectInst):
        cond = inst.condition
        if isinstance(cond, ConstantInt):
            return inst.true_value if cond.value else inst.false_value
        return None
    return None


def _fold_binary(inst: BinaryInst) -> Optional[Value]:
    a, b = inst.lhs, inst.rhs
    op = inst.opcode
    # Full constant folding.
    if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
        return _fold_int(op, a, b, inst.type)
    if isinstance(a, ConstantFloat) and isinstance(b, ConstantFloat):
        return _fold_float(op, a, b)
    if isinstance(a, ConstantVPFloat) and isinstance(b, ConstantVPFloat) \
            and inst.type.is_vpfloat and inst.type.is_static:
        prec = inst.type.static_precision
        kernel = {"fadd": arith.add, "fsub": arith.sub,
                  "fmul": arith.mul, "fdiv": arith.div}.get(op)
        if kernel is not None:
            # Literals are stored at maximum configuration (600 bits);
            # the runtime rounds them to the format before operating, so
            # compile-time folding must do the same.
            lhs = _round_to_format(a.value, inst.type)
            rhs = _round_to_format(b.value, inst.type)
            if inst.type.format == "posit":
                # Tapered semantics: exact-ish intermediate, then round
                # to the nearest posit (mirrors the interpreter).
                exact = kernel(lhs, rhs, prec + 8, RNDN)
                return ConstantVPFloat(inst.type,
                                       _round_to_format(exact, inst.type))
            return ConstantVPFloat(
                inst.type, kernel(lhs, rhs, prec, RNDN))
    # Identities.
    if op == "add":
        if _is_int(b, 0):
            return a
        if _is_int(a, 0):
            return b
    elif op == "sub":
        if _is_int(b, 0):
            return a
        if a is b:
            return ConstantInt(inst.type, 0)
    elif op == "mul":
        if _is_int(b, 1):
            return a
        if _is_int(a, 1):
            return b
        if _is_int(a, 0) or _is_int(b, 0):
            return ConstantInt(inst.type, 0)
    elif op in ("sdiv", "udiv"):
        if _is_int(b, 1):
            return a
    elif op in ("and",):
        if _is_int(b, 0) or _is_int(a, 0):
            return ConstantInt(inst.type, 0)
        if a is b:
            return a
    elif op in ("or", "xor"):
        if _is_int(b, 0):
            return a
        if _is_int(a, 0):
            return b
        if op == "xor" and a is b:
            return ConstantInt(inst.type, 0)
        if op == "or" and a is b:
            return a
    elif op in ("shl", "ashr", "lshr"):
        if _is_int(b, 0):
            return a
    elif op == "fadd":
        # FP identities must respect signed zeros: x + 0.0 == x only
        # because (+0) + x = x for finite x; x + (-0.0) == x always.
        if _is_float(b, 0.0) and not _float_is_negzero(b):
            return a
    elif op == "fmul":
        if _is_float(b, 1.0):
            return a
        if _is_float(a, 1.0):
            return b
    elif op == "fdiv":
        if _is_float(b, 1.0):
            return a
    elif op == "fsub":
        if _is_float(b, 0.0) and not _float_is_negzero(b):
            return a
    return None


def _is_int(v: Value, n: int) -> bool:
    return isinstance(v, ConstantInt) and v.value == n


def _is_float(v: Value, x: float) -> bool:
    return isinstance(v, ConstantFloat) and v.value == x


def _float_is_negzero(v: Value) -> bool:
    import math

    return isinstance(v, ConstantFloat) and v.value == 0.0 and \
        math.copysign(1.0, v.value) < 0


def _fold_int(op: str, a: ConstantInt, b: ConstantInt, type) -> Optional[Value]:
    from ..runtime.interpreter import _mask_int, _trunc_div

    x, y = a.value, b.value
    bits = type.bits
    try:
        if op == "add":
            raw = x + y
        elif op == "sub":
            raw = x - y
        elif op == "mul":
            raw = x * y
        elif op == "sdiv":
            raw = _trunc_div(x, y)
        elif op == "srem":
            raw = x - _trunc_div(x, y) * y
        elif op == "udiv":
            raw = (x & ((1 << bits) - 1)) // (y & ((1 << bits) - 1))
        elif op == "urem":
            raw = (x & ((1 << bits) - 1)) % (y & ((1 << bits) - 1))
        elif op == "and":
            raw = x & y
        elif op == "or":
            raw = x | y
        elif op == "xor":
            raw = x ^ y
        elif op == "shl":
            raw = x << (y & (bits - 1))
        elif op == "ashr":
            raw = x >> (y & (bits - 1))
        elif op == "lshr":
            raw = (x & ((1 << bits) - 1)) >> (y & (bits - 1))
        else:
            return None
    except ZeroDivisionError:
        return None  # preserve the trap
    return ConstantInt(type, _mask_int(raw, bits))


def _fold_float(op: str, a: ConstantFloat, b: ConstantFloat) -> Optional[Value]:
    import math

    x, y = a.value, b.value
    if op == "fadd":
        result = x + y
    elif op == "fsub":
        result = x - y
    elif op == "fmul":
        result = x * y
    elif op == "fdiv":
        if y == 0.0:
            result = math.nan if x == 0.0 else math.copysign(math.inf, x) \
                * math.copysign(1.0, y)
        else:
            result = x / y
    elif op == "frem":
        if y == 0.0:
            result = math.nan
        else:
            result = math.fmod(x, y)
    else:
        return None
    if a.type.bits == 32:
        from ..runtime.interpreter import _f32

        result = _f32(result)
    return ConstantFloat(a.type, result)


def _fold_icmp(inst: ICmpInst) -> Optional[Value]:
    from ..ir import I1

    a, b = inst.operands
    if not (isinstance(a, ConstantInt) and isinstance(b, ConstantInt)):
        if a is b and inst.predicate in ("eq", "sle", "sge", "ule", "uge"):
            return ConstantInt(I1, 1)
        if a is b and inst.predicate in ("ne", "slt", "sgt", "ult", "ugt"):
            return ConstantInt(I1, 0)
        return None
    bits = a.type.bits
    ua, ub = a.value & ((1 << bits) - 1), b.value & ((1 << bits) - 1)
    table = {
        "eq": a.value == b.value, "ne": a.value != b.value,
        "slt": a.value < b.value, "sle": a.value <= b.value,
        "sgt": a.value > b.value, "sge": a.value >= b.value,
        "ult": ua < ub, "ule": ua <= ub, "ugt": ua > ub, "uge": ua >= ub,
    }
    return ConstantInt(I1, int(table[inst.predicate]))


def _fold_fcmp(inst: FCmpInst) -> Optional[Value]:
    import math

    from ..ir import I1

    a, b = inst.operands
    values = []
    for v in (a, b):
        if isinstance(v, ConstantFloat):
            values.append(v.value)
        elif isinstance(v, ConstantVPFloat):
            values.append(v.value)
        else:
            return None
    x, y = values
    if isinstance(x, BigFloat) or isinstance(y, BigFloat):
        x = x if isinstance(x, BigFloat) else BigFloat.from_float(x, 64)
        y = y if isinstance(y, BigFloat) else BigFloat.from_float(y, 64)
        unordered = x.is_nan() or y.is_nan()
        cmp = 0 if unordered else x.compare(y)
    else:
        unordered = math.isnan(x) or math.isnan(y)
        cmp = 0 if unordered else (-1 if x < y else (1 if x > y else 0))
    pred = inst.predicate
    if pred == "ord":
        return ConstantInt(I1, int(not unordered))
    if pred == "uno":
        return ConstantInt(I1, int(unordered))
    base = {"oeq": cmp == 0, "one": cmp != 0, "olt": cmp < 0, "ole": cmp <= 0,
            "ogt": cmp > 0, "oge": cmp >= 0, "ueq": cmp == 0,
            "une": cmp != 0}[pred]
    if pred.startswith("o"):
        return ConstantInt(I1, int(base and not unordered))
    return ConstantInt(I1, int(base or unordered))


def _round_to_format(value: BigFloat, vptype) -> BigFloat:
    """Compile-time rounding must agree with runtime format semantics."""
    if vptype.format == "mpfr":
        return value.round_to(vptype.static_precision)
    if vptype.format == "unum":
        from ..unum import UnumConfig, decode, encode
        from ..ir.values import ConstantInt

        size = vptype.size_attr.value if vptype.size_attr is not None else None
        config = UnumConfig(vptype.exp_attr.value, vptype.prec_attr.value,
                            size)
        return decode(encode(value, config), config)
    from ..unum.posit import PositConfig, posit_round

    config = PositConfig(vptype.exp_attr.value, vptype.prec_attr.value)
    return posit_round(value, config)


def _fold_cast(inst: CastInst) -> Optional[Value]:
    source = inst.source
    target = inst.type
    if isinstance(source, ConstantInt):
        if inst.opcode in ("sext", "trunc", "bitcast") and target.is_integer:
            from ..runtime.interpreter import _mask_int

            return ConstantInt(target, _mask_int(source.value, target.bits))
        if inst.opcode == "zext" and target.is_integer:
            bits = source.type.bits
            return ConstantInt(target, source.value & ((1 << bits) - 1))
        if inst.opcode in ("sitofp", "uitofp"):
            if target.is_float:
                return ConstantFloat(target, float(source.value))
            if target.is_vpfloat and target.is_static:
                return ConstantVPFloat(
                    target,
                    _round_to_format(
                        BigFloat.from_int(source.value,
                                          max(64, target.static_precision)),
                        target))
    if isinstance(source, ConstantFloat):
        if inst.opcode in ("fpext", "fptrunc") and target.is_float:
            value = source.value
            if target.bits == 32:
                from ..runtime.interpreter import _f32

                value = _f32(value)
            return ConstantFloat(target, value)
        if inst.opcode == "vpconv" and target.is_vpfloat and target.is_static:
            return ConstantVPFloat(
                target,
                _round_to_format(BigFloat.from_float(source.value, 64),
                                 target))
    if isinstance(source, ConstantVPFloat) and inst.opcode == "vpconv":
        if target.is_vpfloat and target.is_static:
            return ConstantVPFloat(
                target, _round_to_format(source.value, target))
        if target.is_float:
            if not source.type.is_static:
                return None  # representable set unknown at compile time
            # The stored literal may carry more bits than the source type
            # can represent: round to the format first (the runtime does).
            value = _round_to_format(source.value, source.type).to_float()
            if target.bits == 32:
                from ..runtime.interpreter import _f32

                value = _f32(value)
            return ConstantFloat(target, value)
    return None
