"""Inline expansion, extended for dynamically-sized vpfloat types.

Standard bottom-up inlining with the paper's §III-B extension: values
whose types are vpfloat with attributes bound to *callee arguments* have
their types **mutated** during cloning so they reference the caller-side
actual values instead ("Values with dynamically-sized types have their
types changed (or mutated) in order to comply to the current function
where they are being used").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import (
    AllocaInst,
    Argument,
    BasicBlock,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    Constant,
    FCmpInst,
    FNegInst,
    Function,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    Module,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UndefValue,
    UnreachableInst,
    Value,
    VPFloatType,
)
from .pass_manager import ModulePass

#: Don't inline callees bigger than this many instructions.
DEFAULT_THRESHOLD = 80


class InliningPass(ModulePass):
    name = "inline"

    def __init__(self, threshold: int = DEFAULT_THRESHOLD):
        self.threshold = threshold

    def run_module(self, module: Module) -> int:
        inlined = 0
        progress = True
        rounds = 0
        while progress and rounds < 4:
            progress = False
            rounds += 1
            for func in list(module.functions.values()):
                if func.is_declaration:
                    continue
                for inst in list(func.instructions()):
                    if not isinstance(inst, CallInst):
                        continue
                    callee = inst.callee
                    if not isinstance(callee, Function) or \
                            callee.is_declaration:
                        continue
                    if not self._should_inline(func, callee):
                        continue
                    if inline_call_site(inst):
                        inlined += 1
                        progress = True
                        break  # block list changed; rescan the function
        return inlined

    def _should_inline(self, caller: Function, callee: Function) -> bool:
        if callee is caller:
            return False  # no recursive inlining
        if "noinline" in callee.attributes:
            return False
        if "alwaysinline" in callee.attributes:
            return True
        size = sum(len(b.instructions) for b in callee.blocks)
        return size <= self.threshold


def inline_call_site(call: CallInst) -> bool:
    """Expand one call; returns False when the site cannot be inlined."""
    caller = call.function
    callee = call.callee
    module = caller.parent
    if any(isinstance(i, UnreachableInst)
           for i in callee.instructions()):
        pass  # fine: clones carry over

    # --- Split the block containing the call. ---------------------- #
    block = call.parent
    index = block.instructions.index(call)
    continuation = caller.add_block(f"{callee.name}.cont", after=block)
    moved = block.instructions[index + 1:]
    del block.instructions[index + 1:]
    for inst in moved:
        inst.parent = continuation
        continuation.instructions.append(inst)
    # Successor phis must now see the continuation as predecessor.
    for succ in continuation.successors():
        for phi in succ.phis():
            phi.replace_incoming_block(block, continuation)

    # --- Clone callee blocks. --------------------------------------- #
    value_map: Dict[int, Value] = {}
    for arg, actual in zip(callee.args, call.args):
        value_map[id(arg)] = actual
    block_map: Dict[BasicBlock, BasicBlock] = {}
    for callee_block in callee.blocks:
        clone = caller.add_block(f"{callee.name}.{callee_block.name}",
                                 after=continuation)
        block_map[callee_block] = clone

    type_cache: Dict[int, VPFloatType] = {}

    def map_type(type):
        """Mutate vpfloat types whose attributes reference callee values
        (the paper's dynamically-sized-type inlining extension)."""
        if isinstance(type, VPFloatType):
            cached = type_cache.get(id(type))
            if cached is not None:
                return cached
            attrs = [type.exp_attr, type.prec_attr, type.size_attr]
            mapped = [
                value_map.get(id(a), a) if a is not None else None
                for a in attrs
            ]
            if all(m is a for m, a in zip(mapped, attrs)):
                return type
            mutated = VPFloatType(type.format, mapped[0], mapped[1],
                                  mapped[2])
            module.register_vpfloat_type(mutated)
            type_cache[id(type)] = mutated
            return mutated
        from ..ir import ArrayType, PointerType

        if isinstance(type, PointerType):
            inner = map_type(type.pointee)
            return type if inner is type.pointee else PointerType(inner)
        if isinstance(type, ArrayType):
            inner = map_type(type.element)
            return type if inner is type.element else ArrayType(inner,
                                                                type.count)
        return type

    def mapped(value: Value) -> Value:
        if isinstance(value, Constant):
            if isinstance(value.type, VPFloatType):
                new_type = map_type(value.type)
                if new_type is not value.type:
                    from ..ir import ConstantVPFloat

                    return ConstantVPFloat(new_type, value.value)
            return value
        return value_map.get(id(value), value)

    return_sites: List[tuple] = []
    for callee_block in callee.blocks:
        clone_block = block_map[callee_block]
        for inst in callee_block.instructions:
            if isinstance(inst, RetInst):
                # Value mapping deferred: the def may be cloned later.
                return_sites.append((clone_block, inst.value))
                clone = BranchInst([continuation])
                clone.parent = clone_block
                clone_block.instructions.append(clone)
                continue
            clone = _clone_instruction(inst, mapped, map_type, block_map,
                                       caller)
            clone.parent = clone_block
            clone_block.instructions.append(clone)
            value_map[id(inst)] = clone

    # Second pass: fix phi incoming blocks/values (they may reference
    # later blocks or values).
    for callee_block in callee.blocks:
        for inst, clone in zip(callee_block.instructions,
                               block_map[callee_block].instructions):
            if isinstance(inst, PhiInst) and isinstance(clone, PhiInst):
                for value, pred in inst.incoming:
                    clone.add_incoming(mapped(value), block_map[pred])

    # --- Wire the call block to the cloned entry. ------------------- #
    entry_clone = block_map[callee.entry]
    branch = BranchInst([entry_clone])
    branch.parent = block
    block.instructions.remove(call)
    block.instructions.append(branch)

    # --- Return value. ---------------------------------------------- #
    return_sites = [(site_block, mapped(value) if value is not None else None)
                    for site_block, value in return_sites]
    if call.users:
        if len(return_sites) == 1:
            result: Optional[Value] = return_sites[0][1]
        elif return_sites:
            phi = PhiInst(map_type(call.type))
            phi.name = caller.unique_name(f"{callee.name}.ret")
            phi.parent = continuation
            continuation.instructions.insert(0, phi)
            for site_block, value in return_sites:
                phi.add_incoming(
                    value if value is not None else UndefValue(call.type),
                    site_block)
            result = phi
        else:
            result = UndefValue(call.type)
        if result is None:
            result = UndefValue(call.type)
        call.replace_all_uses_with(result)
    call.drop_all_references()

    # Hoist the clone's static allocas into the caller entry so repeated
    # execution (call inside a loop) does not grow the frame.
    entry = caller.entry
    for clone_block in block_map.values():
        for inst in list(clone_block.instructions):
            if isinstance(inst, AllocaInst) and inst.count is None and \
                    clone_block is not entry:
                clone_block.instructions.remove(inst)
                inst.parent = entry
                entry.instructions.insert(0, inst)
    return True


def _clone_instruction(inst: Instruction, mapped, map_type, block_map,
                       caller: Function) -> Instruction:
    name = caller.unique_name(inst.name or inst.opcode)
    if isinstance(inst, BinaryInst):
        clone = BinaryInst(inst.opcode, mapped(inst.lhs), mapped(inst.rhs))
    elif isinstance(inst, FNegInst):
        clone = FNegInst(mapped(inst.operands[0]))
    elif isinstance(inst, ICmpInst):
        clone = ICmpInst(inst.predicate, mapped(inst.operands[0]),
                         mapped(inst.operands[1]))
    elif isinstance(inst, FCmpInst):
        clone = FCmpInst(inst.predicate, mapped(inst.operands[0]),
                         mapped(inst.operands[1]))
    elif isinstance(inst, CastInst):
        clone = CastInst(inst.opcode, mapped(inst.source),
                         map_type(inst.type))
    elif isinstance(inst, LoadInst):
        clone = LoadInst(mapped(inst.pointer))
    elif isinstance(inst, StoreInst):
        clone = StoreInst(mapped(inst.value), mapped(inst.pointer))
    elif isinstance(inst, AllocaInst):
        clone = AllocaInst(map_type(inst.allocated_type),
                           mapped(inst.count) if inst.count else None)
    elif isinstance(inst, GEPInst):
        clone = GEPInst(mapped(inst.pointer),
                        [mapped(i) for i in inst.indices])
    elif isinstance(inst, SelectInst):
        clone = SelectInst(mapped(inst.condition), mapped(inst.true_value),
                           mapped(inst.false_value))
    elif isinstance(inst, PhiInst):
        clone = PhiInst(map_type(inst.type))  # incoming filled later
    elif isinstance(inst, CallInst):
        clone = CallInst(inst.callee, [mapped(a) for a in inst.operands],
                         result_type=map_type(inst.type))
    elif isinstance(inst, BranchInst):
        clone = BranchInst([block_map[t] for t in inst.targets],
                           mapped(inst.condition)
                           if inst.is_conditional else None)
    elif isinstance(inst, RetInst):
        clone = RetInst(mapped(inst.value) if inst.value else None)
    elif isinstance(inst, UnreachableInst):
        clone = UnreachableInst()
    else:
        raise TypeError(f"cannot clone {inst.opcode}")
    clone.name = name
    return clone
