"""Dead code elimination, aware of the vpfloat attribute registry.

An instruction is removable when it has no users and no side effects.
Per the paper's §III-B design, a Value serving as a vpfloat type attribute
must NOT be deleted even when its def-use list is empty -- it is pinned by
the module's attribute registry (surfaced in IR as the
``vpfloat.attr.keepalive`` intrinsic).  This pass honors both: the
registry check, and treating keepalive calls as having side effects.
"""

from __future__ import annotations

from ..ir import (
    AllocaInst,
    BinaryInst,
    CallInst,
    CastInst,
    FCmpInst,
    FNegInst,
    Function,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
)
from .pass_manager import FunctionPass

#: Runtime functions with no observable side effects when unused.  Note
#: ``__sizeof_vpfloat*`` is NOT here: it performs the runtime attribute
#: validation the paper chose for correctness (§III-A5), and deleting it
#: would silently skip the check.
PURE_FUNCTIONS = frozenset({
    "mpfr_get_d", "mpfr_get_si", "mpfr_cmp", "mpfr_cmp_d",
})

SIDE_EFFECT_FREE = (BinaryInst, CastInst, ICmpInst, FCmpInst, FNegInst,
                    GEPInst, SelectInst, PhiInst, LoadInst, AllocaInst)


def is_trivially_dead(inst: Instruction, registry=None) -> bool:
    if inst.users:
        return False
    if registry is not None and registry.is_attribute(inst):
        return False  # pinned: parameterizes a live vpfloat type
    if isinstance(inst, CallInst):
        name = getattr(inst.callee, "name", "")
        return name in PURE_FUNCTIONS
    if isinstance(inst, AllocaInst):
        # An alloca with no users is dead even though it "allocates".
        return True
    return isinstance(inst, SIDE_EFFECT_FREE)


class DeadCodeEliminationPass(FunctionPass):
    name = "dce"

    def run(self, func: Function) -> int:
        registry = func.vpfloat_attributes
        removed = 0
        changed = True
        while changed:
            changed = False
            for block in func.blocks:
                for inst in reversed(list(block.instructions)):
                    if inst.is_terminator:
                        continue
                    if is_trivially_dead(inst, registry):
                        inst.erase_from_parent()
                        removed += 1
                        changed = True
        return removed
