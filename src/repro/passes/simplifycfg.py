"""CFG simplification: constant branches, block merging, unreachable code."""

from __future__ import annotations

from ..ir import (
    BranchInst,
    ConstantInt,
    Function,
    PhiInst,
    reverse_postorder,
)
from .pass_manager import FunctionPass


class SimplifyCFGPass(FunctionPass):
    name = "simplifycfg"

    def run(self, func: Function) -> int:
        changed = 0
        progress = True
        while progress:
            progress = False
            progress |= self._fold_constant_branches(func)
            progress |= self._remove_unreachable(func)
            progress |= self._merge_straightline(func)
            progress |= self._simplify_trivial_phis(func)
            if progress:
                changed += 1
        return changed

    # -------------------------------------------------------------- #

    def _fold_constant_branches(self, func: Function) -> bool:
        changed = False
        for block in func.blocks:
            term = block.terminator
            if not isinstance(term, BranchInst) or not term.is_conditional:
                continue
            cond = term.condition
            if isinstance(cond, ConstantInt):
                taken = term.targets[0] if cond.value else term.targets[1]
                dead = term.targets[1] if cond.value else term.targets[0]
                if dead is not taken:
                    for phi in dead.phis():
                        phi.remove_incoming(block)
                new_branch = BranchInst([taken])
                block.instructions.remove(term)
                term.drop_all_references()
                new_branch.parent = block
                block.instructions.append(new_branch)
                changed = True
            elif term.targets[0] is term.targets[1]:
                target = term.targets[0]
                new_branch = BranchInst([target])
                block.instructions.remove(term)
                term.drop_all_references()
                new_branch.parent = block
                block.instructions.append(new_branch)
                changed = True
        return changed

    def _remove_unreachable(self, func: Function) -> bool:
        reachable = set(reverse_postorder(func))
        doomed = [b for b in func.blocks if b not in reachable]
        if not doomed:
            return False
        for block in doomed:
            for succ in block.successors():
                if succ in reachable:
                    for phi in succ.phis():
                        try:
                            phi.remove_incoming(block)
                        except KeyError:
                            pass
            for inst in reversed(list(block.instructions)):
                inst.replace_all_uses_with(_undef_like(inst))
                inst.drop_all_references()
            block.instructions.clear()
        for block in doomed:
            func.remove_block(block)
        return True

    def _merge_straightline(self, func: Function) -> bool:
        """Merge B into A when A's only successor is B and B's only
        predecessor is A."""
        changed = False
        for block in list(func.blocks):
            term = block.terminator
            if not isinstance(term, BranchInst) or term.is_conditional:
                continue
            succ = term.targets[0]
            if succ is block or succ is func.entry:
                continue
            preds = succ.predecessors()
            if len(preds) != 1 or preds[0] is not block:
                continue
            if succ.phis():
                # Single predecessor: phis are trivial, resolve them first.
                for phi in list(succ.phis()):
                    phi.replace_all_uses_with(phi.incoming_for_block(block))
                    phi.drop_all_references()
                    succ.instructions.remove(phi)
            block.instructions.remove(term)
            term.drop_all_references()
            for inst in succ.instructions:
                inst.parent = block
                block.instructions.append(inst)
            succ.instructions.clear()
            # Phis in the successors of the merged block must be retargeted.
            for next_block in block.successors():
                for phi in next_block.phis():
                    phi.replace_incoming_block(succ, block)
            func.remove_block(succ)
            changed = True
        return changed

    def _simplify_trivial_phis(self, func: Function) -> bool:
        changed = False
        for block in func.blocks:
            for phi in list(block.phis()):
                values = set()
                for value, _ in phi.incoming:
                    if value is not phi:
                        values.add(id(value))
                if len(values) == 1:
                    only = next(v for v, _ in phi.incoming if v is not phi)
                    phi.replace_all_uses_with(only)
                    phi.drop_all_references()
                    block.instructions.remove(phi)
                    changed = True
        return changed


def _undef_like(inst):
    from ..ir import UndefValue, VOID

    if inst.type == VOID:
        return UndefValue(inst.type)
    return UndefValue(inst.type)
