"""FMA contraction: ``a*b + c`` -> a single fused multiply-add.

The paper's MPFR API surface includes the fused operations (``mpfr_fma``,
``mpfr_fms``), and the UNUM coprocessor has a ``gfma`` instruction; this
pass contracts a multiply whose single use is an add/sub of the same
vpfloat (or IEEE) type into a ``vp.fma``/``vp.fms`` call the backends map
onto those primitives.

Contraction performs ONE rounding instead of two, so results can differ
from the unfused expression by up to half an ulp -- exactly C's
``FP_CONTRACT`` semantics.  It is therefore **off by default** and
enabled with ``CompilerDriver(contract_fma=True)``; every backend and the
interpreter implement the fused op with identical single-rounding
semantics, so cross-backend bit-identity is preserved either way.
"""

from __future__ import annotations

from ..ir import (
    BinaryInst,
    CallInst,
    F64,
    Function,
    FunctionType,
)
from .pass_manager import FunctionPass


class FMAContractionPass(FunctionPass):
    name = "fma-contract"

    def run(self, func: Function) -> int:
        module = func.parent
        contracted = 0
        for block in func.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, BinaryInst):
                    continue
                if inst.opcode not in ("fadd", "fsub"):
                    continue
                if not inst.type.is_fp:
                    continue
                fused = self._contract(module, block, inst)
                if fused:
                    contracted += 1
        return contracted

    def _contract(self, module, block, inst: BinaryInst) -> bool:
        lhs, rhs = inst.lhs, inst.rhs

        def is_candidate(value):
            return (isinstance(value, BinaryInst)
                    and value.opcode == "fmul"
                    and value.type == inst.type
                    and len(value.users) == 1
                    and value.parent is block)

        if inst.opcode == "fadd":
            # (a*b) + c  or  c + (a*b)  ->  fma(a, b, c)
            if is_candidate(lhs):
                mul, addend = lhs, rhs
            elif is_candidate(rhs):
                mul, addend = rhs, lhs
            else:
                return False
            name = "vp.fma"
        else:
            # (a*b) - c -> fms(a, b, c); c - (a*b) is NOT contractible to
            # either primitive without an extra negation, skip it.
            if not is_candidate(lhs):
                return False
            mul, addend = lhs, rhs
            name = "vp.fms"

        callee = module.get_or_declare(
            name, FunctionType(F64, (F64, F64, F64)))
        call = CallInst(callee, [mul.lhs, mul.rhs, addend],
                        result_type=inst.type)
        call.name = block.parent.unique_name("fma")
        block.insert_before(inst, call)
        inst.replace_all_uses_with(call)
        inst.erase_from_parent()
        mul.erase_from_parent()
        return True
