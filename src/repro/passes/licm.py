"""Loop-invariant code motion.

Hoists side-effect-free instructions whose operands are loop-invariant
into the preheader.  Loads are hoisted only when the loop contains no
stores or clobbering calls (conservative alias model).  vpfloat arithmetic
hoists exactly like IEEE arithmetic -- after the MPFR backend runs, each
hoisted op is an entire library call saved per iteration, a significant
part of the paper's Fig. 1 advantage.
"""

from __future__ import annotations

from typing import Set

from ..ir import (
    BasicBlock,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    Constant,
    FCmpInst,
    FNegInst,
    Function,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    Loop,
    LoopInfo,
    SelectInst,
    StoreInst,
    Value,
    VPFloatType,
)
from .pass_manager import FunctionPass

_HOISTABLE = (BinaryInst, CastInst, ICmpInst, FCmpInst, FNegInst, GEPInst,
              SelectInst)


class LICMPass(FunctionPass):
    name = "licm"

    def run(self, func: Function) -> int:
        loopinfo = LoopInfo(func)
        hoisted = 0
        # Innermost-out so invariants can cascade outward.
        for loop in sorted(loopinfo.loops, key=lambda l: -l.depth):
            hoisted += self._hoist_loop(func, loop)
        return hoisted

    def _hoist_loop(self, func: Function, loop: Loop) -> int:
        preheader = self._ensure_preheader(func, loop)
        if preheader is None:
            return 0
        defined_in_loop: Set[int] = set()
        for block in loop.blocks:
            for inst in block.instructions:
                defined_in_loop.add(id(inst))
        loop_has_stores = any(
            isinstance(i, StoreInst) or
            (isinstance(i, CallInst) and self._call_clobbers(i))
            for block in loop.blocks for i in block.instructions
        )

        def invariant(value: Value) -> bool:
            return id(value) not in defined_in_loop

        hoisted = 0
        changed = True
        while changed:
            changed = False
            for block in list(loop.blocks):
                for inst in list(block.instructions):
                    if not self._can_hoist(inst, loop_has_stores):
                        continue
                    if not all(invariant(op) for op in inst.operands):
                        continue
                    # Dependent vpfloat types reference attribute Values
                    # outside the def-use graph (paper §III-B); an
                    # instruction whose type depends on a loop-defined
                    # attribute is NOT invariant even if its operands are.
                    if not all(invariant(a) for a in self._type_attrs(inst)):
                        continue
                    block.instructions.remove(inst)
                    terminator = preheader.instructions[-1]
                    preheader.instructions.insert(
                        preheader.instructions.index(terminator), inst)
                    inst.parent = preheader
                    defined_in_loop.discard(id(inst))
                    hoisted += 1
                    changed = True
        return hoisted

    def _type_attrs(self, inst: Instruction):
        """Attribute Values referenced by the instruction's result type or
        any operand's type (constants carry dependent types too)."""
        seen = []
        for ty in [inst.type] + [op.type for op in inst.operands]:
            # Unwrap pointers/arrays down to a possible vpfloat element.
            while True:
                pointee = getattr(ty, "pointee", None)
                if pointee is None:
                    pointee = getattr(ty, "element", None)
                if pointee is None:
                    break
                ty = pointee
            if isinstance(ty, VPFloatType):
                for attr in (ty.exp_attr, ty.prec_attr, ty.size_attr):
                    if isinstance(attr, Instruction):
                        seen.append(attr)
        return seen

    def _can_hoist(self, inst: Instruction, loop_has_stores: bool) -> bool:
        if isinstance(inst, LoadInst):
            return not loop_has_stores
        if isinstance(inst, _HOISTABLE):
            # Division can trap only for integers; FP division is safe to
            # speculate (IEEE semantics produce inf/nan).
            if isinstance(inst, BinaryInst) and inst.opcode in (
                "sdiv", "srem", "udiv", "urem"
            ):
                return isinstance(inst.rhs, Constant) and \
                    getattr(inst.rhs, "value", 0) != 0
            return True
        if isinstance(inst, CallInst):
            name = getattr(inst.callee, "name", "")
            # __sizeof_vpfloat is idempotent for identical attributes:
            # hoisting it out of the gemm_unum inner loop is exactly the
            # improvement the paper describes for Listing 2.
            return name in ("__sizeof_vpfloat", "__sizeof_vpfloat_mpfr")
        return False

    def _call_clobbers(self, inst: CallInst) -> bool:
        name = getattr(inst.callee, "name", "")
        return name not in (
            "vpfloat.attr.keepalive", "__vpfloat_check_attr",
            "__sizeof_vpfloat", "__sizeof_vpfloat_mpfr",
        )

    def _ensure_preheader(self, func: Function, loop: Loop):
        preheader = loop.preheader()
        if preheader is not None:
            return preheader
        # Create one: split the header's out-of-loop edges.
        outside = [p for p in loop.header.predecessors()
                   if p not in loop.blocks]
        if not outside:
            return None
        preheader = func.add_block("preheader")
        new_branch = BranchInst([loop.header])
        new_branch.parent = preheader
        preheader.instructions.append(new_branch)
        for pred in outside:
            pred.terminator.replace_target(loop.header, preheader)
        for phi in loop.header.phis():
            incoming_outside = [(v, b) for v, b in phi.incoming
                                if b in outside]
            if not incoming_outside:
                continue
            if len(incoming_outside) == 1:
                value, old_block = incoming_outside[0]
                phi.replace_incoming_block(old_block, preheader)
            else:
                from ..ir import PhiInst

                merge_phi = PhiInst(phi.type)
                merge_phi.name = func.unique_name("ph.merge")
                merge_phi.parent = preheader
                preheader.instructions.insert(0, merge_phi)
                for value, old_block in incoming_outside:
                    merge_phi.add_incoming(value, old_block)
                    phi.remove_incoming(old_block)
                phi.add_incoming(merge_phi, preheader)
        # Keep block order roughly topological for readability.
        func.blocks.remove(preheader)
        func.blocks.insert(func.blocks.index(loop.header), preheader)
        return preheader
