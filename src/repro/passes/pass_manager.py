"""Pass management: ordering, statistics, the -O3 pipeline.

The pipeline mirrors the paper's setup: all mid-level passes run on IR
where vpfloat values are first-class scalars, and the backend lowerings
(:mod:`repro.backends`) run *after* the main optimizations ("at a late
stage of the middle-end", §III-C1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..ir import Function, Module, verify_module
from ..observability import CAT_PASS, current_tracer


@dataclass
class PassStatistics:
    """What each pass changed (and how long it took), by pass name."""

    changes: Dict[str, int] = field(default_factory=dict)
    #: Wall-clock seconds per pass, in pipeline order.
    timings: Dict[str, float] = field(default_factory=dict)

    def record(self, name: str, changed: int) -> None:
        self.changes[name] = self.changes.get(name, 0) + int(changed)

    def record_time(self, name: str, seconds: float) -> None:
        self.timings[name] = self.timings.get(name, 0.0) + seconds


class FunctionPass:
    """Base class: transform one function, return #changes (0 = no-op)."""

    name = "<pass>"

    def run(self, func: Function) -> int:  # pragma: no cover - interface
        raise NotImplementedError


class ModulePass:
    """Base class for whole-module transforms (inlining, lowering)."""

    name = "<module-pass>"

    def run_module(self, module: Module) -> int:  # pragma: no cover
        raise NotImplementedError


class PassManager:
    def __init__(self, verify_each: bool = False):
        self.passes: List[object] = []
        self.stats = PassStatistics()
        self.verify_each = verify_each

    def add(self, pass_: object) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Module) -> PassStatistics:
        tracer = current_tracer()
        for pass_ in self.passes:
            span = tracer.span(f"pass:{pass_.name}", cat=CAT_PASS) \
                if tracer is not None else None
            started = time.perf_counter()
            changed_total = 0
            if isinstance(pass_, ModulePass):
                changed = pass_.run_module(module)
                changed_total += int(changed)
                self.stats.record(pass_.name, changed)
            else:
                for func in list(module.functions.values()):
                    if func.is_declaration:
                        continue
                    changed = pass_.run(func)
                    changed_total += int(changed)
                    self.stats.record(pass_.name, changed)
            self.stats.record_time(pass_.name, time.perf_counter() - started)
            if span is not None:
                span.args["changes"] = changed_total
                tracer.finish(span)
            if self.verify_each:
                verify_module(module)
        return self.stats


def build_o3_pipeline(enable_loop_idiom: bool = True,
                      enable_inlining: bool = True,
                      enable_unroll: bool = True,
                      contract_fma: bool = False,
                      verify_each: bool = False) -> PassManager:
    """The default -O3 middle-end pipeline (paper §IV: -O3)."""
    from .constfold import ConstantFoldPass
    from .dce import DeadCodeEliminationPass
    from .fma import FMAContractionPass
    from .gvn import GVNPass
    from .inline import InliningPass
    from .licm import LICMPass
    from .loop_idiom import LoopIdiomPass
    from .loop_unroll import LoopUnrollPass
    from .mem2reg import Mem2RegPass
    from .simplifycfg import SimplifyCFGPass

    pm = PassManager(verify_each=verify_each)
    if enable_inlining:
        pm.add(InliningPass())
    pm.add(Mem2RegPass())
    pm.add(ConstantFoldPass())
    pm.add(SimplifyCFGPass())  # merge blocks so loop passes see small loops
    pm.add(GVNPass())
    pm.add(LICMPass())
    if enable_loop_idiom:
        pm.add(LoopIdiomPass())
    if enable_unroll:
        pm.add(LoopUnrollPass())
    pm.add(ConstantFoldPass())
    pm.add(GVNPass())
    if contract_fma:
        pm.add(FMAContractionPass())
    pm.add(DeadCodeEliminationPass())
    pm.add(SimplifyCFGPass())
    pm.add(DeadCodeEliminationPass())
    return pm
