"""Mid-level optimization passes (the -O3 pipeline stand-in).

All passes operate on IR where vpfloat values are first-class scalars;
:func:`build_o3_pipeline` assembles the default pipeline the evaluation
uses, and the Polly-lite loop nest optimizer lives in
:mod:`repro.passes.polly`.
"""

from .constfold import ConstantFoldPass, fold_instruction
from .dce import DeadCodeEliminationPass, is_trivially_dead
from .fma import FMAContractionPass
from .gvn import GVNPass
from .inline import InliningPass, inline_call_site
from .licm import LICMPass
from .loop_idiom import LoopIdiomPass
from .loop_unroll import LoopUnrollPass
from .mem2reg import Mem2RegPass, promotable_allocas
from .pass_manager import (
    FunctionPass,
    ModulePass,
    PassManager,
    PassStatistics,
    build_o3_pipeline,
)
from .simplifycfg import SimplifyCFGPass

__all__ = [
    "PassManager", "PassStatistics", "FunctionPass", "ModulePass",
    "build_o3_pipeline",
    "Mem2RegPass", "promotable_allocas",
    "ConstantFoldPass", "fold_instruction",
    "DeadCodeEliminationPass", "is_trivially_dead",
    "GVNPass", "LICMPass", "SimplifyCFGPass", "FMAContractionPass",
    "LoopIdiomPass", "LoopUnrollPass",
    "InliningPass", "inline_call_site",
]
