"""Global value numbering / dominator-scoped CSE.

Because vpfloat operations are plain ``fadd``/``fmul`` SSA instructions
(paper §III-B), redundant variable-precision computations CSE exactly like
doubles -- one of the concrete wins over Boost's opaque library calls.
Loads are value-numbered too, invalidated at stores and calls (a simple
memory generation counter per block walk).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir import (
    BinaryInst,
    CallInst,
    CastInst,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantVPFloat,
    DominatorTree,
    FCmpInst,
    FNegInst,
    Function,
    GEPInst,
    ICmpInst,
    LoadInst,
    SelectInst,
    StoreInst,
)
from .pass_manager import FunctionPass

_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})


def _value_key(v) -> object:
    if isinstance(v, ConstantInt):
        return ("ci", v.type.bits, v.value)
    if isinstance(v, ConstantFloat):
        return ("cf", v.type.bits, v.value)
    if isinstance(v, ConstantVPFloat):
        return ("cvp", id(v.type), str(v.value))
    return ("v", id(v))


class GVNPass(FunctionPass):
    name = "gvn"

    def run(self, func: Function) -> int:
        domtree = DominatorTree(func)
        self.removed = 0
        # Erased instructions are pinned for the duration of the run so
        # Python cannot recycle their id()s into stale value-number keys.
        self._pinned = []

        def walk(block, table: Dict[Tuple, object], memory_gen: int):
            table = dict(table)
            for inst in list(block.instructions):
                key = self._key(inst, memory_gen)
                if isinstance(inst, (StoreInst, CallInst)):
                    if self._clobbers_memory(inst):
                        memory_gen += 1
                if key is None:
                    continue
                existing = table.get(key)
                if existing is not None:
                    inst.replace_all_uses_with(existing)
                    if not inst.users:
                        inst.erase_from_parent()
                        self._pinned.append(inst)
                        self.removed += 1
                    continue
                table[key] = inst
            for child in domtree.children.get(block, ()):
                # Memory state is control-dependent: only pass load
                # numbers down when the child has a single predecessor
                # (otherwise merges could see stale values).
                preds = child.predecessors()
                if len(preds) == 1:
                    walk(child, table, memory_gen)
                else:
                    pruned = {k: v for k, v in table.items()
                              if k and k[0] != "load"}
                    walk(child, pruned, memory_gen)

        if func.blocks:
            walk(func.entry, {}, 0)
        return self.removed

    def _clobbers_memory(self, inst) -> bool:
        if isinstance(inst, StoreInst):
            return True
        if isinstance(inst, CallInst):
            name = getattr(inst.callee, "name", "")
            # Marker intrinsics and checks never write user memory.
            return name not in (
                "vpfloat.attr.keepalive", "__vpfloat_check_attr",
                "__sizeof_vpfloat", "__sizeof_vpfloat_mpfr",
            )
        return False

    def _key(self, inst, memory_gen: int):
        if isinstance(inst, BinaryInst):
            a = _value_key(inst.lhs)
            b = _value_key(inst.rhs)
            if inst.opcode in _COMMUTATIVE and repr(b) < repr(a):
                a, b = b, a
            return ("bin", inst.opcode, _type_key(inst.type), a, b)
        if isinstance(inst, FNegInst):
            return ("fneg", _type_key(inst.type),
                    _value_key(inst.operands[0]))
        if isinstance(inst, ICmpInst):
            return ("icmp", inst.predicate, _value_key(inst.operands[0]),
                    _value_key(inst.operands[1]))
        if isinstance(inst, FCmpInst):
            return ("fcmp", inst.predicate, _value_key(inst.operands[0]),
                    _value_key(inst.operands[1]))
        if isinstance(inst, CastInst):
            return ("cast", inst.opcode, _type_key(inst.type),
                    _value_key(inst.source))
        if isinstance(inst, GEPInst):
            return ("gep", _value_key(inst.pointer),
                    tuple(_value_key(i) for i in inst.indices))
        if isinstance(inst, SelectInst):
            return ("select", _value_key(inst.condition),
                    _value_key(inst.true_value),
                    _value_key(inst.false_value))
        if isinstance(inst, LoadInst):
            return ("load", memory_gen, _value_key(inst.pointer),
                    _type_key(inst.type))
        if isinstance(inst, CallInst):
            name = getattr(inst.callee, "name", "")
            if name in ("__sizeof_vpfloat", "__sizeof_vpfloat_mpfr"):
                # Pure given identical attribute operands: safe to number.
                return ("sizeof", name,
                        tuple(_value_key(a) for a in inst.operands))
            return None
        return None


def _type_key(type) -> object:
    try:
        return hash(type)
    except TypeError:  # pragma: no cover - defensive
        return id(type)
