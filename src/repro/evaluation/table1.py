"""Table I: residual error of PolyBench kernels across precisions.

Reproduces the paper's Table I rows (gemm, 3mm, covariance, gramschmidt)
for IEEE 32, IEEE 64, 128-bit and 512-bit significands over the five
dataset classes.  Residuals are computed against a 700-bit reference run
with exact high-precision arithmetic, so values as small as 1e-600 are
representable (the paper reports "< 1e-600" cells).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..bigfloat import BigFloat, log10_magnitude, to_str
from ..workloads.polybench import DATASET_ORDER, KERNELS, TABLE1_KERNELS
from .harness import residual_error, run_kernel

REFERENCE_TYPE = "vpfloat<mpfr, 16, 700>"

ROW_TYPES = (
    ("IEEE 32", "float"),
    ("IEEE 64", "double"),
    ("128 bits", "vpfloat<mpfr, 16, 128>"),
    ("512 bits", "vpfloat<mpfr, 16, 512>"),
)


@dataclass
class Table1Cell:
    kernel: str
    row: str
    dataset: str
    n: int
    residual: BigFloat

    @property
    def display(self) -> str:
        if self.residual.is_nan():
            return "nan (unstable)"
        if self.residual.is_zero() or \
                log10_magnitude(self.residual) < -600:
            return "< 1e-600"
        return to_str(self.residual, 2)


def _cell_group(kernel: str, dataset: str, max_steps: int,
                engine=None, validate: bool = False) -> List[Table1Cell]:
    """All four rows of one (kernel, dataset) column.

    This is the parallel engine's unit of work: the 700-bit reference
    run is shared by the column's rows, so sharding below this
    granularity would recompute it."""
    n = KERNELS[kernel].size_for(dataset)
    reference = run_kernel(kernel, REFERENCE_TYPE, n,
                           backend="none", cache=False,
                           max_steps=max_steps, engine=engine,
                           validate=validate)
    cells: List[Table1Cell] = []
    for row_name, ftype in ROW_TYPES:
        outcome = run_kernel(kernel, ftype, n, backend="none",
                             cache=False, max_steps=max_steps,
                             engine=engine, validate=validate)
        residual = residual_error(outcome.outputs, reference.outputs)
        cells.append(Table1Cell(kernel, row_name, dataset, n, residual))
    return cells


def run_table1(kernels: Sequence[str] = TABLE1_KERNELS,
               datasets: Sequence[str] = DATASET_ORDER,
               max_steps: int = 2_000_000_000, jobs: int = 1,
               cache_dir=None, compile_cache: bool = True,
               engine=None, validate: bool = False) -> List[Table1Cell]:
    from .parallel import parallel_map

    tasks = [(kernel, dataset, max_steps, engine, validate)
             for kernel in kernels for dataset in datasets]
    groups = parallel_map(_cell_group, tasks, jobs=jobs,
                          cache_dir=cache_dir,
                          compile_cache=compile_cache)
    return [cell for group in groups for cell in group]


def format_table1(cells: List[Table1Cell]) -> str:
    kernels = []
    for cell in cells:
        if cell.kernel not in kernels:
            kernels.append(cell.kernel)
    datasets = []
    for cell in cells:
        if cell.dataset not in datasets:
            datasets.append(cell.dataset)
    lines = ["Table I -- residual error vs 700-bit reference", ""]
    header = f"{'kernel':<13}{'type':<10}" + "".join(
        f"{d:>14}" for d in datasets)
    lines.append(header)
    lines.append("-" * len(header))
    for kernel in kernels:
        for row_name, _ in ROW_TYPES:
            row_cells = {
                c.dataset: c for c in cells
                if c.kernel == kernel and c.row == row_name
            }
            lines.append(
                f"{kernel:<13}{row_name:<10}" + "".join(
                    f"{row_cells[d].display:>14}" if d in row_cells else
                    f"{'-':>14}" for d in datasets)
            )
    return "\n".join(lines)


def main(jobs: int = 1, cache_dir=None, compile_cache: bool = True,
         kernels: Sequence[str] = TABLE1_KERNELS,
         datasets: Sequence[str] = DATASET_ORDER, engine=None,
         validate: bool = False) -> str:
    text = format_table1(run_table1(kernels=kernels, datasets=datasets,
                                    jobs=jobs, cache_dir=cache_dir,
                                    compile_cache=compile_cache,
                                    engine=engine, validate=validate))
    print(text)
    return text
