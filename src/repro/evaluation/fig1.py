"""Figure 1: vpfloat<mpfr,...> speedup over Boost.Multiprecision.

Part (1): PolyBench, sequential, -O3 with and without Polly -- "the
execution time reference for each application is the best of both" (paper
§IV-A), at two precisions.  Part (2): RAJAPerf with the three sequential
variants and the three OpenMP variants on 16 modeled threads.

Speedups are ratios of modeled cycles (DESIGN.md performance-model
substitution); paper averages for comparison: PolyBench 1.80x, RAJAPerf
sequential 1.74/1.61/1.65x, OpenMP 7.98/7.16/7.72x.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core import CompilerDriver
from ..workloads.polybench import FIG1_KERNELS, KERNELS
from ..workloads.rajaperf import (
    DEFAULT_N,
    OMP_VARIANTS,
    PAPER_THREADS,
    RAJA_KERNELS,
    VARIANTS,
    raja_source,
)
from .harness import geomean, run_kernel

#: The two precisions swept (the paper plots several; lower/higher).
PRECISIONS = (128, 512)


@dataclass
class Fig1Point:
    kernel: str
    precision: int
    vpfloat_cycles: float
    boost_cycles: float
    vpfloat_polly_cycles: Optional[float] = None
    boost_polly_cycles: Optional[float] = None

    @property
    def best_vpfloat(self) -> float:
        candidates = [self.vpfloat_cycles]
        if self.vpfloat_polly_cycles is not None:
            candidates.append(self.vpfloat_polly_cycles)
        return min(candidates)

    @property
    def best_boost(self) -> float:
        candidates = [self.boost_cycles]
        if self.boost_polly_cycles is not None:
            candidates.append(self.boost_polly_cycles)
        return min(candidates)

    @property
    def speedup(self) -> float:
        return self.best_boost / self.best_vpfloat


def _polybench_point(kernel: str, n: int, prec: int, with_polly: bool,
                     max_steps: int, engine=None,
                     validate: bool = False) -> Fig1Point:
    ftype = f"vpfloat<mpfr, 16, {prec}>"
    vp = run_kernel(kernel, ftype, n, backend="mpfr",
                    read_outputs=False, max_steps=max_steps,
                    engine=engine, validate=validate)
    boost = run_kernel(kernel, ftype, n, backend="boost",
                       read_outputs=False, max_steps=max_steps,
                       engine=engine, validate=validate)
    vp_polly = boost_polly = None
    if with_polly:
        vp_polly = run_kernel(kernel, ftype, n, backend="mpfr",
                              polly=True, read_outputs=False,
                              max_steps=max_steps, engine=engine,
                              validate=validate).report.cycles
        boost_polly = run_kernel(kernel, ftype, n, backend="boost",
                                 polly=True, read_outputs=False,
                                 max_steps=max_steps, engine=engine,
                                 validate=validate).report.cycles
    return Fig1Point(kernel, prec, vp.report.cycles,
                     boost.report.cycles, vp_polly, boost_polly)


def run_fig1_polybench(kernels: Sequence[str] = FIG1_KERNELS,
                       dataset: str = "small",
                       precisions: Sequence[int] = PRECISIONS,
                       with_polly: bool = True,
                       max_steps: int = 2_000_000_000, jobs: int = 1,
                       cache_dir=None, compile_cache: bool = True,
                       engine=None,
                       validate: bool = False) -> List[Fig1Point]:
    from .parallel import parallel_map

    tasks = [(kernel, KERNELS[kernel].size_for(dataset), prec,
              with_polly, max_steps, engine, validate)
             for kernel in kernels for prec in precisions]
    return parallel_map(_polybench_point, tasks, jobs=jobs,
                        cache_dir=cache_dir, compile_cache=compile_cache)


@dataclass
class RajaPoint:
    kernel: str
    variant: str
    precision: int
    openmp: bool
    vpfloat_time: float
    boost_time: float

    @property
    def speedup(self) -> float:
        return self.boost_time / self.vpfloat_time


def _raja_point(kernel: str, variant: str, kwargs: dict, openmp: bool,
                n: int, precision: int, threads: int,
                max_steps: int, engine=None,
                validate: bool = False) -> RajaPoint:
    from .harness import get_compile_cache

    ftype = f"vpfloat<mpfr, 16, {precision}>"
    source = raja_source(kernel, ftype, openmp=openmp)
    times = {}
    for backend in ("mpfr", "boost"):
        program = CompilerDriver(backend=backend,
                                 cache=get_compile_cache(),
                                 engine=engine, **kwargs).compile(source)
        result = program.run("run", [n], max_steps=max_steps)
        if validate:
            _validate_raja(program, kernel, backend, n, engine,
                           max_steps, result)
        if openmp:
            # RAJAPerf times the kernel region itself.
            times[backend] = result.report.kernel_time(threads)
        else:
            times[backend] = float(result.report.cycles)
    return RajaPoint(kernel, variant, precision, openmp,
                     times["mpfr"], times["boost"])


def _validate_raja(program, kernel: str, backend: str, n: int,
                   engine, max_steps: int, reference) -> None:
    """Certificate for one RAJAPerf point: every other engine (and the
    pool toggle) must reproduce the reference value and report."""
    from ..core import ENGINES, resolve_engine
    from ..validation import certificate_for_outcomes

    reference_engine = resolve_engine(engine, backend)
    candidates = []
    for candidate in ENGINES:
        if candidate == reference_engine:
            continue
        result = program.run("run", [n], max_steps=max_steps,
                             engine=candidate)
        candidates.append((f"engine.{candidate}", "exact",
                           [result.value], result.report))
    if backend != "boost":
        result = program.run("run", [n], max_steps=max_steps,
                             engine=reference_engine, pool=False)
        candidates.append(("pool.off", "traffic",
                           [result.value], result.report))
    certificate_for_outcomes(
        subject=f"{kernel}-{backend}",
        reference_label=f"engine.{reference_engine}",
        reference=([reference.value], reference.report),
        candidates=candidates,
        witness={"kernel": kernel, "n": n, "backend": backend},
        strict=True)


def run_fig1_rajaperf(kernels: Optional[Sequence[str]] = None,
                      n: int = DEFAULT_N,
                      precision: int = 256,
                      threads: int = PAPER_THREADS,
                      max_steps: int = 2_000_000_000, jobs: int = 1,
                      cache_dir=None, compile_cache: bool = True,
                      engine=None,
                      validate: bool = False) -> List[RajaPoint]:
    from .parallel import parallel_map

    kernels = list(kernels or RAJA_KERNELS)
    tasks = [
        (kernel, variant, kwargs, openmp, n, precision, threads,
         max_steps, engine, validate)
        for openmp, variant_map in ((False, VARIANTS), (True, OMP_VARIANTS))
        for variant, kwargs in variant_map.items()
        for kernel in kernels
    ]
    return parallel_map(_raja_point, tasks, jobs=jobs,
                        cache_dir=cache_dir, compile_cache=compile_cache)


def summarize_fig1(polybench: List[Fig1Point],
                   rajaperf: List[RajaPoint]) -> Dict[str, float]:
    summary: Dict[str, float] = {}
    summary["polybench_avg"] = geomean([p.speedup for p in polybench])
    for variant in list(VARIANTS) + list(OMP_VARIANTS):
        values = [p.speedup for p in rajaperf if p.variant == variant]
        if values:
            summary[variant] = geomean(values)
    return summary


def format_fig1(polybench: List[Fig1Point],
                rajaperf: List[RajaPoint]) -> str:
    lines = ["Figure 1 (1) -- PolyBench: vpfloat speedup over Boost "
             "(best of +/-Polly)", ""]
    header = f"{'kernel':<14}{'prec':>6}{'vpfloat':>12}{'boost':>12}{'speedup':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for p in polybench:
        lines.append(f"{p.kernel:<14}{p.precision:>6}"
                     f"{p.best_vpfloat:>12.0f}{p.best_boost:>12.0f}"
                     f"{p.speedup:>8.2f}x")
    summary = summarize_fig1(polybench, rajaperf)
    lines.append("")
    lines.append(f"PolyBench average speedup: "
                 f"{summary.get('polybench_avg', 0):.2f}x "
                 f"(paper: 1.80x)")
    lines.append("")
    lines.append("Figure 1 (2) -- RAJAPerf variants")
    header = f"{'kernel':<14}{'variant':<16}{'speedup':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for p in rajaperf:
        lines.append(f"{p.kernel:<14}{p.variant:<16}{p.speedup:>8.2f}x")
    paper = {"Base_Seq": 1.74, "Lambda_Seq": 1.61, "RAJA_Seq": 1.65,
             "Base_OpenMP": 7.98, "Lambda_OpenMP": 7.16,
             "RAJA_OpenMP": 7.72}
    lines.append("")
    for variant, value in summary.items():
        if variant == "polybench_avg":
            continue
        lines.append(f"{variant:<16} average {value:>6.2f}x "
                     f"(paper: {paper.get(variant, float('nan')):.2f}x)")
    return "\n".join(lines)


def main(dataset: str = "mini", raja_n: int = 256, jobs: int = 1,
         cache_dir=None, compile_cache: bool = True, engine=None,
         validate: bool = False) -> str:
    polybench = run_fig1_polybench(dataset=dataset, jobs=jobs,
                                   cache_dir=cache_dir,
                                   compile_cache=compile_cache,
                                   engine=engine, validate=validate)
    rajaperf = run_fig1_rajaperf(n=raja_n, jobs=jobs, cache_dir=cache_dir,
                                 compile_cache=compile_cache,
                                 engine=engine, validate=validate)
    text = format_fig1(polybench, rajaperf)
    print(text)
    return text
