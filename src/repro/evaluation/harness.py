"""Shared machinery for the evaluation drivers (Tables I-III, Figs. 1-3).

Compiles workload kernels with a configuration, executes them on the
matching engine, and extracts exact output arrays from the simulated
memory so accuracy experiments can compare at full precision.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..bigfloat import BigFloat
from ..core import CompilerDriver
from ..observability import current_ledger, current_metrics, report_fields
from ..runtime import CostReport
from ..runtime.batch import lane_view
from ..unum import UnumConfig, UnumCoprocessor, decode as unum_decode
from ..workloads.polybench import KERNELS, source_for

Number = Union[float, BigFloat]

_MPFR_STRUCT_BYTES = 24

#: Process-global default compile cache: installed by the parallel
#: engine's worker initializer (per-shard warm caches) or by a driver
#: before a sweep.  ``run_kernel`` uses it whenever the caller leaves
#: ``compile_cache`` unset.
_COMPILE_CACHE = None
_UNSET = object()


def set_compile_cache(cache):
    """Install the process default compile cache; returns the old one."""
    global _COMPILE_CACHE
    previous = _COMPILE_CACHE
    _COMPILE_CACHE = cache
    return previous


def get_compile_cache():
    return _COMPILE_CACHE


@dataclass
class RunOutcome:
    """One kernel execution: outputs + performance report."""

    kernel: str
    ftype: str
    backend: str
    n: int
    outputs: List[Number]
    report: CostReport
    value: object
    #: Observability extras (None unless the engine provides them).
    mpfr_stats: object = None
    profile: object = None
    pass_timings: Optional[dict] = None
    #: Translation-validation certificate (None unless ``validate=``
    #: was requested and the backend supports it).
    certificate: object = None
    #: Batched execution (None for serial points): the lane count and
    #: whether the batch actually ran in lockstep ("batched") or bailed
    #: out to per-lane serial jit runs ("serial").
    batch: Optional[int] = None
    batch_mode: Optional[str] = None


def parse_ftype(ftype: str) -> Tuple[str, dict]:
    """Classify an element type string.

    Returns ("double"/"float"/"mpfr"/"unum", params).  The mpfr form
    accepts both the 3-argument ``vpfloat<mpfr, exp, prec>`` and the
    4-argument ``vpfloat<mpfr, exp, prec, size>`` spelling (``size`` in
    bytes, a storage bound that must hold the significand).
    """
    text = ftype.strip() if isinstance(ftype, str) else ftype
    if text == "double":
        return "double", {}
    if text == "float":
        return "float", {}
    match = re.fullmatch(
        r"vpfloat<\s*mpfr\s*,\s*(\d+)\s*,\s*(\d+)\s*(?:,\s*(\d+)\s*)?>",
        text or "")
    if match:
        prec = int(match.group(2))
        size = int(match.group(3)) if match.group(3) else None
        if size is not None and size * 8 < prec:
            raise ValueError(
                f"element type {ftype!r}: declared size of {size} bytes "
                f"cannot hold a {prec}-bit significand")
        params = {"exp": int(match.group(1)), "prec": prec}
        if size is not None:
            params["size"] = size
        return "mpfr", params
    match = re.fullmatch(
        r"vpfloat<\s*unum\s*,\s*(\d+)\s*,\s*(\d+)\s*(?:,\s*(\d+)\s*)?>",
        text or "")
    if match:
        size = int(match.group(3)) if match.group(3) else None
        return "unum", {"ess": int(match.group(1)),
                        "fss": int(match.group(2)), "size": size}
    raise ValueError(
        f"unrecognized element type {ftype!r}; expected 'double', "
        f"'float', 'vpfloat<mpfr, EXP, PREC[, SIZE]>', or "
        f"'vpfloat<unum, ESS, FSS[, SIZE]>'")


def canonical_source_ftype(ftype: str) -> str:
    """The spelling embedded into generated kernel sources.

    The 4-argument mpfr form collapses to the 3-argument one: the byte
    size is a storage annotation the toolchain's mpfr ABI fixes itself
    (header + limbs), so the compiled source is identical -- and shares
    a compile-cache entry -- with the unannotated spelling.
    """
    kind, params = parse_ftype(ftype)
    if kind == "mpfr" and "size" in params:
        return f"vpfloat<mpfr, {params['exp']}, {params['prec']}>"
    return ftype


def element_stride(ftype: str, backend: str) -> int:
    kind, params = parse_ftype(ftype)
    if kind == "double":
        return 8
    if kind == "float":
        return 4
    if kind == "unum":
        return UnumConfig(params["ess"], params["fss"],
                          params.get("size")).size_bytes
    # mpfr
    if backend in ("mpfr", "boost"):
        return _MPFR_STRUCT_BYTES
    from ..bigfloat import limb_bytes

    return 24 + limb_bytes(params["prec"])


def run_kernel(kernel: str, ftype: str, n: int, backend: str = "none",
               polly: bool = False, cache: bool = True,
               read_outputs: bool = True,
               coprocessor: Optional[UnumCoprocessor] = None,
               max_steps: int = 500_000_000, costs=None,
               dispatch: Optional[str] = None, profile: bool = False,
               pool: Optional[bool] = None,
               compile_cache=_UNSET, engine: Optional[str] = None,
               validate: bool = False, batch: Optional[int] = None,
               **driver_kwargs) -> RunOutcome:
    """Compile + execute one PolyBench kernel; extract its outputs.

    ``engine`` selects the execution engine (``dispatch`` is the older
    spelling of the same knob; ``None`` for both picks the backend
    default), ``profile``/``pool`` the observability layer and MPFR
    pool (see :meth:`CompiledProgram.run`); they are ignored by the
    unum machine backend.  ``compile_cache`` is a
    :class:`~repro.core.CompileCache` (or None to force a fresh
    compile); left unset, the process default installed via
    :func:`set_compile_cache` applies.

    ``validate=True`` additionally re-executes the kernel under every
    other execution engine and with the MPFR pool off, and attaches a
    translation-validation certificate (bit-identical outputs, cycle
    reports under the engine/pool invariants) to the outcome; a failed
    certificate raises
    :class:`~repro.validation.CertificateError`.  The primary run is
    untouched -- its outputs and report are bit-identical to a
    non-validated run -- and the flag is a single branch when off.
    Certificates only apply to the interpreter backends; unum-machine
    points are returned unvalidated.

    ``batch=N`` (mpfr backend, jit engine) executes the kernel as one
    batched SPMD run of N lanes (:meth:`CompiledProgram.run_batch`) and
    returns lane 0's outputs and report -- bit-identical to a serial
    run, since every lane computes the same point.  ``validate=True``
    then certifies the ``serial↔batched`` transition instead: one
    serial jit reference run, every batch lane checked against it under
    the ``exact`` invariant."""
    spec = KERNELS[kernel]
    source = source_for(kernel, canonical_source_ftype(ftype))
    registry = current_metrics()
    if registry is not None:
        registry.inc("eval.points")
        registry.inc(f"eval.backend.{backend}")
    ledger = current_ledger()
    wall0 = time.perf_counter() if ledger is not None else 0.0
    if compile_cache is _UNSET:
        compile_cache = _COMPILE_CACHE
    if engine is None:
        engine = dispatch
    if batch is not None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if backend != "mpfr":
            raise ValueError("batched execution requires the mpfr "
                             f"backend, not {backend!r}")
        if engine not in (None, "jit"):
            raise ValueError("batched execution runs on the jit engine; "
                             f"pass engine=None or 'jit', not {engine!r}")
    driver = CompilerDriver(backend=backend, polly=polly,
                            cache=compile_cache, engine=engine,
                            **driver_kwargs)
    program = driver.compile(source, name=f"{kernel}-{backend}")
    kind, params = parse_ftype(ftype)

    if batch is not None:
        outcome = _run_kernel_batched(program, spec, kernel, ftype,
                                      backend, n, batch, cache=cache,
                                      max_steps=max_steps, costs=costs,
                                      pool=pool,
                                      read_outputs=read_outputs,
                                      validate=validate)
        if ledger is not None:
            ledger.record("eval_point", kernel=kernel, ftype=ftype,
                          backend=backend, n=n, engine="jit",
                          lanes=batch,
                          wall_seconds=time.perf_counter() - wall0,
                          **report_fields(outcome.report))
        return outcome

    if backend == "unum":
        if coprocessor is None:
            config = UnumConfig(params["ess"], params["fss"],
                                params.get("size"))
            coprocessor = UnumCoprocessor(wgp=min(512, config.precision))
        machine = program.machine(cache=cache, coprocessor=coprocessor,
                                  max_steps=max_steps, costs=costs)
        value = machine.run("run", [n])
        report = machine.accounting.report
        report.cycles += machine.scalar_cycles + machine.coprocessor.cycles
        report.serial_cycles = report.cycles - report.parallel_cycles
        if registry is not None:
            from ..observability import absorb_report, absorb_unum_stats

            absorb_report(registry, report)
            absorb_unum_stats(registry, machine)
        if ledger is not None:
            ledger.record("eval_point", kernel=kernel, ftype=ftype,
                          backend=backend, n=n, engine=None,
                          wall_seconds=time.perf_counter() - wall0,
                          **report_fields(report))
        outputs: List[Number] = []
        if read_outputs:
            outputs = _read_unum_outputs(machine, int(value),
                                         spec.outputs(n), params)
        return RunOutcome(kernel, ftype, backend, n, outputs, report, value,
                          pass_timings=program.pass_timings)

    result = program.run("run", [n], cache=cache, max_steps=max_steps,
                         costs=costs, engine=engine, profile=profile,
                         pool=pool)
    outputs = []
    if read_outputs:
        outputs = _read_interpreter_outputs(
            result.interpreter, int(result.value), spec.outputs(n),
            ftype, backend)
    outcome = RunOutcome(kernel, ftype, backend, n, outputs, result.report,
                         result.value,
                         mpfr_stats=result.interpreter.mpfr.stats,
                         profile=result.profile,
                         pass_timings=program.pass_timings)
    validated = None
    if validate:
        try:
            outcome.certificate = _validate_run(
                program, spec, outcome, engine=engine, cache=cache,
                max_steps=max_steps, costs=costs)
            validated = True
        except Exception:
            if ledger is not None:
                ledger.record(
                    "eval_point", kernel=kernel, ftype=ftype,
                    backend=backend, n=n, engine=engine,
                    validated=False,
                    wall_seconds=time.perf_counter() - wall0,
                    **report_fields(result.report))
            raise
    if ledger is not None:
        fields = report_fields(result.report)
        if validated is not None:
            fields["validated"] = validated
        ledger.record("eval_point", kernel=kernel, ftype=ftype,
                      backend=backend, n=n, engine=engine,
                      wall_seconds=time.perf_counter() - wall0,
                      **fields)
    return outcome


def _run_kernel_batched(program, spec, kernel: str, ftype: str,
                        backend: str, n: int, lanes: int, cache: bool,
                        max_steps: int, costs, pool: Optional[bool],
                        read_outputs: bool,
                        validate: bool) -> RunOutcome:
    """One batched SPMD execution standing in for a serial point.

    All lanes compute the same (kernel, n) point, so the outcome
    carries lane 0's value/outputs/report -- which the batch engine
    guarantees (and ``validate=True`` certifies) to be bit-identical
    to a serial jit run."""
    result = program.run_batch("run", [n], lanes=lanes, cache=cache,
                               max_steps=max_steps, costs=costs,
                               pool=pool)
    value = result.values[0]
    outputs: List[Number] = []
    if read_outputs and result.interpreter is not None:
        outputs = _read_interpreter_outputs(
            result.interpreter, int(value), spec.outputs(n), ftype,
            backend, lane=0)
    outcome = RunOutcome(kernel, ftype, backend, n, outputs,
                         result.reports[0], value,
                         mpfr_stats=(result.interpreter.mpfr.stats
                                     if result.interpreter is not None
                                     else None),
                         pass_timings=program.pass_timings,
                         batch=lanes, batch_mode=result.mode)
    if validate:
        outcome.certificate = _validate_batch_run(
            program, spec, outcome, result, cache=cache,
            max_steps=max_steps, costs=costs)
    return outcome


def _validate_batch_run(program, spec, outcome: RunOutcome,
                        batch_result, cache: bool, max_steps: int,
                        costs) -> object:
    """Certify the ``serial↔batched`` transition: one serial jit
    reference run, every batch lane checked against it bit-for-bit
    (values, outputs, and the full cycle report -- the ``exact``
    invariant from :data:`~repro.validation.TRANSITIONS`)."""
    from ..validation import TRANSITIONS, certificate_for_outcomes

    strictness = TRANSITIONS["serial↔batched"]
    serial = program.run("run", [outcome.n], cache=cache,
                         max_steps=max_steps, costs=costs, engine="jit")
    read_outputs = bool(outcome.outputs)
    ref_values = [serial.value]
    if read_outputs:
        ref_values += _read_interpreter_outputs(
            serial.interpreter, int(serial.value),
            spec.outputs(outcome.n), outcome.ftype, outcome.backend)
    candidates = []
    for i in range(batch_result.lanes):
        values = [batch_result.values[i]]
        if read_outputs and batch_result.interpreter is not None:
            values += _read_interpreter_outputs(
                batch_result.interpreter, int(batch_result.values[i]),
                spec.outputs(outcome.n), outcome.ftype, outcome.backend,
                lane=i)
        candidates.append((f"batch{batch_result.lanes}.lane{i}",
                           strictness, values, batch_result.reports[i]))
    if batch_result.mode == "batched":
        # generic↔specialized, batched: rerun the batch with the
        # fast-path kernel tier forced off; every lane must still match
        # the serial reference bit-for-bit.
        tier_strictness = TRANSITIONS["generic↔specialized"]
        generic = program.run_batch("run", [outcome.n],
                                    lanes=batch_result.lanes,
                                    cache=cache, max_steps=max_steps,
                                    costs=costs, kernel_tier="generic")
        for i in range(generic.lanes):
            values = [generic.values[i]]
            if read_outputs and generic.interpreter is not None:
                values += _read_interpreter_outputs(
                    generic.interpreter, int(generic.values[i]),
                    spec.outputs(outcome.n), outcome.ftype,
                    outcome.backend, lane=i)
            candidates.append((f"tier.generic.lane{i}", tier_strictness,
                               values, generic.reports[i]))
    return certificate_for_outcomes(
        subject=f"{outcome.kernel}-{outcome.backend}",
        reference_label="engine.jit.serial",
        reference=(ref_values, serial.report),
        candidates=candidates,
        witness={"kernel": outcome.kernel, "ftype": outcome.ftype,
                 "n": outcome.n, "backend": outcome.backend,
                 "lanes": batch_result.lanes,
                 "batch_mode": batch_result.mode},
        strict=True)


def _validate_run(program, spec, outcome: RunOutcome,
                  engine: Optional[str], cache: bool, max_steps: int,
                  costs) -> object:
    """Cross-run the other engines (and the pool toggle) against the
    primary outcome and assemble its certificate (strict)."""
    from ..core import ENGINES, resolve_engine
    from ..validation import TRANSITIONS, certificate_for_outcomes

    backend = outcome.backend
    reference_engine = resolve_engine(engine, backend)

    # Mirror the primary observation: outputs participate in the
    # witness only when the primary run extracted them.
    read_outputs = bool(outcome.outputs)

    def observe(run_engine, run_pool, run_tier=None):
        result = program.run("run", [outcome.n], cache=cache,
                             max_steps=max_steps, costs=costs,
                             engine=run_engine, pool=run_pool,
                             kernel_tier=run_tier)
        values = [result.value]
        if read_outputs:
            values += _read_interpreter_outputs(
                result.interpreter, int(result.value),
                spec.outputs(outcome.n), outcome.ftype, backend)
        return values, result.report

    candidates = []
    for candidate in ENGINES:
        if candidate == reference_engine:
            continue
        values, report = observe(candidate, None)
        candidates.append((f"engine.{candidate}", "exact",
                           values, report))
    if backend != "boost":
        values, report = observe(reference_engine, False)
        candidates.append(("pool.off", "traffic", values, report))
    if reference_engine == "jit":
        # generic↔specialized: the jit engine with the fast-path kernel
        # tier forced off must reproduce the reference bit-for-bit.
        values, report = observe("jit", None, run_tier="generic")
        candidates.append(("tier.generic",
                           TRANSITIONS["generic↔specialized"],
                           values, report))
    return certificate_for_outcomes(
        subject=f"{outcome.kernel}-{backend}",
        reference_label=f"engine.{reference_engine}",
        reference=([outcome.value] + list(outcome.outputs),
                   outcome.report),
        candidates=candidates,
        witness={"kernel": outcome.kernel, "ftype": outcome.ftype,
                 "n": outcome.n, "backend": backend},
        strict=True)


def read_lane_outputs(interpreter, base: int, count: int, ftype: str,
                      backend: str, lane: int = 0) -> List[Number]:
    """Extract one lane's output elements from simulated memory.

    The public face of the output reader for callers that hold a
    finished interpreter directly (the compile/run service's workers
    read every lane of a coalesced batch this way); serial cells
    ignore ``lane``."""
    return _read_interpreter_outputs(interpreter, base, count, ftype,
                                     backend, lane=lane)


def _read_interpreter_outputs(interpreter, base: int, count: int,
                              ftype: str, backend: str,
                              lane: int = 0) -> List[Number]:
    """Extract ``count`` output elements from simulated memory.

    ``lane`` selects the lane of batched (VPBatch-valued) cells; serial
    cells are unaffected by it."""
    stride = element_stride(ftype, backend)
    kind, _params = parse_ftype(ftype)
    values: List[Number] = []
    for i in range(count):
        cell = interpreter.memory.cells.get(base + i * stride)
        raw = cell[0] if cell is not None else None
        if raw is None:
            values.append(0.0)
        elif hasattr(raw, "value") and hasattr(raw, "prec"):
            # MpfrVar handle: its value is a BigFloat (serial) or a
            # VPBatch (batched run) -- lane_view resolves both.
            values.append(lane_view(raw, lane))
        else:
            values.append(raw)
    return values


def _read_unum_outputs(machine, base: int, count: int,
                       params: dict) -> List[Number]:
    config = UnumConfig(params["ess"], params["fss"], params.get("size"))
    stride = config.size_bytes
    values: List[Number] = []
    for i in range(count):
        raw = machine.memory.load_bytes(base + i * stride, stride)
        values.append(unum_decode(int.from_bytes(raw, "little"), config))
    return values


# ----------------------------------------------------------------- #
# Error metrics
# ----------------------------------------------------------------- #

def as_bigfloat(x: Number, prec: int = 700) -> BigFloat:
    if isinstance(x, BigFloat):
        return x.round_to(prec)
    return BigFloat.from_float(float(x), prec)


def residual_error(outputs: Sequence[Number],
                   reference: Sequence[Number],
                   prec: int = 700) -> BigFloat:
    """max_i |x_i - ref_i| / max(1, max_i |ref_i|) at high precision."""
    from ..bigfloat import arith

    max_abs_diff = BigFloat.zero(prec)
    max_abs_ref = BigFloat.from_int(1, prec)
    for x, ref in zip(outputs, reference):
        a = as_bigfloat(x, prec)
        b = as_bigfloat(ref, prec)
        diff = abs(arith.sub(a, b, prec))
        if diff.is_nan() or a.is_nan():
            return BigFloat.nan(prec)
        if diff > max_abs_diff:
            max_abs_diff = diff
        if abs(b) > max_abs_ref:
            max_abs_ref = abs(b)
    return arith.div(max_abs_diff, max_abs_ref, prec)


def speedup(baseline_cycles: float, cycles: float) -> float:
    return baseline_cycles / cycles if cycles else float("inf")


def geomean(values: Sequence[float]) -> float:
    import math

    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    return math.exp(sum(math.log(v) for v in filtered) / len(filtered))
