"""Figure 3: Conjugate Gradient iterations and runtime vs precision.

CG on the bcsstk20 stand-in (DESIGN.md substitution: same SPD stiffness
structure and ~1e12 condition number, scaled down).  Reproduced claims:

- higher precision -> fewer iterations (monotone, as in the paper);
- execution time drops rapidly at first (fewer iterations dominate),
  reaches a plateau/minimum, then *slowly increases* as per-iteration
  cost keeps growing while iterations stop improving;
- vpfloat outperforms Boost by ~1.5x at the same precision and a
  Julia-style dynamically-typed implementation by >9x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..solvers import SweepPoint, bcsstk20_like, precision_sweep, rhs_for

DEFAULT_PRECISIONS = (60, 80, 100, 140, 200, 300, 400, 500, 700, 900, 1100)


@dataclass
class Fig3Result:
    points: List[SweepPoint]
    matrix_size: int
    condition: float

    @property
    def plateau_precision(self) -> int:
        """Precision with minimum modeled vpfloat time."""
        best = min(self.points, key=lambda p: p.cycles_vpfloat)
        return best.precision

    def boost_ratio_at(self, precision: int) -> Optional[float]:
        for p in self.points:
            if p.precision == precision:
                return p.cycles_boost / p.cycles_vpfloat
        return None

    def julia_ratio_at(self, precision: int) -> Optional[float]:
        for p in self.points:
            if p.precision == precision:
                return p.cycles_julia / p.cycles_vpfloat
        return None


def _sweep_point(n: int, condition: float, precision: int,
                 tolerance: float, max_iterations: int) -> SweepPoint:
    """One precision of the CG sweep.  The matrix build is
    deterministic (seeded), so every worker reconstructs the same
    system rather than shipping it across the process boundary."""
    matrix = bcsstk20_like(n=n, condition=condition)
    b = rhs_for(matrix)
    return precision_sweep(matrix, b, (precision,), tolerance,
                           max_iterations)[0]


def run_fig3(n: int = 64, condition: float = 3.9e12,
             precisions: Sequence[int] = DEFAULT_PRECISIONS,
             tolerance: float = 1e-12,
             max_iterations: int = 4000, jobs: int = 1) -> Fig3Result:
    if jobs > 1:
        from .parallel import parallel_map

        tasks = [(n, condition, prec, tolerance, max_iterations)
                 for prec in precisions]
        # CG compiles nothing (it runs on the BLAS layer directly), so
        # the engine is used purely for sharding.
        points = parallel_map(_sweep_point, tasks, jobs=jobs,
                              compile_cache=False)
        return Fig3Result(points=points, matrix_size=n,
                          condition=condition)
    matrix = bcsstk20_like(n=n, condition=condition)
    b = rhs_for(matrix)
    points = precision_sweep(matrix, b, precisions, tolerance,
                             max_iterations)
    return Fig3Result(points=points, matrix_size=n, condition=condition)


def format_fig3(result: Fig3Result) -> str:
    lines = [f"Figure 3 -- CG on bcsstk20 stand-in "
             f"(n={result.matrix_size}, cond~{result.condition:.1e})", ""]
    header = (f"{'prec(bits)':>10}{'iterations':>12}{'converged':>11}"
              f"{'t_vpfloat':>12}{'t_boost':>12}{'t_julia':>12}")
    lines.append(header)
    lines.append("-" * len(header))
    for p in result.points:
        lines.append(
            f"{p.precision:>10}{p.iterations:>12}"
            f"{'yes' if p.converged else 'no':>11}"
            f"{p.cycles_vpfloat:>12.3g}{p.cycles_boost:>12.3g}"
            f"{p.cycles_julia:>12.3g}"
        )
    lines.append("")
    lines.append(f"runtime minimum at {result.plateau_precision} bits "
                 f"(paper: plateau around 700 bits on the full-size "
                 f"bcsstk20)")
    plateau = result.plateau_precision
    boost = result.boost_ratio_at(plateau)
    julia = result.julia_ratio_at(plateau)
    if boost:
        lines.append(f"Boost/vpfloat at the plateau: {boost:.2f}x "
                     f"(paper: 1.51x)")
    if julia:
        lines.append(f"Julia/vpfloat at the plateau: {julia:.2f}x "
                     f"(paper: >9x)")
    return "\n".join(lines)


def main(n: int = 64, jobs: int = 1) -> str:
    text = format_fig3(run_fig3(n=n, jobs=jobs))
    print(text)
    return text
