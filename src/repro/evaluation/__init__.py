"""Experiment drivers regenerating every table and figure of the paper.

Run them from the command line::

    python -m repro.evaluation table1
    python -m repro.evaluation table2
    python -m repro.evaluation table3
    python -m repro.evaluation fig1
    python -m repro.evaluation fig2
    python -m repro.evaluation fig3
    python -m repro.evaluation all

or via the benchmark harness in ``benchmarks/``.
"""

from . import fig1, fig2, fig3, parallel, table1, table2, table3
from .harness import (
    RunOutcome,
    element_stride,
    geomean,
    get_compile_cache,
    parse_ftype,
    residual_error,
    run_kernel,
    set_compile_cache,
    speedup,
)
from .parallel import GridPoint, parallel_map, run_grid, shard_tasks

__all__ = [
    "table1", "table2", "table3", "fig1", "fig2", "fig3", "parallel",
    "run_kernel", "RunOutcome", "residual_error", "speedup", "geomean",
    "parse_ftype", "element_stride", "set_compile_cache",
    "get_compile_cache", "GridPoint", "parallel_map", "run_grid",
    "shard_tasks",
]
