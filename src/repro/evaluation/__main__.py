"""CLI for the evaluation drivers: ``python -m repro.evaluation <exp>``.

The compute-heavy experiments accept ``--jobs N`` to fan their sweep
grids out over the parallel evaluation engine
(:mod:`repro.evaluation.parallel`) and share a persistent compile cache
(``--cache-dir``, created on first use; ``--no-compile-cache`` to
disable).
"""

from __future__ import annotations

import argparse
import os
import sys

from ..core import ENGINES
from ..observability import telemetry_session
from . import fig1, fig2, fig3, table1, table2, table3

#: ``--quick`` shrinks table1 to a CI-sized grid that still exercises
#: the parallel engine, both vpfloat rows, and the compile cache.
QUICK_TABLE1_KERNELS = ("gemm", "covariance")
QUICK_TABLE1_DATASETS = ("mini",)


def _table1_main(args):
    if args.quick:
        return table1.main(jobs=args.jobs, cache_dir=args.cache_dir,
                           compile_cache=args.compile_cache,
                           kernels=QUICK_TABLE1_KERNELS,
                           datasets=QUICK_TABLE1_DATASETS,
                           engine=args.engine, validate=args.validate)
    return table1.main(jobs=args.jobs, cache_dir=args.cache_dir,
                       compile_cache=args.compile_cache,
                       engine=args.engine, validate=args.validate)


EXPERIMENTS = {
    "table1": _table1_main,
    "table2": lambda args: table2.main(),
    "table3": lambda args: table3.main(),
    "fig1": lambda args: fig1.main(dataset=args.dataset,
                                   raja_n=args.raja_n, jobs=args.jobs,
                                   cache_dir=args.cache_dir,
                                   compile_cache=args.compile_cache,
                                   engine=args.engine,
                                   validate=args.validate),
    "fig2": lambda args: fig2.main(dataset=args.dataset, jobs=args.jobs,
                                   cache_dir=args.cache_dir,
                                   compile_cache=args.compile_cache,
                                   engine=args.engine,
                                   validate=args.validate),
    "fig3": lambda args: fig3.main(n=args.cg_n, jobs=args.jobs),
}


def validate_engine_args(parser: argparse.ArgumentParser, jobs: int,
                         cache_dir) -> None:
    """Reject bad ``--jobs``/``--cache-dir`` values with a clean
    diagnostic instead of a traceback from deep inside the engine."""
    if jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")
    if cache_dir is not None:
        expanded = os.path.expanduser(cache_dir)
        if os.path.exists(expanded) and not os.path.isdir(expanded):
            parser.error(f"--cache-dir {cache_dir!r} exists and is not "
                         f"a directory")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument("--dataset", default="mini",
                        help="PolyBench dataset class (default: mini)")
    parser.add_argument("--raja-n", type=int, default=256,
                        help="RAJAPerf vector length (default: 256)")
    parser.add_argument("--cg-n", type=int, default=64,
                        help="CG matrix size (default: 64)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for the sweep grids "
                             "(default: 1 = serial)")
    parser.add_argument("--engine", choices=ENGINES, default=None,
                        help="execution engine for every sweep point "
                             "(default: per-backend -- 'jit' for mpfr, "
                             "else 'fast'); worker shards inherit it")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent compile-cache directory "
                             "(default: $VPFLOAT_CACHE_DIR or "
                             "~/.cache/vpfloat-repro; created on "
                             "first use)")
    parser.add_argument("--no-compile-cache", dest="compile_cache",
                        action="store_false",
                        help="recompile every sweep point from scratch")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON of the "
                             "run (view in Perfetto)")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write the merged metrics registry "
                             "(compiler, runtime, cache, pool, "
                             "precision telemetry) as JSON")
    parser.add_argument("--validate", action="store_true",
                        help="translation-validate every sweep point: "
                             "re-run it on every other execution engine "
                             "(and with the MPFR pool off) and require "
                             "bit-identical values plus the engine/pool "
                             "report invariants; a divergence aborts "
                             "with a failed certificate (table1, fig1, "
                             "fig2)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized grids (table1: gemm+covariance "
                             "on the mini dataset)")
    args = parser.parse_args(argv)
    validate_engine_args(parser, args.jobs, args.cache_dir)

    def dispatch():
        if args.experiment == "all":
            for name in ("table1", "table2", "table3", "fig1", "fig2",
                         "fig3"):
                print(f"\n=== {name} ===\n")
                EXPERIMENTS[name](args)
        else:
            EXPERIMENTS[args.experiment](args)

    if args.trace is None and args.metrics_out is None:
        dispatch()
        return 0
    with telemetry_session(trace=args.trace is not None,
                           metrics=args.metrics_out is not None) \
            as (tracer, registry):
        try:
            dispatch()
        finally:
            # Export even on failure: a partial trace of a crashed
            # sweep is exactly what one wants to look at.
            if tracer is not None:
                tracer.export(args.trace)
                print(f"trace written to {args.trace}", file=sys.stderr)
            if registry is not None:
                registry.save(args.metrics_out)
                print(f"metrics written to {args.metrics_out}",
                      file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
