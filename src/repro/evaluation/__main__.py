"""CLI for the evaluation drivers: ``python -m repro.evaluation <exp>``."""

from __future__ import annotations

import argparse
import sys

from . import fig1, fig2, fig3, table1, table2, table3

EXPERIMENTS = {
    "table1": lambda args: table1.main(),
    "table2": lambda args: table2.main(),
    "table3": lambda args: table3.main(),
    "fig1": lambda args: fig1.main(dataset=args.dataset,
                                   raja_n=args.raja_n),
    "fig2": lambda args: fig2.main(dataset=args.dataset),
    "fig3": lambda args: fig3.main(n=args.cg_n),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument("--dataset", default="mini",
                        help="PolyBench dataset class (default: mini)")
    parser.add_argument("--raja-n", type=int, default=256,
                        help="RAJAPerf vector length (default: 256)")
    parser.add_argument("--cg-n", type=int, default=64,
                        help="CG matrix size (default: 64)")
    args = parser.parse_args(argv)
    if args.experiment == "all":
        for name in ("table1", "table2", "table3", "fig1", "fig2", "fig3"):
            print(f"\n=== {name} ===\n")
            EXPERIMENTS[name](args)
    else:
        EXPERIMENTS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
