"""CLI for the evaluation drivers: ``python -m repro.evaluation <exp>``.

The compute-heavy experiments accept ``--jobs N`` to fan their sweep
grids out over the parallel evaluation engine
(:mod:`repro.evaluation.parallel`) and share a persistent compile cache
(``--cache-dir``, created on first use; ``--no-compile-cache`` to
disable).
"""

from __future__ import annotations

import argparse
import os
import sys

from . import fig1, fig2, fig3, table1, table2, table3

EXPERIMENTS = {
    "table1": lambda args: table1.main(jobs=args.jobs,
                                       cache_dir=args.cache_dir,
                                       compile_cache=args.compile_cache),
    "table2": lambda args: table2.main(),
    "table3": lambda args: table3.main(),
    "fig1": lambda args: fig1.main(dataset=args.dataset,
                                   raja_n=args.raja_n, jobs=args.jobs,
                                   cache_dir=args.cache_dir,
                                   compile_cache=args.compile_cache),
    "fig2": lambda args: fig2.main(dataset=args.dataset, jobs=args.jobs,
                                   cache_dir=args.cache_dir,
                                   compile_cache=args.compile_cache),
    "fig3": lambda args: fig3.main(n=args.cg_n, jobs=args.jobs),
}


def validate_engine_args(parser: argparse.ArgumentParser, jobs: int,
                         cache_dir) -> None:
    """Reject bad ``--jobs``/``--cache-dir`` values with a clean
    diagnostic instead of a traceback from deep inside the engine."""
    if jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")
    if cache_dir is not None:
        expanded = os.path.expanduser(cache_dir)
        if os.path.exists(expanded) and not os.path.isdir(expanded):
            parser.error(f"--cache-dir {cache_dir!r} exists and is not "
                         f"a directory")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument("--dataset", default="mini",
                        help="PolyBench dataset class (default: mini)")
    parser.add_argument("--raja-n", type=int, default=256,
                        help="RAJAPerf vector length (default: 256)")
    parser.add_argument("--cg-n", type=int, default=64,
                        help="CG matrix size (default: 64)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for the sweep grids "
                             "(default: 1 = serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent compile-cache directory "
                             "(default: $VPFLOAT_CACHE_DIR or "
                             "~/.cache/vpfloat-repro; created on "
                             "first use)")
    parser.add_argument("--no-compile-cache", dest="compile_cache",
                        action="store_false",
                        help="recompile every sweep point from scratch")
    args = parser.parse_args(argv)
    validate_engine_args(parser, args.jobs, args.cache_dir)
    if args.experiment == "all":
        for name in ("table1", "table2", "table3", "fig1", "fig2", "fig3"):
            print(f"\n=== {name} ===\n")
            EXPERIMENTS[name](args)
    else:
        EXPERIMENTS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
