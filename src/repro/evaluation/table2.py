"""Table II: UNUM declaration geometry (exponent / precision / size)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..unum import UnumConfig

#: The paper's five sample declarations.
PAPER_ROWS: Tuple[Tuple[int, int, Optional[int]], ...] = (
    (3, 6, None),
    (3, 6, 6),
    (3, 8, 60),
    (4, 9, 20),
    (4, 9, None),
)

#: Published values (exponent bits, precision bits, size bytes).
PAPER_VALUES = ((8, 64, 11), (8, 29, 6), (8, 256, 60),
                (16, 129, 20), (16, 512, 68))


@dataclass
class Table2Row:
    declaration: str
    exponent_bits: int
    precision_bits: int
    size_bytes: int
    paper: Tuple[int, int, int]

    @property
    def matches_paper(self) -> bool:
        return (self.exponent_bits, self.precision_bits,
                self.size_bytes) == self.paper


def run_table2() -> List[Table2Row]:
    rows: List[Table2Row] = []
    for (ess, fss, size), paper in zip(PAPER_ROWS, PAPER_VALUES):
        config = UnumConfig(ess, fss, size)
        rows.append(Table2Row(
            declaration=str(config),
            exponent_bits=config.exponent_bits,
            precision_bits=config.fraction_bits,
            size_bytes=config.size_bytes,
            paper=paper,
        ))
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    lines = ["Table II -- UNUM declarations: exponent/precision/size", ""]
    header = (f"{'declaration':<28}{'exp(b)':>8}{'prec(b)':>9}"
              f"{'size(B)':>9}{'paper':>16}{'match':>7}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        paper = "/".join(str(v) for v in row.paper)
        lines.append(
            f"{row.declaration:<28}{row.exponent_bits:>8}"
            f"{row.precision_bits:>9}{row.size_bytes:>9}{paper:>16}"
            f"{'yes' if row.matches_paper else 'NO':>7}"
        )
    return "\n".join(lines)


def main() -> str:
    text = format_table2(run_table2())
    print(text)
    return text
