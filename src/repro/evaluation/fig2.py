"""Figure 2: UNUM coprocessor speedup over vpfloat-MPFR software.

PolyBench kernels at the paper's highest precision (150 decimal digits ~
500 bits), compiled once through the MPFR backend (software baseline,
executed on the interpreter's Xeon-like model) and once through the UNUM
backend (executed on the coprocessor machine model), each at -O3 and
-O3+Polly.  Paper averages at the highest precision: 18.03x (-O3) and
27.58x (-O3+Polly); gemm/2mm/3mm exceed 20x.

The coprocessor hardware erratum (paper §IV-B: gesummv and adi failed
with Polly, and 3mm/ludcmp/nussinov failed at the highest precision with
Polly) is modeled by :data:`FIG2_HW_FAILURES`; those combinations are
reported as failures exactly as the paper does, and can be re-enabled by
passing ``model_erratum=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..runtime.cost_model import ROCKET_CYCLE_COSTS
from ..workloads.polybench import FIG2_HW_FAILURES, FIG2_KERNELS, KERNELS
from .harness import geomean, run_kernel

#: 150 decimal digits ~ 499 bits; unum<4,9> carries 512+1.
MPFR_PRECISION = 500
UNUM_TYPE = "vpfloat<unum, 4, 9>"


@dataclass
class Fig2Point:
    kernel: str
    polly: bool
    mpfr_cycles: Optional[float]
    unum_cycles: Optional[float]
    hw_failure: bool = False

    @property
    def speedup(self) -> Optional[float]:
        if self.hw_failure or not self.unum_cycles:
            return None
        return self.mpfr_cycles / self.unum_cycles


def _fig2_point(kernel: str, n: int, polly: bool,
                max_steps: int, engine=None,
                validate: bool = False) -> Fig2Point:
    # The software baseline executes on the in-order Rocket core
    # of the FPGA platform (paper: "All benchmarks including
    # baseline MPFR implementations have been compiled to the
    # RISC-V ISA").  Only the mpfr software point is validated: the
    # unum point runs on the coprocessor machine model, which has no
    # alternative engine to cross-check against.
    mpfr_type = f"vpfloat<mpfr, 16, {MPFR_PRECISION}>"
    mpfr = run_kernel(kernel, mpfr_type, n, backend="mpfr",
                      polly=polly, read_outputs=False,
                      max_steps=max_steps,
                      costs=ROCKET_CYCLE_COSTS, engine=engine,
                      validate=validate)
    unum = run_kernel(kernel, UNUM_TYPE, n, backend="unum",
                      polly=polly, read_outputs=False,
                      max_steps=max_steps)
    return Fig2Point(kernel, polly, float(mpfr.report.cycles),
                     float(unum.report.cycles))


def run_fig2(kernels: Sequence[str] = FIG2_KERNELS,
             dataset: str = "mini",
             model_erratum: bool = True,
             max_steps: int = 2_000_000_000, jobs: int = 1,
             cache_dir=None, compile_cache: bool = True,
             engine=None, validate: bool = False) -> List[Fig2Point]:
    from .parallel import parallel_map

    grid = [(kernel, polly) for kernel in kernels
            for polly in (False, True)]
    tasks = [(kernel, KERNELS[kernel].size_for(dataset), polly,
              max_steps, engine, validate)
             for kernel, polly in grid
             if not (model_erratum and (kernel, polly) in FIG2_HW_FAILURES)]
    computed = iter(parallel_map(_fig2_point, tasks, jobs=jobs,
                                 cache_dir=cache_dir,
                                 compile_cache=compile_cache))
    points: List[Fig2Point] = []
    for kernel, polly in grid:
        if model_erratum and (kernel, polly) in FIG2_HW_FAILURES:
            points.append(Fig2Point(kernel, polly, None, None,
                                    hw_failure=True))
        else:
            points.append(next(computed))
    return points


def format_fig2(points: List[Fig2Point]) -> str:
    lines = ["Figure 2 -- UNUM coprocessor speedup over MPFR software "
             f"({MPFR_PRECISION}-bit / unum<4,9>)", ""]
    header = f"{'kernel':<14}{'config':<12}{'mpfr':>12}{'unum':>12}{'speedup':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for p in points:
        config = "-O3+Polly" if p.polly else "-O3"
        if p.hw_failure:
            lines.append(f"{p.kernel:<14}{config:<12}"
                         f"{'(hardware erratum, as in the paper)':>34}")
            continue
        lines.append(f"{p.kernel:<14}{config:<12}{p.mpfr_cycles:>12.0f}"
                     f"{p.unum_cycles:>12.0f}{p.speedup:>9.2f}x")
    for polly, label, paper in ((False, "-O3", 18.03),
                                (True, "-O3+Polly", 27.58)):
        speedups = [p.speedup for p in points
                    if p.polly == polly and p.speedup]
        if speedups:
            lines.append("")
            lines.append(f"{label} average: {geomean(speedups):.2f}x "
                         f"(paper: {paper:.2f}x)")
    return "\n".join(lines)


def main(dataset: str = "mini", jobs: int = 1, cache_dir=None,
         compile_cache: bool = True, engine=None,
         validate: bool = False) -> str:
    text = format_fig2(run_fig2(dataset=dataset, jobs=jobs,
                                cache_dir=cache_dir,
                                compile_cache=compile_cache,
                                engine=engine, validate=validate))
    print(text)
    return text
