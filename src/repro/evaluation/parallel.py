"""Parallel sharded evaluation engine for the paper's sweeps.

The evaluation drivers (Tables I-III, Figs. 1-3) walk grids of
(kernel, element type, size, backend) points.  Every point is
independent, so this module fans them out over ``multiprocessing``
workers:

* **Deterministic sharding** -- task ``i`` always lands in shard
  ``i % jobs`` (:func:`shard_tasks`), and each shard preserves task
  order, so a worker sweeps *its* points in a stable sequence and the
  collected results are returned in exactly the submission order,
  independent of worker scheduling.
* **Per-shard warm caches** -- each worker process installs a
  :class:`~repro.core.cache.CompileCache` over a shared on-disk
  directory (:func:`repro.evaluation.harness.set_compile_cache`), so
  repeated compilations hit the process-local LRU and first-time
  compilations are persisted for every other worker and every later
  run.
* **Structured results** -- tasks return plain data
  (:class:`~repro.evaluation.harness.RunOutcome`: outputs +
  CostReport + mpfr_stats + pass_timings), pickled back to the parent.
* **Graceful degradation** -- ``jobs=1`` (or a single task) runs
  serially in-process with identical semantics; a broken worker pool
  (crashed process, sandbox without POSIX semaphores, ...) falls back
  to the serial path instead of surfacing a stack of multiprocessing
  internals.

Exceptions raised *by a task* are not crashes: they are re-raised in
the parent as :class:`EvaluationTaskError` carrying the worker's
traceback, matching serial behavior.
"""

from __future__ import annotations

import multiprocessing
import sys
import traceback
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..core.cache import CompileCache, default_cache_dir
from ..observability import (
    CAT_WORKER,
    MetricsRegistry,
    RunLedger,
    Tracer,
    current_ledger,
    current_metrics,
    current_tracer,
    install_ledger,
    install_telemetry,
)
from .harness import RunOutcome, run_kernel, set_compile_cache


class EvaluationTaskError(RuntimeError):
    """A sweep task failed; carries the worker-side traceback."""

    def __init__(self, index: int, message: str):
        super().__init__(f"evaluation task #{index} failed:\n{message}")
        self.index = index


def shard_tasks(count: int, jobs: int,
                groups: Optional[Sequence] = None) -> List[List[int]]:
    """Round-robin task indices into ``jobs`` shards, order-preserving.

    Without ``groups``, task ``i`` goes to shard ``i % jobs`` -- a pure
    function of the grid, never of scheduling -- so reruns assign
    identical work and per-shard compile-cache warmth is reproducible.

    With ``groups`` (one hashable key per task), whole groups are
    round-robined instead: every task sharing a key lands in the same
    shard, groups are assigned in first-occurrence order (group ``g``
    to shard ``g % jobs``), and each shard keeps its tasks in grid
    order.  The evaluation drivers group by (kernel, backend, element
    type) so one worker holds all the points a batched execution could
    amortize over -- same compiled program, same precision -- instead
    of interleaving unrelated kernels; the assignment stays a pure
    function of the grid.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if groups is None:
        shards = [[] for _ in range(min(jobs, count) or 1)]
        for index in range(count):
            shards[index % len(shards)].append(index)
        return [shard for shard in shards if shard]
    groups = list(groups)
    if len(groups) != count:
        raise ValueError(f"groups must have one key per task: "
                         f"{len(groups)} keys for {count} tasks")
    members: "dict" = {}
    for index, key in enumerate(groups):
        members.setdefault(key, []).append(index)
    shards = [[] for _ in range(min(jobs, len(members)) or 1)]
    for g, key in enumerate(members):
        shards[g % len(shards)].extend(members[key])
    for shard in shards:
        shard.sort()
    return [shard for shard in shards if shard]


# ----------------------------------------------------------------- #
# Worker side
# ----------------------------------------------------------------- #

def init_worker_runtime(cache_dir: Optional[str], use_cache: bool,
                        ledger_path: Optional[str] = None,
                        max_cache_bytes: Optional[int] = None) -> None:
    """Install one worker process's runtime state: the compile cache
    (process-global default, optionally size-bounded -- the service
    daemon's shared artifact store passes its byte budget here) and,
    when the parent has a run ledger, reopen it.  The ledger appends
    whole lines through one O_APPEND descriptor per process, so every
    worker writing to the same file is safe; under the spawn start
    method this is the only way the parent's programmatic
    ``install_ledger`` reaches the children (fork inherits it, but the
    per-PID descriptor logic reopens on first use either way).

    Shared by the sweep worker pool below and by the compile/run
    service's shards (:mod:`repro.service.worker`)."""
    cache = CompileCache(cache_dir, max_disk_bytes=max_cache_bytes) \
        if use_cache else None
    set_compile_cache(cache)
    if ledger_path is not None:
        install_ledger(RunLedger(ledger_path))


#: Pre-service spelling, kept for the pool initializer below.
_worker_init = init_worker_runtime


def _run_shard(fn: Callable, shard: List[Tuple[int, tuple]],
               telemetry: Tuple[bool, bool] = (False, False)):
    """Execute one shard's tasks in order; never raises (returns
    (triples, telemetry_payload) where the triples are per-task
    (index, ok, payload) so one failed point does not discard its
    siblings' finished work).

    ``telemetry`` mirrors the parent's installed (tracer, metrics)
    facets.  The worker installs *fresh* objects for the shard -- under
    the fork start method the parent's globals are inherited, and
    recording into them would both hide the data from the parent and
    double-count once the shard's payload is merged back -- and ships
    the results home as picklable plain data.
    """
    want_trace, want_metrics = telemetry
    if not (want_trace or want_metrics):
        results = []
        for index, args in shard:
            try:
                results.append((index, True, fn(*args)))
            except Exception:
                results.append((index, False, traceback.format_exc()))
        return results, None
    tracer = Tracer() if want_trace else None
    registry = MetricsRegistry() if want_metrics else None
    previous = install_telemetry(tracer, registry)
    try:
        span = tracer.span("worker.shard", cat=CAT_WORKER,
                           args={"tasks": len(shard)}) \
            if tracer is not None else None
        results = []
        for index, args in shard:
            try:
                results.append((index, True, fn(*args)))
            except Exception:
                results.append((index, False, traceback.format_exc()))
        if span is not None:
            span.args["failures"] = sum(1 for _, ok, _ in results
                                        if not ok)
            tracer.finish(span)
    finally:
        install_telemetry(*previous)
    payload = {
        "events": list(tracer.events) if tracer is not None else None,
        "metrics": registry.to_dict() if registry is not None else None,
    }
    return results, payload


def _merge_shard_telemetry(payload) -> None:
    """Fold one shard's telemetry payload into the parent's installed
    tracer/registry (no-ops for facets either side disabled)."""
    if not payload:
        return
    tracer = current_tracer()
    if tracer is not None and payload.get("events"):
        tracer.extend(payload["events"])
    registry = current_metrics()
    if registry is not None and payload.get("metrics"):
        registry.merge(MetricsRegistry.from_dict(payload["metrics"]))


# ----------------------------------------------------------------- #
# Engine
# ----------------------------------------------------------------- #

def _pool_context():
    """Fork where available (fast, inherits sys.path), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _run_serial(fn: Callable, tasks: Sequence[tuple],
                cache: Optional[CompileCache]) -> List[Any]:
    previous = set_compile_cache(cache)
    try:
        return [fn(*args) for args in tasks]
    finally:
        set_compile_cache(previous)


def _run_pool(fn: Callable, tasks: Sequence[tuple], jobs: int,
              cache_dir: Optional[str], use_cache: bool,
              groups: Optional[Sequence] = None) -> List[Any]:
    from concurrent.futures import ProcessPoolExecutor

    shards = shard_tasks(len(tasks), jobs, groups=groups)
    slots: List[Any] = [None] * len(tasks)
    failures: List[Tuple[int, str]] = []
    telemetry = (current_tracer() is not None,
                 current_metrics() is not None)
    ledger = current_ledger()
    ledger_path = str(ledger.path) if ledger is not None else None
    with ProcessPoolExecutor(
            max_workers=len(shards), mp_context=_pool_context(),
            initializer=_worker_init,
            initargs=(cache_dir, use_cache, ledger_path)) as pool:
        futures = [
            pool.submit(_run_shard, fn,
                        [(i, tasks[i]) for i in shard], telemetry)
            for shard in shards
        ]
        for future in futures:
            results, shard_telemetry = future.result()
            _merge_shard_telemetry(shard_telemetry)
            for index, ok, payload in results:
                if ok:
                    slots[index] = payload
                else:
                    failures.append((index, payload))
    if failures:
        index, text = min(failures)
        raise EvaluationTaskError(index, text)
    return slots


def parallel_map(fn: Callable, tasks: Sequence[tuple], jobs: int = 1,
                 cache_dir: Optional[str] = None,
                 compile_cache: bool = True,
                 groups: Optional[Sequence] = None) -> List[Any]:
    """Run ``fn(*args)`` for every args-tuple in ``tasks``.

    Results come back in task order.  ``fn`` must be a module-level
    callable (workers import it by reference) and both its arguments
    and results must pickle.

    ``jobs=1`` runs serially in-process.  ``cache_dir=None`` uses
    :func:`repro.core.cache.default_cache_dir`; ``compile_cache=False``
    disables compile caching entirely (every point pays the full
    middle-end, the uncached-baseline configuration).  ``groups``
    (one hashable key per task) keeps same-keyed tasks on one worker
    (see :func:`shard_tasks`); results still come back in task order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    tasks = list(tasks)
    if not tasks:
        return []
    resolved_dir = cache_dir if cache_dir is not None \
        else default_cache_dir()
    if jobs == 1 or len(tasks) == 1:
        cache = CompileCache(resolved_dir) if compile_cache else None
        return _run_serial(fn, tasks, cache)
    try:
        return _run_pool(fn, tasks, jobs, resolved_dir, compile_cache,
                         groups=groups)
    except EvaluationTaskError:
        raise
    except Exception as error:
        # Broken pool / unpicklable environment / no semaphores:
        # degrade to the serial engine rather than failing the sweep.
        print(f"warning: parallel evaluation degraded to serial "
              f"({type(error).__name__}: {error})", file=sys.stderr)
        cache = CompileCache(resolved_dir) if compile_cache else None
        return _run_serial(fn, tasks, cache)


# ----------------------------------------------------------------- #
# Kernel grids
# ----------------------------------------------------------------- #

@dataclass(frozen=True)
class GridPoint:
    """One (kernel, ftype, n, backend) sweep point.

    ``options`` holds extra :func:`run_kernel` keyword arguments as a
    sorted tuple of items, keeping the point hashable and picklable.
    """

    kernel: str
    ftype: str
    n: int
    backend: str = "none"
    options: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kernel: str, ftype: str, n: int,
             backend: str = "none", **options) -> "GridPoint":
        return cls(kernel, ftype, n, backend,
                   tuple(sorted(options.items())))


def _eval_point(point: GridPoint) -> RunOutcome:
    return run_kernel(point.kernel, point.ftype, point.n,
                      backend=point.backend, **dict(point.options))


def _point_group(point: GridPoint):
    """The batchable-group key of a sweep point: every point sharing
    it compiles to the same program at the same precision, so one
    worker can amortize compilation -- and batched execution -- over
    the whole group.  Unparseable element types fall back to their
    literal spelling (run_kernel will surface the error)."""
    from .harness import canonical_source_ftype

    try:
        ftype = canonical_source_ftype(point.ftype)
    except ValueError:
        ftype = point.ftype
    return (point.kernel, point.backend, ftype)


def run_grid(points: Sequence[GridPoint], jobs: int = 1,
             cache_dir: Optional[str] = None,
             compile_cache: bool = True) -> List[RunOutcome]:
    """Evaluate a grid of sweep points; outcomes in grid order.

    Points are sharded by batchable group -- (kernel, backend,
    canonical element type) -- so each worker sweeps whole
    same-program groups instead of an interleaving of unrelated
    kernels (better compile-cache locality, and the shard a batched
    engine can amortize over).  Results are bit-identical either way.
    """
    points = list(points)
    return parallel_map(_eval_point, [(p,) for p in points], jobs=jobs,
                        cache_dir=cache_dir, compile_cache=compile_cache,
                        groups=[_point_group(p) for p in points])
