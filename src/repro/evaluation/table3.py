"""Table III: hex encodings of the FP literal 1.3 across vpfloat types."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..bigfloat import from_str
from ..unum import UnumConfig, chunked_hex, mpfr_literal_bits, paper_literal_bits

#: (kind, params, paper's published string).  Two rows differ from the
#: paper by one typeset nibble (see EXPERIMENTS.md); fields all match.
ROWS = (
    ("unum", (3, 6, 6), "0xV001FE999999A"),
    ("unum", (4, 9, 20), "0xV99999999999999999999999999990001FFFE"),
    ("mpfr", (8, 48), "0xY0FF4CCCCCCCCCD"),
    ("mpfr", (8, 64), "0xY4CCCCCCCCCCCCCCD0FF"),
    ("mpfr", (16, 100), "0xYCCCCCCCCCCCCCCCCD0FFFF4CCCCCCC"),
)


@dataclass
class Table3Row:
    declaration: str
    encoded: str
    paper: str

    @property
    def matches_paper(self) -> bool:
        return self.encoded == self.paper


def run_table3() -> List[Table3Row]:
    value = from_str("1.3", 700)
    rows: List[Table3Row] = []
    for kind, params, paper in ROWS:
        if kind == "unum":
            ess, fss, size = params if len(params) == 3 else (*params, None)
            config = UnumConfig(ess, fss, size)
            bits = paper_literal_bits(value, config)
            text = chunked_hex(bits, config.total_bits, "V")
            decl = str(config)
        else:
            exp_bits, prec_bits = params
            bits = mpfr_literal_bits(value, exp_bits, prec_bits)
            text = chunked_hex(bits, 1 + exp_bits + prec_bits, "Y")
            decl = f"vpfloat<mpfr, {exp_bits}, {prec_bits}>"
        rows.append(Table3Row(decl, text, paper))
    return rows


def format_table3(rows: List[Table3Row]) -> str:
    lines = ["Table III -- literal 1.3 in different vpfloat types", ""]
    for row in rows:
        marker = "(= paper)" if row.matches_paper else "(~ paper, see notes)"
        lines.append(f"{row.declaration:<24} {row.encoded} {marker}")
        if not row.matches_paper:
            lines.append(f"{'':<24} paper: {row.paper}")
    return "\n".join(lines)


def main() -> str:
    text = format_table3(run_table3())
    print(text)
    return text
