"""Rounding modes and the core correctly-rounded normalization step.

This module is the heart of the MPFR stand-in (see DESIGN.md): every
arithmetic operation in :mod:`repro.bigfloat.arith` computes an *exact*
intermediate result as an integer significand scaled by a power of two,
optionally with a sticky flag for discarded low bits, and then calls
:func:`round_significand` exactly once.  This mirrors how GNU MPFR
guarantees correct rounding.
"""

from __future__ import annotations

import enum
from typing import Tuple


class RoundingMode(enum.Enum):
    """IEEE-754 / MPFR rounding modes supported by the library."""

    #: Round to nearest, ties to even (MPFR ``MPFR_RNDN``).
    NEAREST_EVEN = "RNDN"
    #: Round toward zero (``MPFR_RNDZ``).
    TOWARD_ZERO = "RNDZ"
    #: Round toward plus infinity (``MPFR_RNDU``).
    TOWARD_POSITIVE = "RNDU"
    #: Round toward minus infinity (``MPFR_RNDD``).
    TOWARD_NEGATIVE = "RNDD"
    #: Round to nearest, ties away from zero (``MPFR_RNDA`` tie behaviour).
    NEAREST_AWAY = "RNDA"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RoundingMode.{self.name}"


#: Module-wide shorthand aliases.
RNDN = RoundingMode.NEAREST_EVEN
RNDZ = RoundingMode.TOWARD_ZERO
RNDU = RoundingMode.TOWARD_POSITIVE
RNDD = RoundingMode.TOWARD_NEGATIVE
RNDA = RoundingMode.NEAREST_AWAY


def _should_increment(
    rm: RoundingMode, sign: int, q_odd: bool, low: int, half: int, sticky: bool
) -> bool:
    """Decide whether the truncated significand must be incremented.

    ``low`` is the value of the discarded bits within the shift window,
    ``half`` is the window midpoint (``1 << (shift - 1)``), and ``sticky``
    records whether any nonzero bits were discarded *below* the window.
    """
    if low == 0 and not sticky:
        return False  # exact: never adjust
    if rm is RoundingMode.TOWARD_ZERO:
        return False
    if rm is RoundingMode.TOWARD_POSITIVE:
        return sign == 0
    if rm is RoundingMode.TOWARD_NEGATIVE:
        return sign == 1
    # Nearest modes.
    if low > half:
        return True
    if low < half:
        return False
    # low == half exactly within the window.
    if sticky:
        return True  # strictly above the midpoint
    if rm is RoundingMode.NEAREST_AWAY:
        return True
    return q_odd  # ties-to-even


def round_significand(
    sign: int,
    mant: int,
    exp: int,
    prec: int,
    rm: RoundingMode = RNDN,
    sticky: bool = False,
) -> Tuple[int, int, bool]:
    """Round the exact value ``(-1)**sign * mant * 2**exp`` to ``prec`` bits.

    ``mant`` must be a positive integer.  ``sticky`` indicates that the true
    value lies strictly between ``mant * 2**exp`` and ``(mant + 1) * 2**exp``
    (used by division, square root and conversions that cannot produce an
    exact integer significand).

    Returns ``(mant', exp', inexact)`` where ``mant'`` is normalized to
    exactly ``prec`` bits (``2**(prec-1) <= mant' < 2**prec``) and the
    rounded value is ``(-1)**sign * mant' * 2**exp'``.  ``inexact`` is True
    when rounding changed the value (the MPFR ternary flag, as a boolean).
    """
    if mant <= 0:
        raise ValueError("round_significand requires a positive significand")
    if prec < 1:
        raise ValueError(f"precision must be >= 1, got {prec}")

    nbits = mant.bit_length()
    if nbits <= prec:
        # Value fits: widen to the canonical prec-bit normalization.
        shift_up = prec - nbits
        q = mant << shift_up
        e = exp - shift_up
        if sticky:
            # All discarded weight is strictly below the ulp: only the
            # directed modes (and never nearest, since it is below half
            # of an ulp only when the window is empty -- here the window
            # is conceptually infinite, sticky < half) can adjust.
            if _should_increment(rm, sign, bool(q & 1), 0, 1, True):
                q += 1
                if q >> prec:
                    q >>= 1
                    e += 1
            return q, e, True
        return q, e, False

    shift = nbits - prec
    low = mant & ((1 << shift) - 1)
    q = mant >> shift
    e = exp + shift
    half = 1 << (shift - 1)
    inexact = bool(low) or sticky
    if _should_increment(rm, sign, bool(q & 1), low, half, sticky):
        q += 1
        if q >> prec:  # carry rippled out: 100...0 pattern
            q >>= 1
            e += 1
    return q, e, inexact
