"""Mathematical functions over :class:`BigFloat` (exp, log, sin, cos, ...).

The MPFR backend lowers calls like ``vpfloat_exp`` to these kernels (the
paper lists sqrt, cos, sin, log among the ``mpfr_op`` entry points).  Each
function evaluates a series in fixed-point integers at a working precision
``prec + guard`` and rounds once at the end; the guard bits absorb the
series truncation and fixed-point noise, which tests validate against
``math`` at 53 bits and against published constant digits at high
precision.
"""

from __future__ import annotations

import functools

from .number import BigFloat, Kind
from .rounding import RNDN, RoundingMode, round_significand

#: Extra working bits beyond the requested precision.
_GUARD = 48


# --------------------------------------------------------------------- #
# Fixed-point helpers: integers X representing x * 2**F.
# --------------------------------------------------------------------- #

def _fx_from_bigfloat(x: BigFloat, f: int) -> int:
    """Fixed-point (scale 2**f) value of a finite BigFloat, truncated."""
    shift = x.exp + f
    mag = x.mant << shift if shift >= 0 else x.mant >> -shift
    return -mag if x.sign else mag


def _fx_to_bigfloat(value: int, f: int, prec: int, rm: RoundingMode) -> BigFloat:
    if value == 0:
        return BigFloat.zero(prec)
    sign = 1 if value < 0 else 0
    mant, exp, _ = round_significand(sign, abs(value), -f, prec, rm)
    return BigFloat(Kind.FINITE, sign, mant, exp, prec)


def _fx_mul(a: int, b: int, f: int) -> int:
    return (a * b) >> f


def _fx_div(a: int, b: int, f: int) -> int:
    return (a << f) // b


@functools.lru_cache(maxsize=64)
def _ln2_fixed(f: int) -> int:
    """ln(2) * 2**f via ln 2 = 2 artanh(1/3)."""
    work = f + 16
    term = (1 << work) // 3
    nine = 9
    total = 0
    k = 0
    while term:
        total += term // (2 * k + 1)
        term //= nine
        k += 1
    return (2 * total) >> 16


@functools.lru_cache(maxsize=64)
def _pi_fixed(f: int) -> int:
    """pi * 2**f via Machin's formula 16 atan(1/5) - 4 atan(1/239)."""
    work = f + 16

    def atan_inv(n: int) -> int:
        term = (1 << work) // n
        n2 = n * n
        total = 0
        k = 0
        while term:
            contrib = term // (2 * k + 1)
            total += -contrib if k & 1 else contrib
            term //= n2
            k += 1
        return total

    return (16 * atan_inv(5) - 4 * atan_inv(239)) >> 16


def const_pi(prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """pi rounded to ``prec`` bits."""
    f = prec + _GUARD
    return _fx_to_bigfloat(_pi_fixed(f), f, prec, rm)


def const_log2(prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """ln(2) rounded to ``prec`` bits."""
    f = prec + _GUARD
    return _fx_to_bigfloat(_ln2_fixed(f), f, prec, rm)


def _exp_fixed(r: int, f: int) -> int:
    """e**r * 2**f for fixed-point |r| <= ln2/2."""
    one = 1 << f
    total = one
    term = one
    n = 1
    while term:
        term = _fx_mul(term, r, f)
        term = term // n if term >= 0 else -((-term) // n)
        total += term
        n += 1
    return total


def exp(x: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = e**x."""
    if x.is_nan():
        return BigFloat.nan(prec)
    if x.is_inf():
        return BigFloat.zero(prec) if x.sign else BigFloat.inf(prec)
    if x.is_zero():
        return BigFloat.from_int(1, prec, rm)
    f = prec + _GUARD
    # Clamp absurd magnitudes early: exp(x) for |x| > 2**40 would need an
    # astronomically large exponent; the unbounded representation could
    # hold it but no caller needs it.
    if x.exponent() > 40:
        raise OverflowError("exp argument magnitude too large to evaluate")
    fx = _fx_from_bigfloat(x, f)
    ln2 = _ln2_fixed(f)
    k = (fx + (ln2 // 2 if fx >= 0 else -(ln2 // 2))) // ln2
    r = fx - k * ln2
    result = _exp_fixed(r, f)
    return _fx_to_bigfloat(result, f - int(k), prec, rm)


def log(x: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = ln(x); log of a negative number is NaN, log(0) = -inf."""
    if x.is_nan():
        return BigFloat.nan(prec)
    if x.is_zero():
        return BigFloat.inf(prec, sign=1)
    if x.sign == 1:
        return BigFloat.nan(prec)
    if x.is_inf():
        return BigFloat.inf(prec)
    # Never truncate the input: near m == 1 every input bit matters.
    f = max(prec, x.prec) + _GUARD
    e = x.exponent() - 1  # x = m * 2**e with m in [1, 2)
    shift = f - (x.prec - 1)
    m = x.mant << shift if shift >= 0 else x.mant >> -shift
    one = 1 << f
    if m == one and e == 0:
        return BigFloat.zero(prec)
    if m - one != 0 and e == 0:
        # ln(m) for m near 1 loses leading bits proportional to how close
        # m is to 1; widen the fixed-point scale to compensate.
        lost = f - (m - one).bit_length()
        if lost > 0:
            f += lost
            shift = f - (x.prec - 1)
            m = x.mant << shift if shift >= 0 else x.mant >> -shift
            one = 1 << f
    t = _fx_div(m - one, m + one, f)
    t2 = _fx_mul(t, t, f)
    total = 0
    term = t
    k = 0
    while term:
        total += term // (2 * k + 1)
        term = _fx_mul(term, t2, f)
        k += 1
    ln_m = 2 * total
    result = ln_m + e * _ln2_fixed(f)
    return _fx_to_bigfloat(result, f, prec, rm)


def log2(x: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = log base 2 of x."""
    work = prec + 16
    from . import arith

    return arith.div(log(x, work), const_log2(work), prec, rm)


def log10(x: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = log base 10 of x."""
    work = prec + 16
    from . import arith

    ln10 = log(BigFloat.from_int(10, work), work)
    return arith.div(log(x, work), ln10, prec, rm)


def _sin_fixed(r: int, f: int) -> int:
    total = r
    term = r
    r2 = _fx_mul(r, r, f)
    k = 1
    while term:
        term = _fx_mul(term, r2, f)
        d = (2 * k) * (2 * k + 1)
        term = -(term // d) if term >= 0 else (-term) // d
        total += term
        k += 1
    return total


def _cos_fixed(r: int, f: int) -> int:
    one = 1 << f
    total = one
    term = one
    r2 = _fx_mul(r, r, f)
    k = 1
    while term:
        term = _fx_mul(term, r2, f)
        d = (2 * k - 1) * (2 * k)
        term = -(term // d) if term >= 0 else (-term) // d
        total += term
        k += 1
    return total


def _sincos_reduce(x: BigFloat, f: int) -> tuple[int, int]:
    """Reduce x to (r, quadrant) with |r| <= pi/4."""
    fx = _fx_from_bigfloat(x, f)
    half_pi = _pi_fixed(f) // 2
    n = (fx + (half_pi // 2 if fx >= 0 else -(half_pi // 2))) // half_pi
    r = fx - n * half_pi
    return r, n & 3


def sin(x: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = sin(x)."""
    if x.is_nan() or x.is_inf():
        return BigFloat.nan(prec)
    if x.is_zero():
        return BigFloat.zero(prec, x.sign)
    if x.exponent() < -(2 * prec + 8):
        # sin(x) = x to well beyond the target precision.
        return x.round_to(prec, rm)
    f = prec + _GUARD + abs(x.exponent())
    r, quadrant = _sincos_reduce(x, f)
    if quadrant == 0:
        value = _sin_fixed(r, f)
    elif quadrant == 1:
        value = _cos_fixed(r, f)
    elif quadrant == 2:
        value = -_sin_fixed(r, f)
    else:
        value = -_cos_fixed(r, f)
    return _fx_to_bigfloat(value, f, prec, rm)


def cos(x: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = cos(x)."""
    if x.is_nan() or x.is_inf():
        return BigFloat.nan(prec)
    if x.is_zero():
        return BigFloat.from_int(1, prec, rm)
    if x.exponent() < -(2 * prec + 8):
        # cos(x) = 1 - x**2/2 rounds to 1 at this precision.
        return BigFloat.from_int(1, prec, rm)
    f = prec + _GUARD + abs(x.exponent())
    r, quadrant = _sincos_reduce(x, f)
    if quadrant == 0:
        value = _cos_fixed(r, f)
    elif quadrant == 1:
        value = -_sin_fixed(r, f)
    elif quadrant == 2:
        value = -_cos_fixed(r, f)
    else:
        value = _sin_fixed(r, f)
    return _fx_to_bigfloat(value, f, prec, rm)


def tan(x: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = tan(x) = sin(x)/cos(x) at extended working precision."""
    from . import arith

    work = prec + 16
    return arith.div(sin(x, work), cos(x, work), prec, rm)


def pow(x: BigFloat, y: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = x**y via exp(y ln x); integer y on negative x is supported."""
    from . import arith

    if x.is_nan() or y.is_nan():
        return BigFloat.nan(prec)
    if y.is_zero():
        return BigFloat.from_int(1, prec, rm)
    if x.is_zero():
        return BigFloat.zero(prec) if y.sign == 0 else BigFloat.inf(prec)
    work = prec + 32
    if x.sign == 1:
        # Negative base: only exact integer exponents are meaningful.
        if y.is_finite() and not y.is_zero() and _is_integer(y):
            n = y.to_int()
            result = pow(abs(x), y, prec, rm)
            return -result if n & 1 else result
        return BigFloat.nan(prec)
    return exp(arith.mul(y.round_to(work), log(x, work), work), prec, rm)


def _is_integer(x: BigFloat) -> bool:
    if not x.is_finite():
        return False
    if x.is_zero():
        return True
    if x.exp >= 0:
        return True
    shift = -x.exp
    return (x.mant & ((1 << shift) - 1)) == 0
