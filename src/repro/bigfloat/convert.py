"""Decimal string conversions for :class:`BigFloat`.

Parsing goes through exact rational arithmetic (``"1.3"`` becomes 13/10)
followed by a single correctly-rounded binary conversion, exactly like
``mpfr_set_str``.  Formatting produces round-trippable scientific notation
with a digit count derived from the binary precision.
"""

from __future__ import annotations

import math
import re

from .number import BigFloat, Kind
from .rounding import RNDN, RoundingMode

_DECIMAL_RE = re.compile(
    r"""^\s*
    (?P<sign>[+-])?
    (?:
        (?P<int>\d+)(?:\.(?P<frac>\d*))?
        |
        \.(?P<fraconly>\d+)
    )
    (?:[eE](?P<exp>[+-]?\d+))?
    \s*$""",
    re.VERBOSE,
)


def from_str(text: str, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """Parse a decimal literal into a correctly-rounded BigFloat."""
    stripped = text.strip().lower()
    # At most one sign character, consumed once; "+-inf"/"--nan" and
    # friends fall through to the numeric pattern and are rejected.
    sign = 0
    body = stripped
    if body[:1] in ("+", "-"):
        sign = 1 if body[0] == "-" else 0
        body = body[1:]
    if body in ("inf", "infinity"):
        return BigFloat.inf(prec, sign)
    if body == "nan":
        return BigFloat.nan(prec)

    match = _DECIMAL_RE.match(stripped)
    if not match:
        raise ValueError(f"invalid decimal literal: {text!r}")
    int_part = match.group("int") or ""
    frac_part = match.group("frac") or match.group("fraconly") or ""
    exp10 = int(match.group("exp") or 0)
    digits = (int_part + frac_part) or "0"
    numerator = int(digits)
    if match.group("sign") == "-":
        numerator = -numerator
    exp10 -= len(frac_part)
    if numerator == 0:
        return BigFloat.zero(prec, 1 if match.group("sign") == "-" else 0)
    if exp10 >= 0:
        return BigFloat.from_fraction(numerator * 10**exp10, 1, prec, rm)
    return BigFloat.from_fraction(numerator, 10 ** (-exp10), prec, rm)


def decimal_digits_for(prec: int) -> int:
    """Significant decimal digits that round-trip a ``prec``-bit value."""
    return max(2, int(math.ceil(prec * math.log10(2))) + 1)


def to_str(x: BigFloat, digits: int | None = None) -> str:
    """Format in scientific notation with ``digits`` significant digits."""
    if x.kind is Kind.NAN:
        return "nan"
    if x.kind is Kind.INF:
        return "-inf" if x.sign else "inf"
    if x.kind is Kind.ZERO:
        return "-0.0" if x.sign else "0.0"
    if digits is None:
        digits = decimal_digits_for(x.prec)

    # Estimate the decimal exponent from the binary one, then correct it.
    bin_exp = x.exponent()  # value in [2**(e-1), 2**e)
    dec_exp = int(math.floor((bin_exp - 1) * math.log10(2)))
    mantissa_digits = _scaled_decimal(x.mant, x.exp, digits - 1 - dec_exp)
    while len(str(mantissa_digits)) > digits:
        dec_exp += 1
        mantissa_digits = _scaled_decimal(x.mant, x.exp, digits - 1 - dec_exp)
    while len(str(mantissa_digits)) < digits:
        dec_exp -= 1
        mantissa_digits = _scaled_decimal(x.mant, x.exp, digits - 1 - dec_exp)

    text = str(mantissa_digits)
    body = text[0] + "." + (text[1:] or "0")
    sign = "-" if x.sign else ""
    return f"{sign}{body}e{dec_exp:+03d}"


def _scaled_decimal(mant: int, exp: int, p: int) -> int:
    """round(mant * 2**exp * 10**p) computed exactly (ties away)."""
    if exp >= 0:
        n = mant << exp
        if p >= 0:
            return n * 10**p
        q, r = divmod(n, 10**-p)
        return q + (1 if 2 * r >= 10**-p else 0)
    denom = 1 << (-exp)
    if p >= 0:
        num = mant * 10**p
    else:
        num = mant
        denom *= 10**-p
    q, r = divmod(num, denom)
    return q + (1 if 2 * r >= denom else 0)


def log10_magnitude(x: BigFloat) -> float:
    """Approximate log10(|x|) without overflowing floats (for reporting)."""
    if x.is_zero():
        return -math.inf
    if x.is_nan():
        return math.nan
    if x.is_inf():
        return math.inf
    frac = x.mant / (1 << (x.prec - 1))  # in [1, 2)
    return (x.exponent() - 1) * math.log10(2) + math.log10(frac)
