"""Immutable arbitrary-precision binary floating-point values.

A :class:`BigFloat` mirrors an MPFR number: it carries its own precision
(number of significand bits) and represents::

    value = (-1)**sign * mant * 2**exp

with ``mant`` normalized to exactly ``prec`` bits for finite nonzero
values.  Zeros are signed; infinities and NaN are explicit kinds.  The
exponent is unbounded (MPFR's practical behaviour for the ranges the
paper exercises).

Values are immutable; the mutable, C-style object layer used by the MPFR
backend lives in :mod:`repro.bigfloat.mpfr_api`.
"""

from __future__ import annotations

import enum
import math
from typing import Union

from .rounding import RNDN, RoundingMode, round_significand

#: Default precision (bits of significand) when none is given, matching
#: MPFR's ``mpfr_set_default_prec`` default of 53.
DEFAULT_PRECISION = 53


class Kind(enum.Enum):
    """Classification of a BigFloat value."""

    FINITE = "finite"  # nonzero finite
    ZERO = "zero"
    INF = "inf"
    NAN = "nan"


class BigFloat:
    """An immutable correctly-rounded binary floating-point number.

    Construction normally goes through the classmethods
    (:meth:`from_int`, :meth:`from_float`, :meth:`from_fraction`) or
    :func:`repro.bigfloat.convert.from_str`; the raw constructor takes
    already-normalized fields.
    """

    __slots__ = ("kind", "sign", "mant", "exp", "prec")

    def __init__(self, kind: Kind, sign: int, mant: int, exp: int, prec: int):
        if prec < 1:
            raise ValueError(f"precision must be >= 1, got {prec}")
        if sign not in (0, 1):
            raise ValueError(f"sign must be 0 or 1, got {sign}")
        if kind is Kind.FINITE:
            if mant.bit_length() != prec:
                raise ValueError(
                    f"finite significand must be normalized to {prec} bits, "
                    f"got {mant.bit_length()} bits"
                )
        elif mant != 0 or exp != 0:
            raise ValueError(f"{kind} values must carry mant=0, exp=0")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "sign", sign)
        object.__setattr__(self, "mant", mant)
        object.__setattr__(self, "exp", exp)
        object.__setattr__(self, "prec", prec)

    def __setattr__(self, name, value):  # noqa: D105
        raise AttributeError("BigFloat is immutable")

    def __reduce__(self):
        # Slotted + immutable, so default pickling would try setattr;
        # rebuild through the validating constructor instead.
        return (BigFloat, (self.kind, self.sign, self.mant,
                           self.exp, self.prec))

    # ---------------------------------------------------------------- #
    # Constructors
    # ---------------------------------------------------------------- #

    @classmethod
    def zero(cls, prec: int = DEFAULT_PRECISION, sign: int = 0) -> "BigFloat":
        """Signed zero at the given precision."""
        return cls(Kind.ZERO, sign, 0, 0, prec)

    @classmethod
    def inf(cls, prec: int = DEFAULT_PRECISION, sign: int = 0) -> "BigFloat":
        """Signed infinity."""
        return cls(Kind.INF, sign, 0, 0, prec)

    @classmethod
    def nan(cls, prec: int = DEFAULT_PRECISION) -> "BigFloat":
        """Quiet NaN."""
        return cls(Kind.NAN, 0, 0, 0, prec)

    @classmethod
    def from_int(
        cls, value: int, prec: int = DEFAULT_PRECISION, rm: RoundingMode = RNDN
    ) -> "BigFloat":
        """Convert a Python int, rounding to ``prec`` bits if needed."""
        if value == 0:
            return cls.zero(prec)
        sign = 1 if value < 0 else 0
        mant, exp, _ = round_significand(sign, abs(value), 0, prec, rm)
        return cls(Kind.FINITE, sign, mant, exp, prec)

    @classmethod
    def from_float(
        cls, value: float, prec: int = DEFAULT_PRECISION, rm: RoundingMode = RNDN
    ) -> "BigFloat":
        """Convert a Python float (IEEE binary64), rounding if prec < 53."""
        if math.isnan(value):
            return cls.nan(prec)
        if math.isinf(value):
            return cls.inf(prec, sign=1 if value < 0 else 0)
        if value == 0.0:
            return cls.zero(prec, sign=1 if math.copysign(1.0, value) < 0 else 0)
        sign = 1 if value < 0 else 0
        m, e = math.frexp(abs(value))  # value = m * 2**e, 0.5 <= m < 1
        mant = int(m * (1 << 53))
        exp = e - 53
        while mant & 1 == 0:
            mant >>= 1
            exp += 1
        mant, exp, _ = round_significand(sign, mant, exp, prec, rm)
        return cls(Kind.FINITE, sign, mant, exp, prec)

    @classmethod
    def from_fraction(
        cls,
        numerator: int,
        denominator: int,
        prec: int = DEFAULT_PRECISION,
        rm: RoundingMode = RNDN,
    ) -> "BigFloat":
        """Correctly-rounded conversion of an exact rational number.

        Used by decimal string parsing ("1.3" = 13/10) and by exact
        residual computations in the evaluation harness.
        """
        if denominator == 0:
            raise ZeroDivisionError("from_fraction with zero denominator")
        if numerator == 0:
            return cls.zero(prec)
        sign = 0
        if numerator < 0:
            sign ^= 1
            numerator = -numerator
        if denominator < 0:
            sign ^= 1
            denominator = -denominator
        # Scale the numerator so the quotient carries prec + 2 guard bits.
        shift = prec + 2 - (numerator.bit_length() - denominator.bit_length())
        if shift < 0:
            shift = 0
        q, r = divmod(numerator << shift, denominator)
        mant, exp, _ = round_significand(sign, q, -shift, prec, rm, sticky=bool(r))
        return cls(Kind.FINITE, sign, mant, exp, prec)

    @classmethod
    def from_value(
        cls,
        value: Union["BigFloat", int, float],
        prec: int = DEFAULT_PRECISION,
        rm: RoundingMode = RNDN,
    ) -> "BigFloat":
        """Coerce ints, floats, or BigFloats to a BigFloat of ``prec`` bits."""
        if isinstance(value, BigFloat):
            return value.round_to(prec, rm)
        if isinstance(value, bool):
            raise TypeError("cannot convert bool to BigFloat")
        if isinstance(value, int):
            return cls.from_int(value, prec, rm)
        if isinstance(value, float):
            return cls.from_float(value, prec, rm)
        raise TypeError(f"cannot convert {type(value).__name__} to BigFloat")

    # ---------------------------------------------------------------- #
    # Classification
    # ---------------------------------------------------------------- #

    def is_nan(self) -> bool:
        return self.kind is Kind.NAN

    def is_inf(self) -> bool:
        return self.kind is Kind.INF

    def is_zero(self) -> bool:
        return self.kind is Kind.ZERO

    def is_finite(self) -> bool:
        return self.kind in (Kind.FINITE, Kind.ZERO)

    def is_negative(self) -> bool:
        """True when the sign bit is set (including -0 and -inf)."""
        return self.sign == 1

    # ---------------------------------------------------------------- #
    # Rounding / precision changes
    # ---------------------------------------------------------------- #

    def round_to(self, prec: int, rm: RoundingMode = RNDN) -> "BigFloat":
        """Return this value rounded to a (possibly different) precision."""
        if self.kind is not Kind.FINITE:
            return BigFloat(self.kind, self.sign, 0, 0, prec)
        mant, exp, _ = round_significand(self.sign, self.mant, self.exp, prec, rm)
        return BigFloat(Kind.FINITE, self.sign, mant, exp, prec)

    # ---------------------------------------------------------------- #
    # Conversions out
    # ---------------------------------------------------------------- #

    def to_float(self) -> float:
        """Round to IEEE binary64 (RNDN) and return a Python float."""
        if self.kind is Kind.NAN:
            return math.nan
        if self.kind is Kind.INF:
            return -math.inf if self.sign else math.inf
        if self.kind is Kind.ZERO:
            return -0.0 if self.sign else 0.0
        mant, exp, _ = round_significand(self.sign, self.mant, self.exp, 53)
        try:
            result = math.ldexp(float(mant), exp)
        except OverflowError:
            result = math.inf
        return -result if self.sign else result

    def to_int(self) -> int:
        """Truncate toward zero to a Python int."""
        if self.kind is Kind.NAN:
            raise ValueError("cannot convert NaN to int")
        if self.kind is Kind.INF:
            raise OverflowError("cannot convert infinity to int")
        if self.kind is Kind.ZERO:
            return 0
        if self.exp >= 0:
            magnitude = self.mant << self.exp
        else:
            magnitude = self.mant >> -self.exp
        return -magnitude if self.sign else magnitude

    def exponent(self) -> int:
        """The MPFR-style exponent: value in [2**(e-1), 2**e)."""
        if self.kind is not Kind.FINITE:
            raise ValueError(f"exponent of {self.kind.value} value")
        return self.exp + self.prec

    # ---------------------------------------------------------------- #
    # Comparison helpers (total over non-NaN; NaN compares unordered)
    # ---------------------------------------------------------------- #

    def _cmp_magnitude(self, other: "BigFloat") -> int:
        """Compare |self| vs |other| for finite nonzero values."""
        ea, eb = self.exponent(), other.exponent()
        if ea != eb:
            return -1 if ea < eb else 1
        # Align significands to a common scale.
        pa, pb = self.prec, other.prec
        ma = self.mant << max(0, pb - pa)
        mb = other.mant << max(0, pa - pb)
        if ma == mb:
            return 0
        return -1 if ma < mb else 1

    def compare(self, other: "BigFloat") -> int:
        """Three-way compare; raises on NaN operands (MPFR sets erange)."""
        if self.is_nan() or other.is_nan():
            raise ValueError("comparison with NaN is unordered")
        a_neg = self.sign == 1 and not self.is_zero()
        b_neg = other.sign == 1 and not other.is_zero()
        if self.is_zero() and other.is_zero():
            return 0
        if self.is_zero():
            return 1 if b_neg else -1
        if other.is_zero():
            return -1 if a_neg else 1
        if a_neg != b_neg:
            return -1 if a_neg else 1
        if self.is_inf() or other.is_inf():
            if self.is_inf() and other.is_inf():
                return 0
            mag = 1 if self.is_inf() else -1
        else:
            mag = self._cmp_magnitude(other)
        return -mag if a_neg else mag

    # Rich comparisons follow IEEE semantics: NaN is unordered.
    def __eq__(self, other) -> bool:
        if not isinstance(other, BigFloat):
            return NotImplemented
        if self.is_nan() or other.is_nan():
            return False
        return self.compare(other) == 0

    def __lt__(self, other) -> bool:
        if self.is_nan() or other.is_nan():
            return False
        return self.compare(other) < 0

    def __le__(self, other) -> bool:
        if self.is_nan() or other.is_nan():
            return False
        return self.compare(other) <= 0

    def __gt__(self, other) -> bool:
        if self.is_nan() or other.is_nan():
            return False
        return self.compare(other) > 0

    def __ge__(self, other) -> bool:
        if self.is_nan() or other.is_nan():
            return False
        return self.compare(other) >= 0

    def __hash__(self) -> int:
        if self.kind is Kind.FINITE:
            return hash((self.sign, self.mant, self.exp))
        return hash((self.kind, self.sign))

    # ---------------------------------------------------------------- #
    # Sign manipulation
    # ---------------------------------------------------------------- #

    def __neg__(self) -> "BigFloat":
        if self.kind is Kind.NAN:
            return self
        return BigFloat(self.kind, self.sign ^ 1, self.mant, self.exp, self.prec)

    def __abs__(self) -> "BigFloat":
        if self.kind is Kind.NAN:
            return self
        return BigFloat(self.kind, 0, self.mant, self.exp, self.prec)

    def copysign(self, other: "BigFloat") -> "BigFloat":
        return BigFloat(self.kind, other.sign, self.mant, self.exp, self.prec)

    # ---------------------------------------------------------------- #
    # Arithmetic operators (delegate to repro.bigfloat.arith at the
    # operands' max precision, RNDN) -- convenience for tests/solvers.
    # ---------------------------------------------------------------- #

    def _binop(self, other, op):
        from . import arith

        if isinstance(other, (int, float)):
            other = BigFloat.from_value(other, self.prec)
        elif not isinstance(other, BigFloat):
            return NotImplemented
        return op(self, other, max(self.prec, other.prec), RNDN)

    def __add__(self, other):
        from . import arith

        return self._binop(other, arith.add)

    def __radd__(self, other):
        return self.__add__(other)

    def __sub__(self, other):
        from . import arith

        return self._binop(other, arith.sub)

    def __rsub__(self, other):
        result = self.__sub__(other)
        return -result if result is not NotImplemented else result

    def __mul__(self, other):
        from . import arith

        return self._binop(other, arith.mul)

    def __rmul__(self, other):
        return self.__mul__(other)

    def __truediv__(self, other):
        from . import arith

        return self._binop(other, arith.div)

    def __rtruediv__(self, other):
        from . import arith

        if isinstance(other, (int, float)):
            other = BigFloat.from_value(other, self.prec)
        elif not isinstance(other, BigFloat):
            return NotImplemented
        return arith.div(other, self, max(self.prec, other.prec), RNDN)

    # ---------------------------------------------------------------- #
    # Debug / display
    # ---------------------------------------------------------------- #

    def __repr__(self) -> str:
        if self.kind is Kind.NAN:
            return f"BigFloat(nan, prec={self.prec})"
        if self.kind is Kind.INF:
            return f"BigFloat({'-' if self.sign else '+'}inf, prec={self.prec})"
        if self.kind is Kind.ZERO:
            return f"BigFloat({'-' if self.sign else ''}0, prec={self.prec})"
        return (
            f"BigFloat({'-' if self.sign else ''}{self.mant}p{self.exp}, "
            f"prec={self.prec})"
        )

    def __str__(self) -> str:
        from .convert import to_str

        return to_str(self)

    def __float__(self) -> float:
        return self.to_float()


class _FastBigFloat(BigFloat):
    """Kernel-internal constructor that skips field validation.

    The specialized kernel tiers (:mod:`repro.codegen.smallfloat`,
    :mod:`repro.codegen.kernels`) construct values whose significands
    are normalized *by construction* -- the rounding tail guarantees
    ``2**(prec-1) <= mant < 2**prec`` -- so re-checking ``bit_length``
    and re-raising on malformed fields in ``BigFloat.__init__`` is pure
    overhead on the hottest path in the system.  This subclass restores
    plain attribute assignment and assigns the five slots directly.

    Instances are ordinary :class:`BigFloat` values everywhere else
    (same slots, comparisons, hashing, arithmetic); pickling goes
    through the inherited ``__reduce__`` and rebuilds a validating
    ``BigFloat``.  Nothing outside the kernel tiers should construct
    one, and nothing may mutate one after it escapes a kernel.
    """

    __slots__ = ()
    __setattr__ = object.__setattr__

    def __init__(self, kind: Kind, sign: int, mant: int, exp: int,
                 prec: int):
        self.kind = kind
        self.sign = sign
        self.mant = mant
        self.exp = exp
        self.prec = prec
