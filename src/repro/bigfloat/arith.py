"""Correctly-rounded arithmetic kernels for :class:`BigFloat`.

Every kernel computes an exact (or sticky-tagged) integer intermediate and
rounds exactly once via :func:`repro.bigfloat.rounding.round_significand`,
so results are correctly rounded in the requested mode -- the property the
paper relies on when it swaps MPFR precision for accuracy (Table I,
Fig. 3).

All kernels take an explicit result precision and rounding mode, mirroring
the ``mpfr_op(dest, src1, src2, rnd)`` shape of the MPFR API where the
destination carries the precision.
"""

from __future__ import annotations

from typing import Tuple

from .number import BigFloat, Kind
from .rounding import RNDN, RoundingMode, round_significand


def _make(sign: int, mant: int, exp: int, prec: int, rm: RoundingMode,
          sticky: bool = False) -> BigFloat:
    mant, exp, _ = round_significand(sign, mant, exp, prec, rm, sticky)
    return BigFloat(Kind.FINITE, sign, mant, exp, prec)


def _signed_zero(rm: RoundingMode, prec: int) -> BigFloat:
    """Sign of an exact zero sum of nonzero (or opposite-signed zero)
    operands: +0 in every mode except round-toward-negative, which gives
    -0 (IEEE 754 §6.3, followed by ``mpfr_add``/``mpfr_fma``)."""
    sign = 1 if rm is RoundingMode.TOWARD_NEGATIVE else 0
    return BigFloat.zero(prec, sign)


def _exact_pair(x: BigFloat) -> Tuple[int, int]:
    """Finite nonzero value as (signed integer significand, exponent)."""
    m = x.mant if x.sign == 0 else -x.mant
    return m, x.exp


def add(a: BigFloat, b: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = a + b, correctly rounded to ``prec`` bits."""
    if a.is_nan() or b.is_nan():
        return BigFloat.nan(prec)
    if a.is_inf() or b.is_inf():
        if a.is_inf() and b.is_inf():
            if a.sign != b.sign:
                return BigFloat.nan(prec)
            return BigFloat.inf(prec, a.sign)
        src = a if a.is_inf() else b
        return BigFloat.inf(prec, src.sign)
    if a.is_zero() and b.is_zero():
        if a.sign == b.sign:
            return BigFloat.zero(prec, a.sign)
        return _signed_zero(rm, prec)
    if a.is_zero():
        return b.round_to(prec, rm)
    if b.is_zero():
        return a.round_to(prec, rm)

    ma, ea = _exact_pair(a)
    mb, eb = _exact_pair(b)
    e = min(ea, eb)
    total = (ma << (ea - e)) + (mb << (eb - e))
    if total == 0:
        return _signed_zero(rm, prec)
    sign = 1 if total < 0 else 0
    return _make(sign, abs(total), e, prec, rm)


def sub(a: BigFloat, b: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = a - b."""
    return add(a, -b, prec, rm)


def mul(a: BigFloat, b: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = a * b."""
    if a.is_nan() or b.is_nan():
        return BigFloat.nan(prec)
    sign = a.sign ^ b.sign
    if a.is_inf() or b.is_inf():
        if a.is_zero() or b.is_zero():
            return BigFloat.nan(prec)  # 0 * inf
        return BigFloat.inf(prec, sign)
    if a.is_zero() or b.is_zero():
        return BigFloat.zero(prec, sign)
    return _make(sign, a.mant * b.mant, a.exp + b.exp, prec, rm)


def div(a: BigFloat, b: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = a / b; division by zero yields a signed infinity (MPFR)."""
    if a.is_nan() or b.is_nan():
        return BigFloat.nan(prec)
    sign = a.sign ^ b.sign
    if a.is_inf():
        if b.is_inf():
            return BigFloat.nan(prec)
        return BigFloat.inf(prec, sign)
    if b.is_inf():
        return BigFloat.zero(prec, sign)
    if b.is_zero():
        if a.is_zero():
            return BigFloat.nan(prec)
        return BigFloat.inf(prec, sign)
    if a.is_zero():
        return BigFloat.zero(prec, sign)

    # Shift the dividend so the quotient keeps at least prec + 2 guard
    # bits, then use the remainder as the sticky flag.  The shift is
    # checked against the *actual* quotient width rather than trusting
    # the operand-width estimate: floor(a/b) for an a much wider than b
    # can come out one bit short of the estimate, and a quotient with
    # fewer than prec + 2 bits ahead of _make would fold real rounding
    # information into the sticky bit (a double-rounding hazard under
    # the nearest modes).
    shift = prec + 2 - (a.mant.bit_length() - b.mant.bit_length())
    if shift < 0:
        shift = 0
    q, r = divmod(a.mant << shift, b.mant)
    deficit = (prec + 2) - q.bit_length()
    if deficit > 0:
        shift += deficit
        q, r = divmod(a.mant << shift, b.mant)
    return _make(sign, q, a.exp - b.exp - shift, prec, rm, sticky=bool(r))


def fma(a: BigFloat, b: BigFloat, c: BigFloat, prec: int,
        rm: RoundingMode = RNDN) -> BigFloat:
    """dest = a * b + c with a single rounding (fused multiply-add)."""
    if a.is_nan() or b.is_nan() or c.is_nan():
        return BigFloat.nan(prec)
    # Infinity handling: compute the product class first.
    if a.is_inf() or b.is_inf():
        if a.is_zero() or b.is_zero():
            return BigFloat.nan(prec)
        psign = a.sign ^ b.sign
        if c.is_inf() and c.sign != psign:
            return BigFloat.nan(prec)
        return BigFloat.inf(prec, psign)
    if c.is_inf():
        return BigFloat.inf(prec, c.sign)
    if a.is_zero() or b.is_zero():
        if c.is_zero():
            # Zero product plus zero addend: mpfr_fma keeps the common
            # sign when product and addend agree; opposite signs fall
            # under the exact-sum rule (+0, or -0 under RNDD).
            psign = a.sign ^ b.sign
            if psign == c.sign:
                return BigFloat.zero(prec, psign)
            return _signed_zero(rm, prec)
        return c.round_to(prec, rm)

    ma, ea = _exact_pair(a)
    mb, eb = _exact_pair(b)
    prod_m = ma * mb
    prod_e = ea + eb
    if c.is_zero():
        # Nonzero exact product: the addend's zero never flips its sign.
        total_m, total_e = prod_m, prod_e
    else:
        mc, ec = _exact_pair(c)
        e = min(prod_e, ec)
        total_m = (prod_m << (prod_e - e)) + (mc << (ec - e))
        total_e = e
    if total_m == 0:
        # Exact cancellation of a nonzero product against the addend.
        # The parts necessarily carried opposite signs, so mpfr_fma
        # prescribes the exact-sum zero: +0 except -0 under RNDD --
        # never the product's or the addend's own sign.
        return _signed_zero(rm, prec)
    sign = 1 if total_m < 0 else 0
    return _make(sign, abs(total_m), total_e, prec, rm)


def fms(a: BigFloat, b: BigFloat, c: BigFloat, prec: int,
        rm: RoundingMode = RNDN) -> BigFloat:
    """dest = a * b - c with a single rounding."""
    return fma(a, b, -c, prec, rm)


def sqrt(a: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = sqrt(a); sqrt of a negative value is NaN, sqrt(-0) is -0."""
    if a.is_nan():
        return BigFloat.nan(prec)
    if a.is_zero():
        return BigFloat.zero(prec, a.sign)
    if a.sign == 1:
        return BigFloat.nan(prec)
    if a.is_inf():
        return BigFloat.inf(prec, 0)

    # Scale the significand so the integer square root carries prec + 2
    # bits; force an even scaled exponent.
    target_bits = 2 * (prec + 2)
    shift = max(0, target_bits - a.mant.bit_length())
    if (a.exp - shift) & 1:
        shift += 1
    m = a.mant << shift
    root = _isqrt(m)
    sticky = root * root != m
    return _make(0, root, (a.exp - shift) // 2, prec, rm, sticky=sticky)


def _isqrt(n: int) -> int:
    """Floor integer square root (math.isqrt wrapper kept for clarity)."""
    import math

    return math.isqrt(n)


def neg(a: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = -a, rounded to ``prec`` bits."""
    return (-a).round_to(prec, rm)


def abs_(a: BigFloat, prec: int, rm: RoundingMode = RNDN) -> BigFloat:
    """dest = |a|, rounded to ``prec`` bits."""
    return abs(a).round_to(prec, rm)
