"""Arbitrary-precision correctly-rounded binary floating point.

This package is the repository's stand-in for GNU MPFR (DESIGN.md §2):

- :class:`BigFloat` — immutable value type with per-value precision;
- :mod:`repro.bigfloat.arith` — correctly-rounded +, −, ×, ÷, fma, sqrt;
- :mod:`repro.bigfloat.functions` — exp, log, sin, cos, pow, constants;
- :mod:`repro.bigfloat.convert` — decimal string I/O;
- :class:`MpfrLibrary` — the C-style object API (init/set/op/clear) with
  call and allocation statistics used by the performance model.
"""

from .arith import abs_, add, div, fma, fms, mul, neg, sqrt, sub
from .convert import decimal_digits_for, from_str, log10_magnitude, to_str
from .functions import const_log2, const_pi, cos, exp, log, log2, log10, pow, sin, tan
from .mpfr_api import MpfrLibrary, MpfrStats, MpfrUseAfterClear, MpfrVar, limb_bytes
from .number import DEFAULT_PRECISION, BigFloat, Kind
from .rounding import RNDA, RNDD, RNDN, RNDU, RNDZ, RoundingMode, round_significand

__all__ = [
    "BigFloat",
    "Kind",
    "DEFAULT_PRECISION",
    "RoundingMode",
    "RNDN",
    "RNDZ",
    "RNDU",
    "RNDD",
    "RNDA",
    "round_significand",
    "add",
    "sub",
    "mul",
    "div",
    "fma",
    "fms",
    "sqrt",
    "neg",
    "abs_",
    "exp",
    "log",
    "log2",
    "log10",
    "sin",
    "cos",
    "tan",
    "pow",
    "const_pi",
    "const_log2",
    "from_str",
    "to_str",
    "decimal_digits_for",
    "log10_magnitude",
    "MpfrLibrary",
    "MpfrVar",
    "MpfrStats",
    "MpfrUseAfterClear",
    "limb_bytes",
]
