"""A C-style MPFR object API over :mod:`repro.bigfloat`.

The paper's MPFR backend lowers ``vpfloat<mpfr, e, p>`` SSA values to
calls on ``__mpfr_struct`` objects (Listing 1): explicit ``mpfr_init2`` /
``mpfr_clear`` lifetime, ``mpfr_set*`` assignment, and three-address
``mpfr_op(dest, src1, src2, rnd)`` arithmetic, with ``_d/_si/_ui``
specializations when an operand is a primitive type.

:class:`MpfrLibrary` reproduces that API surface over mutable
:class:`MpfrVar` handles and records *call and allocation statistics*,
which feed the performance model (DESIGN.md: the paper's speedups are
driven by these counts, so the stand-in records them exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from . import arith, convert, functions
from .number import BigFloat
from .rounding import RNDN, RoundingMode


class MpfrVar:
    """Mutable handle mirroring ``__mpfr_struct``.

    Fields mirror Listing 1 of the paper: a precision, and the current
    value (which bundles sign/exponent/limbs).  ``alive`` tracks the
    init/clear lifetime so double-clear and use-after-clear are caught,
    the bugs the paper's automatic object management eliminates.
    """

    __slots__ = ("prec", "value", "alive", "uid", "limb_addr", "exp_bits")

    _next_uid = 0

    def __init__(self, prec: int, exp_bits: Optional[int] = None):
        if prec < 2:
            raise ValueError(f"MPFR precision must be >= 2, got {prec}")
        self.prec = prec
        #: Exponent-field width (the type's exp-info); None = unbounded,
        #: like stock MPFR before mpfr_set_emin/emax.
        self.exp_bits = exp_bits
        self.value: BigFloat = BigFloat.nan(prec)  # mpfr_init leaves NaN
        self.alive = True
        self.uid = MpfrVar._next_uid
        MpfrVar._next_uid += 1
        self.limb_addr = 0  # set by the interpreter's memory model

    def __repr__(self) -> str:
        state = "" if self.alive else " (cleared)"
        return f"MpfrVar#{self.uid}(prec={self.prec}, {self.value!r}){state}"


Scalar = Union[int, float]


@dataclass
class MpfrStats:
    """Counters for every category of library traffic.

    With pooling enabled (:class:`MpfrLibrary` ``pool=True``), ``inits``
    and ``clears`` count *fresh allocations* and *true deallocations*
    respectively; acquisitions served from the free list show up in
    ``pool_hits`` and releases captured by it in ``pool_releases``.
    ``by_name`` always counts API calls, pooled or not, so call-traffic
    comparisons against unpooled runs stay meaningful.
    """

    inits: int = 0
    clears: int = 0
    sets: int = 0
    ops: int = 0
    specialized_ops: int = 0  # _d/_si/_ui entry points
    compares: int = 0
    conversions: int = 0
    limb_bytes_allocated: int = 0
    pool_hits: int = 0      # init2 calls served from the free list
    pool_misses: int = 0    # init2 calls that had to allocate (pool on)
    pool_releases: int = 0  # clear calls captured by the free list
    by_name: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, n: int = 1) -> None:
        self.by_name[name] = self.by_name.get(name, 0) + n

    def total_calls(self) -> int:
        return sum(self.by_name.values())

    def pool_hit_rate(self) -> float:
        """Fraction of init2 traffic served without allocating."""
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    def snapshot(self) -> "MpfrStats":
        return MpfrStats(
            inits=self.inits,
            clears=self.clears,
            sets=self.sets,
            ops=self.ops,
            specialized_ops=self.specialized_ops,
            compares=self.compares,
            conversions=self.conversions,
            limb_bytes_allocated=self.limb_bytes_allocated,
            pool_hits=self.pool_hits,
            pool_misses=self.pool_misses,
            pool_releases=self.pool_releases,
            by_name=dict(self.by_name),
        )


def limb_bytes(prec: int) -> int:
    """Heap bytes MPFR allocates for a ``prec``-bit significand."""
    return ((prec + 63) // 64) * 8


class MpfrUseAfterClear(RuntimeError):
    """An operation touched a cleared MPFR object."""


class MpfrLibrary:
    """The MPFR call surface with statistics recording.

    ``pool=True`` adds a runtime free-list: cleared handles are parked in
    per-precision buckets and ``mpfr_init2`` reuses one instead of
    allocating.  This is the dynamic counterpart of the lowering pass's
    static dead-object reuse (paper §III-C1 item 7): the compiler removes
    the allocation traffic it can prove dead, the pool removes the rest
    (cross-call churn, dynamically-sized arrays).  The pool is off by
    default so the raw library keeps exact ``mpfr_init2``/``mpfr_clear``
    semantics; the interpreter turns it on for the paper's own runtime.
    """

    def __init__(self, pool: bool = False, pool_limit: int = 1024) -> None:
        self.stats = MpfrStats()
        self.live_objects = 0
        self.peak_live_objects = 0
        self.pool_enabled = pool
        #: Per-precision bucket cap; beyond it, clears free for real.
        self.pool_limit = pool_limit
        self._pool: Dict[int, List[MpfrVar]] = {}

    # ------------------------------------------------------------ #
    # Lifetime
    # ------------------------------------------------------------ #

    def acquire(self, prec: int,
                exp_bits: Optional[int] = None) -> Tuple[MpfrVar, bool]:
        """``mpfr_init2`` with reuse reporting: ``(var, pooled)``.

        ``pooled`` is True when the handle came from the free list (no
        allocation happened; its limb storage is recycled as-is)."""
        if prec < 2:
            raise ValueError(f"MPFR precision must be >= 2, got {prec}")
        self.stats.bump("mpfr_init2")
        bucket = self._pool.get(prec) if self.pool_enabled else None
        if bucket:
            var = bucket.pop()
            var.alive = True
            var.exp_bits = exp_bits
            var.value = BigFloat.nan(prec)  # mpfr_init leaves NaN
            self.stats.pool_hits += 1
            self.live_objects += 1
            self.peak_live_objects = max(self.peak_live_objects,
                                         self.live_objects)
            return var, True
        if self.pool_enabled:
            self.stats.pool_misses += 1
        var = MpfrVar(prec, exp_bits)
        self.stats.inits += 1
        self.stats.limb_bytes_allocated += limb_bytes(prec)
        self.live_objects += 1
        self.peak_live_objects = max(self.peak_live_objects, self.live_objects)
        return var, False

    def init2(self, prec: int, exp_bits: Optional[int] = None) -> MpfrVar:
        """``mpfr_init2``: allocate a variable with ``prec`` bits (and,
        in this toolchain, the type's exponent-field width -- the paper:
        \"the size of the exponent and mantissa are set up during
        initialization\")."""
        return self.acquire(prec, exp_bits)[0]

    def release(self, var: MpfrVar) -> bool:
        """``mpfr_clear`` with reuse reporting: True when the handle was
        parked on the free list (its limb storage stays allocated)."""
        if not var.alive:
            raise MpfrUseAfterClear(f"double clear of {var!r}")
        var.alive = False
        self.stats.bump("mpfr_clear")
        self.live_objects -= 1
        if self.pool_enabled:
            bucket = self._pool.setdefault(var.prec, [])
            if len(bucket) < self.pool_limit:
                bucket.append(var)
                self.stats.pool_releases += 1
                return True
        self.stats.clears += 1
        return False

    def clear(self, var: MpfrVar) -> None:
        """``mpfr_clear``: release a variable."""
        self.release(var)

    def pooled_objects(self) -> int:
        """Handles currently parked on the free list."""
        return sum(len(b) for b in self._pool.values())

    def _check(self, *vars_: MpfrVar) -> None:
        for v in vars_:
            if not v.alive:
                raise MpfrUseAfterClear(f"use of cleared {v!r}")

    # ------------------------------------------------------------ #
    # Assignment
    # ------------------------------------------------------------ #

    def set(self, dst: MpfrVar, src: MpfrVar, rm: RoundingMode = RNDN) -> None:
        self._check(dst, src)
        dst.value = src.value.round_to(dst.prec, rm)
        self.stats.sets += 1
        self.stats.bump("mpfr_set")

    def set_d(self, dst: MpfrVar, value: float, rm: RoundingMode = RNDN) -> None:
        self._check(dst)
        dst.value = BigFloat.from_float(value, dst.prec, rm)
        self.stats.sets += 1
        self.stats.bump("mpfr_set_d")

    def set_si(self, dst: MpfrVar, value: int, rm: RoundingMode = RNDN) -> None:
        self._check(dst)
        dst.value = BigFloat.from_int(value, dst.prec, rm)
        self.stats.sets += 1
        self.stats.bump("mpfr_set_si")

    def set_str(self, dst: MpfrVar, text: str, rm: RoundingMode = RNDN) -> None:
        self._check(dst)
        dst.value = convert.from_str(text, dst.prec, rm)
        self.stats.sets += 1
        self.stats.bump("mpfr_set_str")

    def swap(self, a: MpfrVar, b: MpfrVar) -> None:
        self._check(a, b)
        a.value, b.value = b.value, a.value
        a.prec, b.prec = b.prec, a.prec
        self.stats.bump("mpfr_swap")

    # ------------------------------------------------------------ #
    # Arithmetic: mpfr_op(dest, src1, src2, rnd)
    # ------------------------------------------------------------ #

    def _clamp(self, dst: MpfrVar) -> None:
        """Exponent-range overflow/underflow per the destination's
        configured exponent width."""
        if dst.exp_bits is None:
            return
        value = dst.value
        if not value.is_finite() or value.is_zero():
            return
        limit = 1 << (dst.exp_bits - 1)
        exponent = value.exponent()
        if exponent > limit:
            dst.value = BigFloat.inf(dst.prec, value.sign)
        elif exponent < -limit:
            dst.value = BigFloat.zero(dst.prec, value.sign)

    def _binary(self, name, kernel, dst, a, b, rm):
        self._check(dst, a, b)
        dst.value = kernel(a.value, b.value, dst.prec, rm)
        self._clamp(dst)
        self.stats.ops += 1
        self.stats.bump(name)

    def add(self, dst, a, b, rm: RoundingMode = RNDN):
        self._binary("mpfr_add", arith.add, dst, a, b, rm)

    def sub(self, dst, a, b, rm: RoundingMode = RNDN):
        self._binary("mpfr_sub", arith.sub, dst, a, b, rm)

    def mul(self, dst, a, b, rm: RoundingMode = RNDN):
        self._binary("mpfr_mul", arith.mul, dst, a, b, rm)

    def div(self, dst, a, b, rm: RoundingMode = RNDN):
        self._binary("mpfr_div", arith.div, dst, a, b, rm)

    def _binary_scalar(self, name, kernel, dst, a, scalar, rm, reverse=False):
        self._check(dst, a)
        other = BigFloat.from_value(
            float(scalar) if isinstance(scalar, float) else scalar,
            max(dst.prec, 64),
        )
        lhs, rhs = (other, a.value) if reverse else (a.value, other)
        dst.value = kernel(lhs, rhs, dst.prec, rm)
        self._clamp(dst)
        self.stats.ops += 1
        self.stats.specialized_ops += 1
        self.stats.bump(name)

    def add_d(self, dst, a, d: float, rm: RoundingMode = RNDN):
        self._binary_scalar("mpfr_add_d", arith.add, dst, a, d, rm)

    def sub_d(self, dst, a, d: float, rm: RoundingMode = RNDN):
        self._binary_scalar("mpfr_sub_d", arith.sub, dst, a, d, rm)

    def d_sub(self, dst, d: float, a, rm: RoundingMode = RNDN):
        self._binary_scalar("mpfr_d_sub", arith.sub, dst, a, d, rm, reverse=True)

    def mul_d(self, dst, a, d: float, rm: RoundingMode = RNDN):
        self._binary_scalar("mpfr_mul_d", arith.mul, dst, a, d, rm)

    def div_d(self, dst, a, d: float, rm: RoundingMode = RNDN):
        self._binary_scalar("mpfr_div_d", arith.div, dst, a, d, rm)

    def d_div(self, dst, d: float, a, rm: RoundingMode = RNDN):
        self._binary_scalar("mpfr_d_div", arith.div, dst, a, d, rm, reverse=True)

    def add_si(self, dst, a, n: int, rm: RoundingMode = RNDN):
        self._binary_scalar("mpfr_add_si", arith.add, dst, a, n, rm)

    def sub_si(self, dst, a, n: int, rm: RoundingMode = RNDN):
        self._binary_scalar("mpfr_sub_si", arith.sub, dst, a, n, rm)

    def mul_si(self, dst, a, n: int, rm: RoundingMode = RNDN):
        self._binary_scalar("mpfr_mul_si", arith.mul, dst, a, n, rm)

    def div_si(self, dst, a, n: int, rm: RoundingMode = RNDN):
        self._binary_scalar("mpfr_div_si", arith.div, dst, a, n, rm)

    def fma(self, dst, a, b, c, rm: RoundingMode = RNDN):
        self._check(dst, a, b, c)
        dst.value = arith.fma(a.value, b.value, c.value, dst.prec, rm)
        self._clamp(dst)
        self.stats.ops += 1
        self.stats.bump("mpfr_fma")

    def fms(self, dst, a, b, c, rm: RoundingMode = RNDN):
        self._check(dst, a, b, c)
        dst.value = arith.fms(a.value, b.value, c.value, dst.prec, rm)
        self._clamp(dst)
        self.stats.ops += 1
        self.stats.bump("mpfr_fms")

    def _unary(self, name, kernel, dst, a, rm):
        self._check(dst, a)
        dst.value = kernel(a.value, dst.prec, rm)
        self._clamp(dst)
        self.stats.ops += 1
        self.stats.bump(name)

    def neg(self, dst, a, rm: RoundingMode = RNDN):
        self._unary("mpfr_neg", arith.neg, dst, a, rm)

    def abs(self, dst, a, rm: RoundingMode = RNDN):
        self._unary("mpfr_abs", arith.abs_, dst, a, rm)

    def sqrt(self, dst, a, rm: RoundingMode = RNDN):
        self._unary("mpfr_sqrt", arith.sqrt, dst, a, rm)

    def exp(self, dst, a, rm: RoundingMode = RNDN):
        self._unary("mpfr_exp", functions.exp, dst, a, rm)

    def log(self, dst, a, rm: RoundingMode = RNDN):
        self._unary("mpfr_log", functions.log, dst, a, rm)

    def sin(self, dst, a, rm: RoundingMode = RNDN):
        self._unary("mpfr_sin", functions.sin, dst, a, rm)

    def cos(self, dst, a, rm: RoundingMode = RNDN):
        self._unary("mpfr_cos", functions.cos, dst, a, rm)

    def pow(self, dst, a, b, rm: RoundingMode = RNDN):
        self._binary("mpfr_pow", functions.pow, dst, a, b, rm)

    # ------------------------------------------------------------ #
    # Comparison / conversion
    # ------------------------------------------------------------ #

    def cmp(self, a: MpfrVar, b: MpfrVar) -> int:
        self._check(a, b)
        self.stats.compares += 1
        self.stats.bump("mpfr_cmp")
        return a.value.compare(b.value)

    def cmp_d(self, a: MpfrVar, d: float) -> int:
        self._check(a)
        self.stats.compares += 1
        self.stats.bump("mpfr_cmp_d")
        return a.value.compare(BigFloat.from_float(d, 64))

    def get_d(self, a: MpfrVar, rm: RoundingMode = RNDN) -> float:
        self._check(a)
        self.stats.conversions += 1
        self.stats.bump("mpfr_get_d")
        return a.value.to_float()

    def get_si(self, a: MpfrVar, rm: RoundingMode = RNDN) -> int:
        self._check(a)
        self.stats.conversions += 1
        self.stats.bump("mpfr_get_si")
        return a.value.to_int()

    def get_str(self, a: MpfrVar, digits: Optional[int] = None) -> str:
        self._check(a)
        self.stats.conversions += 1
        self.stats.bump("mpfr_get_str")
        return convert.to_str(a.value, digits)
