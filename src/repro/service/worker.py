"""Worker-process side of the compile/run service.

Each daemon shard is one of these processes on the end of a duplex
pipe: it installs the shared artifact store and ledger exactly like a
sweep worker (:func:`repro.evaluation.parallel.init_worker_runtime`),
then serves ``(kind, payload)`` messages until the pipe closes or the
daemon kills it.

Every reply ships an *observation* -- the value tokens, digest and
cycle-report snapshot a batch CLI run of the same point would produce
-- plus the request's artifact-store traffic delta, so the daemon can
certify serial<->service equivalence and aggregate store hit rates
without ever touching the toolchain itself.

The ``debug`` kind is the fault-injection surface for the test suite:
``die`` / ``die_once`` (hard process exit mid-request), ``hang`` /
``hang_once`` (block until the daemon's request timeout reaps the
shard), ``wait_for_file`` (a latch for deterministically parking a
shard while requests pile up behind it).  The daemon refuses debug
requests unless explicitly configured to allow them.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from typing import List, Optional

from ..core import CompilerDriver
from ..evaluation.harness import (
    canonical_source_ftype,
    get_compile_cache,
    read_lane_outputs,
    run_kernel,
)
from ..evaluation.parallel import init_worker_runtime
from ..validation.certificate import (
    report_snapshot,
    values_digest,
    values_token,
)
from ..workloads.polybench import KERNELS, source_for
from .protocol import RUN_OPTION_KEYS
from .store import stats_delta, stats_snapshot

#: Exit status of a ``die``/``die_once`` fault (recognizable in waitpid
#: output when debugging the daemon's reaper).
FAULT_EXIT_STATUS = 43


class TaskFailed(Exception):
    """The request itself raised; deterministic, never retried."""


def observation(values: List, report, mode: str = "serial",
                wall_seconds: float = 0.0) -> dict:
    """The reply payload for one executed point: bit-level value
    tokens (+ digest) and the cycle-report snapshot."""
    tokens = values_token(values)
    return {
        "values": tokens,
        "digest": values_digest(values),
        "report": report_snapshot(report),
        "cycles": getattr(report, "cycles", None)
        if not isinstance(report, dict) else report.get("cycles"),
        "mode": mode,
        "wall_seconds": wall_seconds,
    }


def _run_options(payload: dict) -> dict:
    options = dict(payload.get("options") or {})
    unknown = sorted(set(options) - set(RUN_OPTION_KEYS))
    if unknown:
        raise TaskFailed(f"unknown run option(s) {unknown}")
    return options


def _resolve_source(payload: dict) -> str:
    source = payload.get("source")
    if isinstance(source, str):
        return source
    kernel = payload["kernel"]
    if kernel not in KERNELS:
        raise TaskFailed(f"unknown kernel {kernel!r}; choose from "
                         f"{sorted(KERNELS)}")
    return source_for(kernel, canonical_source_ftype(payload["ftype"]))


def execute_compile(payload: dict) -> dict:
    """Compile one program against the shared store; -> fingerprint,
    whether the store served it, and the compile wall time."""
    cache = get_compile_cache()
    options = _run_options(payload)
    engine = options.pop("engine", None)
    options.pop("pool", None)  # a run knob, not a CompileOptions field
    source = _resolve_source(payload)
    name = payload.get("kernel") or payload.get("name") or "service"
    backend = payload.get("backend", "mpfr")
    before = stats_snapshot(cache.stats) if cache is not None else {}
    wall0 = time.perf_counter()
    driver = CompilerDriver(backend=backend, cache=cache,
                            engine=engine, **options)
    program = driver.compile(source, name=f"{name}-{backend}")
    wall = time.perf_counter() - wall0
    key = None
    cached = False
    if cache is not None:
        key = cache.fingerprint(source, driver.options,
                                f"{name}-{backend}",
                                engine=driver.engine,
                                kernel_tier=driver.kernel_tier)
        after = stats_snapshot(cache.stats)
        cached = after.get("memory_hits", 0) > before.get(
            "memory_hits", 0) or after.get("disk_hits", 0) > before.get(
            "disk_hits", 0)
    return {"fingerprint": key, "cached": cached,
            "wall_seconds": wall, "backend": backend,
            "passes": sorted(program.pass_timings)}


def execute_run(payload: dict) -> dict:
    """One serial point, exactly the batch-CLI path (run_kernel)."""
    options = _run_options(payload)
    wall0 = time.perf_counter()
    outcome = run_kernel(payload["kernel"], payload["ftype"],
                         payload["n"],
                         backend=payload.get("backend", "mpfr"),
                         **options)
    values = [outcome.value] + list(outcome.outputs)
    return observation(values, outcome.report,
                       wall_seconds=time.perf_counter() - wall0)


def execute_run_batch(payload: dict, lanes: int) -> dict:
    """``lanes`` coalesced requests for one point as a single batched
    dispatch; -> per-lane observations (bit-identical to serial runs
    by the batched engine's contract, certified by the daemon when a
    client asked for validation)."""
    if lanes < 1:
        raise TaskFailed(f"lanes must be >= 1, got {lanes}")
    options = _run_options(payload)
    options.pop("engine", None)  # the batched engine is the jit engine
    kernel = payload["kernel"]
    ftype = payload["ftype"]
    n = payload["n"]
    if kernel not in KERNELS:
        raise TaskFailed(f"unknown kernel {kernel!r}")
    spec = KERNELS[kernel]
    source = source_for(kernel, canonical_source_ftype(ftype))
    pool = options.pop("pool", None)
    wall0 = time.perf_counter()
    driver = CompilerDriver(backend="mpfr", cache=get_compile_cache(),
                            engine="jit", **options)
    program = driver.compile(source, name=f"{kernel}-mpfr")
    result = program.run_batch("run", [n], lanes=lanes, pool=pool)
    wall = time.perf_counter() - wall0
    count = spec.outputs(n)
    members = []
    for lane in range(lanes):
        values = [result.values[lane]]
        if result.interpreter is not None:
            values += read_lane_outputs(
                result.interpreter, int(result.values[lane]), count,
                ftype, "mpfr", lane=lane)
        members.append(observation(values, result.reports[lane],
                                   mode=result.mode,
                                   wall_seconds=wall))
    return {"lanes": members, "mode": result.mode,
            "wall_seconds": wall}


def execute_debug(payload: dict) -> dict:
    """Fault-injection primitives (gated behind the daemon's
    ``allow_debug``); see the module docstring."""
    action = payload.get("action")
    if action == "ok":
        return {"pid": os.getpid()}
    if action in ("die", "die_once"):
        if action == "die" or _arm_latch(payload):
            os._exit(FAULT_EXIT_STATUS)
        return {"survived": True, "pid": os.getpid()}
    if action in ("hang", "hang_once"):
        if action == "hang" or _arm_latch(payload):
            threading.Event().wait()  # until the daemon reaps us
        return {"survived": True, "pid": os.getpid()}
    if action == "wait_for_file":
        path = payload["path"]
        while not os.path.exists(path):
            time.sleep(0.005)
        return {"released": True, "pid": os.getpid()}
    raise TaskFailed(f"unknown debug action {action!r}")


def _arm_latch(payload: dict) -> bool:
    """True exactly once per latch file: the first worker to arm it
    faults, every retry sees the latch and survives."""
    path = payload.get("path")
    if not path:
        raise TaskFailed("one-shot debug actions need a latch 'path'")
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _execute(message: dict) -> dict:
    kind = message.get("kind")
    payload = message.get("payload") or {}
    if kind == "ping":
        return {"pong": True, "pid": os.getpid()}
    if kind == "compile":
        return execute_compile(payload)
    if kind == "run":
        return execute_run(payload)
    if kind == "run_batch":
        return execute_run_batch(payload, int(message.get("lanes", 1)))
    if kind == "debug":
        return execute_debug(payload)
    raise TaskFailed(f"unknown worker message kind {kind!r}")


def worker_main(conn, cache_dir: Optional[str], use_cache: bool,
                ledger_path: Optional[str],
                max_cache_bytes: Optional[int]) -> None:
    """One shard's request loop: recv -> execute -> send, forever.

    Replies are ``(ok, payload)`` tuples; task exceptions travel back
    as structured failures (they are the *request's* fault and must
    not cost a retry), while a genuine crash simply severs the pipe
    and lets the daemon's reaper take over.  Every reply carries the
    request's artifact-store traffic delta.
    """
    init_worker_runtime(cache_dir, use_cache, ledger_path,
                        max_cache_bytes=max_cache_bytes)
    cache = get_compile_cache()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message.get("kind") == "exit":
            return
        before = stats_snapshot(cache.stats) if cache is not None else {}
        try:
            ok, payload = True, _execute(message)
        except TaskFailed as error:
            ok, payload = False, {"type": "TaskFailed",
                                  "message": str(error),
                                  "traceback": ""}
        except Exception as error:
            ok, payload = False, {"type": type(error).__name__,
                                  "message": str(error),
                                  "traceback": traceback.format_exc()}
        delta = stats_delta(before, stats_snapshot(cache.stats)) \
            if cache is not None else {}
        try:
            conn.send((ok, payload, delta))
        except (BrokenPipeError, OSError):
            return
