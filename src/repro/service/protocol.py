"""Wire protocol of the compile/run service.

The daemon (:mod:`repro.service.daemon`) and its clients speak
newline-delimited JSON over a local Unix socket: one request object per
line, one reply object per line, correlated by the client-chosen
``id`` field (so a client may pipeline requests on one connection and
match replies out of order).

Requests::

    {"v": 1, "op": "run", "id": 7, "kernel": "gemm",
     "ftype": "vpfloat<mpfr, 16, 64>", "n": 6, "backend": "mpfr",
     "validate": true, "options": {"engine": "jit"}}

Replies::

    {"v": 1, "id": 7, "ok": true, "result": {...}}
    {"v": 1, "id": 7, "ok": false,
     "error": {"code": "timeout", "message": "...", "attempts": 2}}

Run results carry the *same* observation a batch CLI run would
produce: the value-token sequence of ``repro.validation.value_token``
over ``[return value] + output array`` (bit-level identity survives
the JSON round trip as nested lists), its 16-hex digest, and the full
cycle-report snapshot -- which is what lets the serial<->service
transition certificate compare daemon replies against in-process
serial runs bit-for-bit.

Error codes are closed-vocabulary (:data:`ERROR_CODES`) so clients can
dispatch on them: ``overloaded`` (admission control rejected the
request, retry later), ``timeout`` (the request exceeded the daemon's
per-request budget, possibly after retries), ``worker_failed`` (the
worker died and bounded retries were exhausted), ``task_failed`` (the
request itself raised -- deterministic, never retried),
``shutting_down``, ``bad_request``, ``unsupported``, ``internal``.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Tuple

#: Bump on incompatible message-shape changes.
PROTOCOL_VERSION = 1

#: Environment override for the default socket location.
SOCKET_ENV = "VPFLOAT_SERVICE_SOCKET"

#: Request operations the daemon understands.  ``debug`` is the fault
#: -injection side door (worker death / hang / latch primitives) and is
#: rejected with ``unsupported`` unless the daemon was started with
#: ``allow_debug`` -- it exists for the fault-injection test suite and
#: must never be enabled on a shared daemon.
OPS = ("ping", "compile", "run", "stats", "debug", "shutdown")

ERROR_CODES = ("bad_request", "overloaded", "timeout", "worker_failed",
               "task_failed", "shutting_down", "unsupported", "internal")

#: ``run``-request option keys forwarded to the worker (everything
#: else is rejected, keeping the worker payload picklable and the
#: coalescing key canonical).
RUN_OPTION_KEYS = ("engine", "polly", "pool", "opt_level",
                   "contract_fma", "kernel_tier")


def default_socket_path() -> str:
    """``$VPFLOAT_SERVICE_SOCKET`` or ``~/.cache/vpfloat-repro/serve.sock``."""
    env = os.environ.get(SOCKET_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache",
                        "vpfloat-repro", "serve.sock")


class ProtocolError(ValueError):
    """A message violated the wire protocol."""


def encode(message: dict) -> bytes:
    """One compact JSON line (the only framing the protocol uses)."""
    return (json.dumps(message, separators=(",", ":"),
                       sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes) -> dict:
    """Parse one received line; raises :class:`ProtocolError` on
    anything but a JSON object."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable message: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def request(op: str, request_id: Optional[int] = None, **fields) -> dict:
    """Assemble one request message."""
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; choose from {OPS}")
    message = {"v": PROTOCOL_VERSION, "op": op}
    if request_id is not None:
        message["id"] = request_id
    message.update(fields)
    return message


def ok_reply(request_id, result: dict) -> dict:
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True,
            "result": result}


def error_reply(request_id, code: str, message: str, **extra) -> dict:
    if code not in ERROR_CODES:
        raise ProtocolError(f"unknown error code {code!r}; "
                            f"choose from {ERROR_CODES}")
    error = {"code": code, "message": message}
    error.update(extra)
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": False,
            "error": error}


def validate_request(message: dict) -> str:
    """The request's op after structural validation (raises
    :class:`ProtocolError` on a malformed request)."""
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"protocol version {version!r} is not "
                            f"{PROTOCOL_VERSION}")
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; choose from {OPS}")
    options = message.get("options")
    if options is not None:
        if not isinstance(options, dict):
            raise ProtocolError("'options' must be an object")
        unknown = sorted(set(options) - set(RUN_OPTION_KEYS))
        if unknown:
            raise ProtocolError(f"unknown option(s) {unknown}; "
                                f"choose from {RUN_OPTION_KEYS}")
    if op in ("run", "compile"):
        kernel = message.get("kernel")
        source = message.get("source")
        if not isinstance(kernel, str) and not isinstance(source, str):
            raise ProtocolError(f"{op!r} needs a 'kernel' name or a "
                                f"'source' string")
        if not isinstance(message.get("ftype"), str) and source is None:
            raise ProtocolError(f"{op!r} needs an 'ftype' string")
    if op == "run" and not isinstance(message.get("n"), int):
        raise ProtocolError("'run' needs an integer 'n'")
    return op


def coalesce_key(message: dict) -> Optional[Tuple]:
    """The batching identity of a ``run`` request, or None when the
    request must run alone.

    Requests sharing a key compute the *same point* of the same
    compiled program (kernel, canonical element type, n, backend and
    every forwarded option), so the daemon may execute any number of
    them as one ``run_batch`` dispatch whose per-lane results are
    bit-identical to serial runs.  Only mpfr-backend points on the jit
    engine (the batched engine's domain) coalesce; everything else --
    other backends, explicit non-jit engines, raw-source requests --
    returns None and dispatches serially.
    """
    if message.get("op") != "run" or message.get("source") is not None:
        return None
    backend = message.get("backend", "mpfr")
    options = dict(message.get("options") or {})
    if backend != "mpfr" or options.get("engine") not in (None, "jit"):
        return None
    try:
        from ..evaluation.harness import parse_ftype

        kind, params = parse_ftype(message.get("ftype", ""))
        if kind == "mpfr":
            # The byte-size annotation is storage-only under the mpfr
            # ABI: spellings with and without it compile identically.
            params.pop("size", None)
        ftype = (kind, tuple(sorted(params.items())))
    except ValueError:
        ftype = message.get("ftype")
    return (message.get("kernel"), ftype, message.get("n"), backend,
            tuple(sorted(options.items())))
