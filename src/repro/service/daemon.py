"""Always-on compile/run daemon (``vpfloat-serve``).

One asyncio event loop owns a warm pool of worker processes (the same
worker runtime the parallel sweep shards use, so programs stay JIT-hot
and the artifact store stays warm across requests) and a local Unix
socket speaking the :mod:`repro.service.protocol` line protocol.

Scheduling
----------
Admission control bounds the daemon: at most ``queue_limit`` requests
may be queued at once; excess requests are rejected immediately with
``overloaded`` instead of building unbounded latency.  Queued requests
live in per-client FIFO deques drained round-robin, so a flooding
client cannot starve the others -- each scheduler pick services the
next client in rotation.

When the head requests of several clients name the *same point* (same
kernel, canonical element type, n, backend, options --
:func:`repro.service.protocol.coalesce_key`), the scheduler coalesces
up to ``max_batch`` of them into one ``run_batch`` dispatch: one IR
walk executes every lane, and the batched engine's lockstep contract
guarantees each lane's reply is bit-identical to a serial run.

Fault tolerance
---------------
Every dispatch has a per-attempt timeout.  A worker that dies severs
its pipe (detected immediately); one that hangs trips the timeout.
Either way the shard is reaped, a fresh one is spawned in its place,
and the in-flight requests are retried at the *front* of their
clients' queues -- at most ``max_retries`` extra attempts, then a
structured ``worker_failed``/``timeout`` error.  Unrelated queued
requests are never dropped by a fault.

Validation
----------
A request carrying ``"validate": true`` gets a serial reference
execution on the same warm shard and a ``serial<->service``
:class:`~repro.validation.certificate.Certificate` (strictness from
the ``TRANSITIONS`` registry: exact -- the daemon is transport, values
and cycle reports must match bit-for-bit) attached to the reply.
"""

from __future__ import annotations

import argparse
import asyncio
import collections
import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..observability import (
    MetricsRegistry,
    RunLedger,
    install_ledger,
    install_telemetry,
)
from ..validation.certificate import TRANSITIONS, Certificate, make_check
from ..validation.harness import record_certificate
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    coalesce_key,
    decode,
    default_socket_path,
    encode,
    error_reply,
    ok_reply,
    validate_request,
)
from .store import ArtifactStore
from .worker import worker_main

#: Strictness of the serial<->service transition (certificates).
SERVICE_STRICTNESS = TRANSITIONS["serial↔service"]


@dataclass
class ServiceConfig:
    """Everything ``vpfloat-serve`` can be told on the command line."""

    socket_path: str = ""
    workers: int = 2
    queue_limit: int = 64
    max_batch: int = 16
    request_timeout: float = 30.0
    max_retries: int = 1
    cache_dir: Optional[str] = None
    max_cache_bytes: Optional[int] = None
    ledger_path: Optional[str] = None
    metrics_out: Optional[str] = None
    allow_debug: bool = False

    def __post_init__(self):
        if not self.socket_path:
            self.socket_path = default_socket_path()
        if self.cache_dir is None:
            self.cache_dir = os.environ.get(
                "VPFLOAT_CACHE_DIR",
                os.path.join(os.path.dirname(self.socket_path), "store"))
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.queue_limit < 1 or self.max_batch < 1:
            raise ValueError("queue_limit and max_batch must be >= 1")


class WorkerDied(Exception):
    """The shard's pipe severed mid-call (process death)."""


class WorkerHung(Exception):
    """The shard missed the per-attempt deadline."""


class WorkerHandle:
    """One warm worker shard: process + duplex pipe + blocking call.

    ``call`` runs on a thread (``asyncio.to_thread``) so the event
    loop never blocks on a pipe; the handle is only ever used by one
    dispatch at a time (the scheduler owns worker checkout).
    """

    _counter = 0

    def __init__(self, config: ServiceConfig):
        ctx = multiprocessing.get_context("fork")
        self.conn, child = ctx.Pipe(duplex=True)
        WorkerHandle._counter += 1
        self.name = f"shard-{WorkerHandle._counter}"
        self.process = ctx.Process(
            target=worker_main,
            args=(child, config.cache_dir, True, config.ledger_path,
                  config.max_cache_bytes),
            name=f"vpfloat-serve-{self.name}", daemon=True)
        self.process.start()
        child.close()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def call(self, message: dict, timeout: float):
        """Send one message, wait for its reply (blocking).

        Raises :class:`WorkerDied` on a severed pipe and
        :class:`WorkerHung` on deadline; either way the caller must
        reap this handle (the shard's state is unknown).
        """
        try:
            self.conn.send(message)
            if not self.conn.poll(timeout):
                raise WorkerHung(f"{self.name} missed the "
                                 f"{timeout:.1f}s deadline")
            return self.conn.recv()
        except (BrokenPipeError, ConnectionResetError, EOFError,
                OSError) as error:
            raise WorkerDied(f"{self.name} pipe severed: "
                             f"{type(error).__name__}") from None

    def reap(self) -> None:
        """Kill the shard and release its resources (idempotent)."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5)

    def stop(self) -> None:
        """Polite shutdown: ask the loop to exit, then reap."""
        try:
            self.conn.send({"kind": "exit"})
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=2)
        self.reap()


@dataclass
class ClientState:
    """One accepted connection: identity, writer, and request queue."""

    client_id: int
    writer: asyncio.StreamWriter
    queue: Deque["PendingRequest"] = field(
        default_factory=collections.deque)
    connected: bool = True


@dataclass
class PendingRequest:
    """One admitted request travelling through the scheduler."""

    client: ClientState
    message: dict
    op: str
    attempts: int = 0

    @property
    def request_id(self):
        return self.message.get("id")


class VpfloatDaemon:
    """The service: socket server, per-client queues, scheduler."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.registry = MetricsRegistry()
        self.ledger = RunLedger(config.ledger_path) \
            if config.ledger_path else None
        self.store = ArtifactStore(config.cache_dir,
                                   max_bytes=config.max_cache_bytes)
        self.workers: List[WorkerHandle] = []
        self.clients: Dict[int, ClientState] = {}
        self._rotation: Deque[int] = collections.deque()
        self._free: "asyncio.Queue[WorkerHandle]" = asyncio.Queue()
        self._has_work = asyncio.Event()
        self._stopping = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._scheduler: Optional[asyncio.Task] = None
        self._dispatches: set = set()
        self._next_client = 0
        self._seq = 0
        self.started = asyncio.Event()
        self._previous_telemetry = None
        self._previous_ledger = None

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    async def start(self) -> None:
        os.makedirs(os.path.dirname(self.config.socket_path) or ".",
                    exist_ok=True)
        try:
            os.unlink(self.config.socket_path)
        except FileNotFoundError:
            pass
        self._previous_telemetry = install_telemetry(None,
                                                     self.registry)
        if self.ledger is not None:
            self._previous_ledger = install_ledger(self.ledger)
        for _ in range(self.config.workers):
            self._add_worker()
        self._server = await asyncio.start_unix_server(
            self._serve_client, path=self.config.socket_path)
        self._scheduler = asyncio.create_task(self._schedule())
        self.started.set()

    async def run_forever(self) -> None:
        await self.start()
        await self._stopping.wait()
        await self._shutdown()

    def _add_worker(self) -> WorkerHandle:
        handle = WorkerHandle(self.config)
        self.workers.append(handle)
        self._free.put_nowait(handle)
        self.registry.gauge("service.workers", len(self.workers))
        return handle

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._scheduler is not None:
            self._scheduler.cancel()
            try:
                await self._scheduler
            except asyncio.CancelledError:
                pass
        for task in list(self._dispatches):
            task.cancel()
        for client in list(self.clients.values()):
            while client.queue:
                pending = client.queue.popleft()
                await self._reply(pending.client, error_reply(
                    pending.request_id, "shutting_down",
                    "daemon is shutting down"))
            try:
                client.writer.close()
            except Exception:
                pass
        for handle in self.workers:
            handle.stop()
        self.workers.clear()
        try:
            os.unlink(self.config.socket_path)
        except OSError:
            pass
        if self._previous_telemetry is not None:
            install_telemetry(*self._previous_telemetry)
        if self.ledger is not None:
            install_ledger(self._previous_ledger)
            self.ledger.close()
        if self.config.metrics_out:
            self.store.publish_occupancy(self.registry)
            with open(self.config.metrics_out, "w",
                      encoding="utf-8") as out:
                json.dump(self.registry.to_dict(), out, indent=2,
                          sort_keys=True)
                out.write("\n")

    # ------------------------------------------------------------- #
    # Connections
    # ------------------------------------------------------------- #

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        self._next_client += 1
        client = ClientState(self._next_client, writer)
        self.clients[client.client_id] = client
        self._rotation.append(client.client_id)
        self.registry.inc("service.connections")
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionResetError, OSError):
                    break
                if not line:
                    break
                await self._handle_line(client, line)
        finally:
            client.connected = False
            # Queued requests from a vanished client are dropped at
            # dispatch time (never executed on its behalf) -- but the
            # client record stays until its queue drains so retries
            # and in-flight replies find a live object.
            self.clients.pop(client.client_id, None)
            try:
                self._rotation.remove(client.client_id)
            except ValueError:
                pass
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_line(self, client: ClientState,
                           line: bytes) -> None:
        message: dict = {}
        try:
            message = decode(line)
            op = validate_request(message)
        except ProtocolError as error:
            await self._reply(client, error_reply(
                message.get("id"), "bad_request", str(error)))
            return
        self.registry.inc("service.requests")
        self.registry.inc(f"service.op.{op}")
        if op == "ping":
            await self._reply(client, ok_reply(message.get("id"), {
                "pong": True, "workers": len(self.workers),
                "pending": self._pending_count(),
                "protocol": PROTOCOL_VERSION}))
            return
        if op == "stats":
            await self._reply(client, ok_reply(message.get("id"),
                                               self.stats()))
            return
        if op == "shutdown":
            await self._reply(client, ok_reply(message.get("id"),
                                               {"stopping": True}))
            self._stopping.set()
            return
        if op == "debug" and not self.config.allow_debug:
            await self._reply(client, error_reply(
                message.get("id"), "unsupported",
                "debug ops need --allow-debug"))
            return
        if self._pending_count() >= self.config.queue_limit:
            self.registry.inc("service.rejected")
            await self._reply(client, error_reply(
                message.get("id"), "overloaded",
                f"queue limit {self.config.queue_limit} reached"))
            return
        client.queue.append(PendingRequest(client, message, op))
        self._has_work.set()

    def _pending_count(self) -> int:
        return sum(len(c.queue) for c in self.clients.values())

    async def _reply(self, client: ClientState, message: dict) -> None:
        """Best-effort reply: a client that disconnected mid-flight
        must never take the daemon (or other requests) down."""
        if not client.connected:
            return
        try:
            client.writer.write(encode(message))
            await client.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            client.connected = False

    # ------------------------------------------------------------- #
    # Scheduling
    # ------------------------------------------------------------- #

    async def _schedule(self) -> None:
        while True:
            await self._has_work.wait()
            # Acquire the worker *before* collecting: while every
            # shard is busy, queued same-point requests keep piling up
            # behind the heads and coalesce into one dispatch the
            # moment a shard frees.
            worker = await self._free.get()
            batch = self._collect_batch()
            if not batch:
                self._free.put_nowait(worker)
                self._has_work.clear()
                continue
            self._seq += 1
            task = asyncio.create_task(
                self._dispatch(worker, batch, self._seq))
            self._dispatches.add(task)
            task.add_done_callback(self._dispatches.discard)

    def _collect_batch(self) -> List[PendingRequest]:
        """The next unit of work: one request, or up to ``max_batch``
        coalescible run requests for the same point.

        Fairness: the seed request comes from the next client in
        rotation; coalescing only ever takes additional *head*
        requests (round-robin over the other clients first), so no
        client's FIFO order is disturbed and a flooding client still
        only advances one head per rotation turn.
        """
        seed = self._pop_next()
        if seed is None:
            return []
        batch = [seed]
        key = coalesce_key(seed.message)
        if key is None:
            return batch
        for client_id in list(self._rotation):
            client = self.clients.get(client_id)
            while (client is not None and client.queue
                   and len(batch) < self.config.max_batch
                   and coalesce_key(client.queue[0].message) == key):
                batch.append(client.queue.popleft())
        return batch

    def _pop_next(self) -> Optional[PendingRequest]:
        for _ in range(len(self._rotation)):
            client_id = self._rotation.popleft()
            self._rotation.append(client_id)
            client = self.clients.get(client_id)
            if client is not None and client.queue:
                return client.queue.popleft()
        return None

    def _requeue(self, batch: List[PendingRequest]) -> None:
        """Put a faulted dispatch's requests back at the front of
        their clients' queues, preserving order."""
        for pending in reversed(batch):
            pending.client.queue.appendleft(pending)
        self._has_work.set()

    # ------------------------------------------------------------- #
    # Dispatch
    # ------------------------------------------------------------- #

    async def _dispatch(self, worker: WorkerHandle,
                        batch: List[PendingRequest], seq: int) -> None:
        live = [p for p in batch if p.client.connected]
        if not live:
            self._free.put_nowait(worker)
            return
        for pending in live:
            pending.attempts += 1
        seed = live[0]
        lanes = len(live)
        if seed.op == "run" and lanes > 1:
            message = {"kind": "run_batch", "lanes": lanes,
                       "payload": self._payload(seed.message)}
            self.registry.inc("service.coalesced", lanes)
            self.registry.inc("service.batches")
        else:
            message = {"kind": seed.op,
                       "payload": self._payload(seed.message)}
        wall0 = time.perf_counter()
        try:
            ok, payload, delta = await asyncio.to_thread(
                worker.call, message, self.config.request_timeout)
        except (WorkerDied, WorkerHung) as fault:
            await self._handle_fault(worker, live, fault)
            return
        self.store.absorb_delta(self.registry, delta)
        wall = time.perf_counter() - wall0
        if not ok:
            self.registry.inc("service.task_failed")
            for pending in live:
                await self._reply(pending.client, error_reply(
                    pending.request_id, "task_failed",
                    payload.get("message", payload.get("type", "?")),
                    type=payload.get("type"),
                    traceback=payload.get("traceback", "")))
            self._record(seed, seq, lanes, wall, "task_failed")
            self._free.put_nowait(worker)
            return
        members = payload.get("lanes", [payload]) \
            if message["kind"] == "run_batch" else [payload]
        certificate = None
        worker_ok = True
        if seed.op == "run" and any(
                p.message.get("validate") for p in live):
            certificate, worker_ok = await self._certify(worker, seed,
                                                         members)
        for lane, pending in enumerate(live):
            result = dict(members[lane] if lane < len(members)
                          else members[0])
            result.update({"seq": seq, "lanes": lanes, "lane": lane,
                           "attempts": pending.attempts})
            if certificate is not None \
                    and pending.message.get("validate"):
                result["certificate"] = certificate.to_dict()
            await self._reply(pending.client,
                              ok_reply(pending.request_id, result))
        self.registry.inc("service.dispatches")
        self._record(seed, seq, lanes, wall, "ok")
        if worker_ok:
            self._free.put_nowait(worker)

    @staticmethod
    def _payload(message: dict) -> dict:
        payload = {key: message[key] for key in
                   ("kernel", "source", "ftype", "n", "backend",
                    "options", "action", "path", "name")
                   if key in message}
        return payload

    async def _handle_fault(self, worker: WorkerHandle,
                            live: List[PendingRequest],
                            fault: Exception) -> None:
        """Reap + respawn the shard, retry what has retries left."""
        hung = isinstance(fault, WorkerHung)
        self.registry.inc("service.timeouts" if hung
                          else "service.worker_deaths")
        await asyncio.to_thread(worker.reap)
        if worker in self.workers:
            self.workers.remove(worker)
        self._add_worker()
        retry: List[PendingRequest] = []
        for pending in live:
            if pending.attempts > self.config.max_retries:
                await self._reply(pending.client, error_reply(
                    pending.request_id,
                    "timeout" if hung else "worker_failed",
                    f"{fault} (after {pending.attempts} attempt(s))",
                    attempts=pending.attempts))
            else:
                retry.append(pending)
        if retry:
            self.registry.inc("service.retries", len(retry))
            self._requeue(retry)

    async def _certify(self, worker: WorkerHandle,
                       seed: PendingRequest, members: List[dict]):
        """One serial reference run on the same warm shard, every
        service lane checked against it bit-for-bit.

        Returns ``(certificate_or_None, worker_ok)`` -- a shard that
        faulted during the reference run is reaped and replaced here
        (the primary results are already in hand, so nothing retries),
        and the caller must not return it to the free pool.
        """
        payload = self._payload(seed.message)
        options = dict(payload.get("options") or {})
        options["engine"] = "jit"
        payload["options"] = options
        try:
            ok, reference, delta = await asyncio.to_thread(
                worker.call, {"kind": "run", "payload": payload},
                self.config.request_timeout)
        except (WorkerDied, WorkerHung) as fault:
            self.registry.inc("service.timeouts"
                              if isinstance(fault, WorkerHung)
                              else "service.worker_deaths")
            await asyncio.to_thread(worker.reap)
            if worker in self.workers:
                self.workers.remove(worker)
            self._add_worker()
            return None, False
        self.store.absorb_delta(self.registry, delta)
        if not ok:
            return None, True
        kernel = payload.get("kernel", "?")
        certificate = Certificate(
            subject=f"{kernel}:{payload.get('ftype')}"
                    f"@n={payload.get('n')}",
            kind="service", reference="serial.inprocess",
            witness={"transition": "serial↔service",
                     "digest": reference.get("digest"),
                     "lanes": len(members)})
        for lane, member in enumerate(members):
            certificate.add(make_check(
                f"service.lane{lane}", SERVICE_STRICTNESS,
                reference["values"], member["values"],
                reference["report"], member["report"]))
        record_certificate(certificate)
        return certificate, True

    def _record(self, seed: PendingRequest, seq: int, lanes: int,
                wall: float, outcome: str) -> None:
        if self.ledger is None:
            return
        self.ledger.record(
            "service", op=seed.op, seq=seq, lanes=lanes,
            outcome=outcome, kernel=seed.message.get("kernel"),
            ftype=seed.message.get("ftype"), n=seed.message.get("n"),
            backend=seed.message.get("backend", "mpfr"),
            attempts=seed.attempts, wall_seconds=wall)

    # ------------------------------------------------------------- #
    # Introspection
    # ------------------------------------------------------------- #

    def stats(self) -> dict:
        """The ``stats`` reply: queues, workers, store, counters."""
        occupancy = self.store.publish_occupancy(self.registry)
        metrics = self.registry.to_dict()
        counters = {name: value for name, value in
                    metrics.get("counters", {}).items()
                    if name.startswith("service.")}
        return {
            "pending": self._pending_count(),
            "clients": len(self.clients),
            "queues": {str(c.client_id): len(c.queue)
                       for c in self.clients.values() if c.queue},
            "workers": [h.pid for h in self.workers],
            "free_workers": self._free.qsize(),
            "store": occupancy,
            "counters": counters,
            "config": {
                "workers": self.config.workers,
                "queue_limit": self.config.queue_limit,
                "max_batch": self.config.max_batch,
                "request_timeout": self.config.request_timeout,
                "max_retries": self.config.max_retries,
            },
        }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vpfloat-serve",
        description="always-on vpfloat compile/run daemon")
    parser.add_argument("--socket", default=None,
                        help="Unix socket path (default: "
                             "$VPFLOAT_SERVICE_SOCKET or "
                             "~/.cache/vpfloat-repro/serve.sock)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-attempt request timeout (seconds)")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts after a worker fault")
    parser.add_argument("--cache-dir", default=None,
                        help="shared artifact store directory")
    parser.add_argument("--cache-bytes", type=int, default=None,
                        help="store size budget (LRU eviction)")
    parser.add_argument("--ledger", default=None,
                        help="append service records to this JSONL "
                             "run ledger")
    parser.add_argument("--metrics-out", default=None,
                        help="dump the metrics registry as JSON on "
                             "shutdown")
    parser.add_argument("--allow-debug", action="store_true",
                        help="enable fault-injection debug ops "
                             "(tests only)")
    args = parser.parse_args(argv)
    config = ServiceConfig(
        socket_path=args.socket or "",
        workers=args.workers, queue_limit=args.queue_limit,
        max_batch=args.max_batch, request_timeout=args.timeout,
        max_retries=args.retries, cache_dir=args.cache_dir,
        max_cache_bytes=args.cache_bytes, ledger_path=args.ledger,
        metrics_out=args.metrics_out, allow_debug=args.allow_debug)
    daemon = VpfloatDaemon(config)
    print(f"vpfloat-serve: {config.workers} worker(s) on "
          f"{config.socket_path}", file=sys.stderr)
    try:
        asyncio.run(daemon.run_forever())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
