"""Client side of the compile/run service (``vpfloat-client``).

:class:`ServiceClient` is the blocking client (one Unix-socket
connection, id-correlated request/reply); :class:`AsyncServiceClient`
is the asyncio twin the test suite drives daemons with in-process.

The CLI front end covers operational use (``ping`` / ``run`` /
``compile`` / ``stats`` / ``shutdown``), readiness probing
(``wait``), and a self-checking concurrent workload (``mix``) that
hammers the daemon from several threads and verifies every reply's
value digest against an in-process serial ``run_kernel`` reference --
the CI smoke job's teeth.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import threading
import time
from typing import Dict, List, Optional

from .protocol import (
    ProtocolError,
    decode,
    default_socket_path,
    encode,
    request,
)


class ServiceError(RuntimeError):
    """A reply carried ``ok: false``; ``code``/``error`` kept whole."""

    def __init__(self, error: dict):
        super().__init__(f"[{error.get('code')}] {error.get('message')}")
        self.code = error.get("code")
        self.error = error


class ServiceClient:
    """Blocking line-protocol client over one connection."""

    def __init__(self, socket_path: Optional[str] = None,
                 timeout: float = 120.0):
        self.socket_path = socket_path or default_socket_path()
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(self.socket_path)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        self._lock = threading.Lock()
        self._stash: Dict[int, dict] = {}

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def call(self, op: str, **fields) -> dict:
        """One request -> its ``result`` (raises on error replies)."""
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            self._sock.sendall(encode(request(op, request_id,
                                              **fields)))
            reply = self._read_reply(request_id)
        if not reply.get("ok"):
            raise ServiceError(reply.get("error") or
                               {"code": "internal",
                                "message": "malformed error reply"})
        return reply.get("result") or {}

    def _read_reply(self, request_id: int) -> dict:
        if request_id in self._stash:
            return self._stash.pop(request_id)
        while True:
            line = self._file.readline()
            if not line:
                raise ConnectionError("daemon closed the connection")
            reply = decode(line)
            got = reply.get("id")
            if got == request_id:
                return reply
            if got is None:
                return reply  # unidentifiable bad_request reply
            self._stash[got] = reply

    def ping(self) -> dict:
        return self.call("ping")

    def run(self, kernel: str, ftype: str, n: int, **fields) -> dict:
        return self.call("run", kernel=kernel, ftype=ftype, n=n,
                         **fields)

    def compile(self, kernel: str, ftype: str, **fields) -> dict:
        return self.call("compile", kernel=kernel, ftype=ftype,
                         **fields)

    def stats(self) -> dict:
        return self.call("stats")

    def shutdown(self) -> dict:
        return self.call("shutdown")


class AsyncServiceClient:
    """asyncio twin of :class:`ServiceClient` (tests drive the daemon
    and several of these clients on one event loop)."""

    def __init__(self, socket_path: Optional[str] = None):
        self.socket_path = socket_path or default_socket_path()
        self._reader = None
        self._writer = None
        self._next_id = 0
        self._stash: Dict[int, dict] = {}

    async def connect(self) -> "AsyncServiceClient":
        import asyncio

        self._reader, self._writer = \
            await asyncio.open_unix_connection(self.socket_path)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def send(self, op: str, **fields) -> int:
        """Fire one request without waiting; returns its id (pair
        with :meth:`reply` -- this is how tests pipeline)."""
        self._next_id += 1
        self._writer.write(encode(request(op, self._next_id,
                                          **fields)))
        await self._writer.drain()
        return self._next_id

    async def reply(self, request_id: int) -> dict:
        """The raw reply object for ``request_id`` (any order)."""
        if request_id in self._stash:
            return self._stash.pop(request_id)
        while True:
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("daemon closed the connection")
            reply = decode(line)
            got = reply.get("id")
            if got == request_id or got is None:
                return reply
            self._stash[got] = reply

    async def call(self, op: str, **fields) -> dict:
        reply = await self.reply(await self.send(op, **fields))
        if not reply.get("ok"):
            raise ServiceError(reply.get("error") or {})
        return reply.get("result") or {}


def wait_for(socket_path: Optional[str] = None,
             timeout: float = 30.0) -> dict:
    """Block until the daemon answers a ping (connection retries with
    backoff); returns the ping result or raises TimeoutError."""
    path = socket_path or default_socket_path()
    deadline = time.monotonic() + timeout
    delay = 0.05
    while True:
        try:
            with ServiceClient(path, timeout=5.0) as client:
                return client.ping()
        except (OSError, ConnectionError, ProtocolError):
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"no daemon on {path} within {timeout:.0f}s") \
                    from None
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


# ----------------------------------------------------------------- #
# Self-checking concurrent workload (the CI smoke job)
# ----------------------------------------------------------------- #

def _serial_digest(kernel: str, ftype: str, n: int) -> str:
    """The in-process serial reference digest for one point."""
    from ..evaluation.harness import run_kernel
    from ..validation.certificate import values_digest

    outcome = run_kernel(kernel, ftype, n, backend="mpfr",
                         engine="jit")
    return values_digest([outcome.value] + list(outcome.outputs))


def run_mix(socket_path: Optional[str], clients: int, requests: int,
            kernels: List[str], ftype: str, n: int,
            validate: bool = False, out=sys.stdout) -> int:
    """``clients`` threads x ``requests`` mixed compile/run requests,
    every run reply checked bit-for-bit against a serial reference.

    Returns the number of failures (0 is the CI pass condition).
    """
    references = {kernel: _serial_digest(kernel, ftype, n)
                  for kernel in kernels}
    failures: List[str] = []
    lock = threading.Lock()

    def fail(message: str) -> None:
        with lock:
            failures.append(message)

    def worker(index: int) -> None:
        try:
            with ServiceClient(socket_path) as client:
                for i in range(requests):
                    kernel = kernels[(index + i) % len(kernels)]
                    if i % 4 == 3:
                        client.compile(kernel=kernel, ftype=ftype)
                        continue
                    fields = {"backend": "mpfr"}
                    if validate:
                        fields["validate"] = True
                    result = client.run(kernel, ftype, n, **fields)
                    if result.get("digest") != references[kernel]:
                        fail(f"client {index} req {i}: {kernel} digest "
                             f"{result.get('digest')} != serial "
                             f"{references[kernel]}")
                    certificate = result.get("certificate")
                    if validate and (certificate is None
                                     or not certificate.get("passed")):
                        fail(f"client {index} req {i}: certificate "
                             f"missing or failed: {certificate}")
        except Exception as error:
            fail(f"client {index}: {type(error).__name__}: {error}")

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    checked = clients * requests
    if failures:
        for message in failures:
            print(f"FAIL {message}", file=sys.stderr)
    print(f"mix: {checked} requests from {clients} client(s), "
          f"{len(failures)} failure(s)", file=out)
    return len(failures)


# ----------------------------------------------------------------- #
# CLI
# ----------------------------------------------------------------- #

def _dump(payload: dict) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vpfloat-client",
        description="client for the vpfloat compile/run daemon")
    parser.add_argument("--socket", default=None,
                        help="daemon socket path")
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("ping")
    commands.add_parser("stats")
    commands.add_parser("shutdown")

    wait = commands.add_parser("wait",
                               help="block until the daemon is up")
    wait.add_argument("--timeout", type=float, default=30.0)

    run = commands.add_parser("run", help="execute one kernel point")
    run.add_argument("kernel")
    run.add_argument("--ftype", default="vpfloat<mpfr, 16, 64>")
    run.add_argument("--n", type=int, default=6)
    run.add_argument("--backend", default="mpfr")
    run.add_argument("--engine", default=None)
    run.add_argument("--validate", action="store_true",
                     help="attach a serial<->service certificate")

    compile_ = commands.add_parser("compile",
                                   help="warm one program in the store")
    compile_.add_argument("kernel")
    compile_.add_argument("--ftype", default="vpfloat<mpfr, 16, 64>")
    compile_.add_argument("--backend", default="mpfr")

    mix = commands.add_parser(
        "mix", help="concurrent self-checking workload (CI smoke)")
    mix.add_argument("--clients", type=int, default=4)
    mix.add_argument("--requests", type=int, default=8)
    mix.add_argument("--kernels", default="gemm,atax",
                     help="comma-separated kernel names")
    mix.add_argument("--ftype", default="vpfloat<mpfr, 16, 64>")
    mix.add_argument("--n", type=int, default=6)
    mix.add_argument("--validate", action="store_true")

    args = parser.parse_args(argv)
    try:
        if args.command == "wait":
            _dump(wait_for(args.socket, timeout=args.timeout))
            return 0
        if args.command == "mix":
            wait_for(args.socket, timeout=30.0)
            kernels = [k for k in args.kernels.split(",") if k]
            return 1 if run_mix(args.socket, args.clients,
                                args.requests, kernels, args.ftype,
                                args.n, validate=args.validate) else 0
        with ServiceClient(args.socket) as client:
            if args.command == "ping":
                _dump(client.ping())
            elif args.command == "stats":
                _dump(client.stats())
            elif args.command == "shutdown":
                _dump(client.shutdown())
            elif args.command == "run":
                fields = {"backend": args.backend}
                if args.engine:
                    fields["options"] = {"engine": args.engine}
                if args.validate:
                    fields["validate"] = True
                _dump(client.run(args.kernel, args.ftype, args.n,
                                 **fields))
            elif args.command == "compile":
                _dump(client.compile(kernel=args.kernel,
                                     ftype=args.ftype,
                                     backend=args.backend))
        return 0
    except ServiceError as error:
        print(f"vpfloat-client: {error}", file=sys.stderr)
        return 1
    except (OSError, ConnectionError, TimeoutError) as error:
        print(f"vpfloat-client: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
