"""Shared content-addressed artifact store for the service.

The store *is* the two-tier :class:`~repro.core.cache.CompileCache`
(pickled programs + ``.vpcgen`` codegen sidecars, already keyed by a
content fingerprint and written atomically), promoted to a shared
multi-tenant resource:

* every worker shard opens the same directory with the same
  ``max_disk_bytes`` budget, so LRU eviction is enforced no matter
  which shard stores an artifact;
* the daemon holds a read-only probe over the directory for occupancy
  reporting (``stats`` replies, the ``compile.cache.disk_bytes``
  gauge) without ever compiling anything itself;
* per-request hit/miss/store/eviction/error deltas shipped home by the
  workers are folded into the daemon's registry under
  ``service.store.*`` so the shared store has one aggregate hit-rate
  across shards (each shard's private ``CacheStats`` only sees its own
  traffic).
"""

from __future__ import annotations

from typing import Optional

from ..core.cache import CacheStats, CompileCache

#: CacheStats fields shipped as per-request deltas by the workers.
STAT_FIELDS = ("memory_hits", "disk_hits", "misses", "stores",
               "errors", "evictions")


def stats_snapshot(stats: CacheStats) -> dict:
    return {name: getattr(stats, name) for name in STAT_FIELDS}


def stats_delta(before: dict, after: dict) -> dict:
    """The per-request store traffic between two snapshots (only the
    fields that moved, so idle requests ship an empty dict)."""
    delta = {}
    for name in STAT_FIELDS:
        moved = after.get(name, 0) - before.get(name, 0)
        if moved:
            delta[name] = moved
    return delta


class ArtifactStore:
    """The daemon's view of the shared store: configuration to hand to
    worker shards, plus occupancy probing for stats/metrics."""

    def __init__(self, directory: str,
                 max_bytes: Optional[int] = None):
        self.directory = directory
        self.max_bytes = max_bytes
        # memory_slots=0: the probe must never retain programs -- the
        # daemon process only reports, workers do the caching.
        self._probe = CompileCache(directory, memory_slots=0,
                                   max_disk_bytes=max_bytes)

    def occupancy(self) -> dict:
        entries, used = self._probe.disk_usage()
        payload = {"entries": entries, "bytes": used,
                   "max_bytes": self.max_bytes}
        if self.max_bytes:
            payload["fill"] = used / self.max_bytes
        return payload

    def absorb_delta(self, registry, delta: dict) -> None:
        """Fold one worker request's store traffic into the daemon
        registry (``service.store.*`` counters + occupancy gauges)."""
        if registry is None:
            return
        for name, moved in delta.items():
            registry.inc(f"service.store.{name}", moved)

    def publish_occupancy(self, registry) -> dict:
        occupancy = self.occupancy()
        if registry is not None:
            registry.gauge("service.store.entries",
                           occupancy["entries"])
            registry.gauge("service.store.bytes", occupancy["bytes"])
        return occupancy
