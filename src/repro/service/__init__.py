"""Always-on compile/run service over the vpfloat toolchain.

``vpfloat-serve`` keeps a warm pool of worker processes (JIT-hot
programs, a shared content-addressed artifact store) behind a local
Unix socket; ``vpfloat-client`` talks to it.  Same-point run requests
from concurrent clients coalesce into one batched dispatch, faults
(dead/hung workers, vanished clients) degrade gracefully, and every
reply is bit-identical to the batch CLI -- certified on request via
the ``serial<->service`` transition.

Layers: :mod:`~repro.service.protocol` (wire format),
:mod:`~repro.service.store` (shared artifact store),
:mod:`~repro.service.worker` (shard runtime),
:mod:`~repro.service.daemon` (scheduler + socket server),
:mod:`~repro.service.client` (blocking + asyncio clients, CLI).
"""

from .client import (
    AsyncServiceClient,
    ServiceClient,
    ServiceError,
    run_mix,
    wait_for,
)
from .daemon import ServiceConfig, VpfloatDaemon, WorkerDied, WorkerHung
from .protocol import (
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    coalesce_key,
    decode,
    default_socket_path,
    encode,
    error_reply,
    ok_reply,
    request,
    validate_request,
)
from .store import ArtifactStore, stats_delta, stats_snapshot

__all__ = [
    "ERROR_CODES", "OPS", "PROTOCOL_VERSION", "ArtifactStore",
    "AsyncServiceClient", "ProtocolError", "ServiceClient",
    "ServiceConfig", "ServiceError", "VpfloatDaemon", "WorkerDied",
    "WorkerHung", "coalesce_key", "decode", "default_socket_path",
    "encode", "error_reply", "ok_reply", "request", "run_mix",
    "stats_delta", "stats_snapshot", "validate_request", "wait_for",
]
