"""Module / Function / BasicBlock containers and the vpfloat attribute registry.

The registry implements the paper's §III-B design decision: vpfloat IR
types are *not* linked to their attribute Values through def-use chains.
Instead the module keeps a side table from each non-constant attribute
Value to the list of types using it.  RAUW consults this table so a
replaced attribute updates every dependent type, and dead-code elimination
refuses to delete Values that still parameterize a live type (they are
pinned via the ``vpfloat.attr.keepalive`` intrinsic emitted by codegen).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .instructions import BranchInst, Instruction, PhiInst
from .types import FunctionType, IRType, VPFloatType
from .values import Argument, Constant, GlobalVariable, Value

KEEPALIVE_INTRINSIC = "vpfloat.attr.keepalive"


class VPFloatAttributeRegistry:
    """Side table: attribute Value -> vpfloat types parameterized by it."""

    def __init__(self) -> None:
        self._types_by_attr: Dict[int, List[VPFloatType]] = {}
        self._attrs_by_id: Dict[int, Value] = {}

    def register_type(self, vptype: VPFloatType) -> None:
        """Track every non-constant attribute of ``vptype``."""
        for attr in vptype.attributes():
            if isinstance(attr, Constant):
                continue  # constants never change (paper §III-B)
            bucket = self._types_by_attr.setdefault(id(attr), [])
            if vptype not in [t for t in bucket if t is vptype]:
                bucket.append(vptype)
            self._attrs_by_id[id(attr)] = attr

    def is_attribute(self, value: Value) -> bool:
        return id(value) in self._types_by_attr

    def types_using(self, value: Value) -> List[VPFloatType]:
        return list(self._types_by_attr.get(id(value), []))

    def replace_attribute(self, old: Value, new: Value) -> None:
        """An attribute Value was RAUW'd: mutate every dependent type."""
        bucket = self._types_by_attr.pop(id(old), None)
        self._attrs_by_id.pop(id(old), None)
        if not bucket:
            return
        for vptype in bucket:
            if vptype.exp_attr is old:
                vptype.exp_attr = new
            if vptype.prec_attr is old:
                vptype.prec_attr = new
            if vptype.size_attr is old:
                vptype.size_attr = new
            self.register_type(vptype)

    def attributes(self) -> Iterable[Value]:
        return list(self._attrs_by_id.values())


class BasicBlock:
    """A label plus a straight-line list of instructions."""

    def __init__(self, name: str, parent: Optional["Function"] = None):
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    # ------------------------------------------------------------ #

    def append(self, inst: Instruction) -> Instruction:
        if self.terminator is not None:
            raise RuntimeError(
                f"block {self.name} already has a terminator; "
                f"cannot append {inst.opcode}"
            )
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert_before(self, position: Instruction, inst: Instruction) -> None:
        index = self.instructions.index(position)
        inst.parent = self
        self.instructions.insert(index, inst)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if isinstance(term, BranchInst):
            return list(term.targets)
        return []

    def predecessors(self) -> List["BasicBlock"]:
        preds = []
        if self.parent is None:
            return preds
        for block in self.parent.blocks:
            if self in block.successors():
                preds.append(block)
        return preds

    def phis(self) -> List[PhiInst]:
        return [i for i in self.instructions if isinstance(i, PhiInst)]

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, PhiInst)]

    def __str__(self) -> str:
        body = "\n".join(f"  {inst}" for inst in self.instructions)
        return f"{self.name}:\n{body}"

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name}>"


class Function(Value):
    """A function definition (blocks non-empty) or declaration."""

    is_function_like = True

    def __init__(self, name: str, type: FunctionType,
                 arg_names: Optional[List[str]] = None,
                 parent: Optional["Module"] = None):
        super().__init__(type, name)
        self.parent = parent
        self.blocks: List[BasicBlock] = []
        self.args: List[Argument] = []
        names = arg_names or [f"arg{i}" for i in range(len(type.params))]
        for i, (ptype, pname) in enumerate(zip(type.params, names)):
            self.args.append(Argument(ptype, pname, self, i))
        self.attributes: set = set()  # e.g. {"noinline", "alwaysinline"}
        self._name_counter = 0
        #: For dynamically-typed signatures: maps attribute argument index
        #: checks inserted at call boundaries (paper Listing 3).
        self.dynamic_attr_checks: List[tuple] = []

    # ------------------------------------------------------------ #

    @property
    def return_type(self) -> IRType:
        return self.type.ret

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise RuntimeError(f"function {self.name} has no body")
        return self.blocks[0]

    def add_block(self, name: str, after: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(self.unique_name(name), self)
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def unique_name(self, base: str) -> str:
        self._name_counter += 1
        return f"{base}.{self._name_counter}" if base else f"v{self._name_counter}"

    def instructions(self) -> Iterable[Instruction]:
        for block in self.blocks:
            yield from list(block.instructions)

    @property
    def vpfloat_attributes(self) -> Optional[VPFloatAttributeRegistry]:
        return self.parent.vpfloat_attributes if self.parent else None

    def __str__(self) -> str:
        args = ", ".join(f"{a.type} %{a.name}" for a in self.args)
        header = f"define {self.return_type} @{self.name}({args})"
        if self.is_declaration:
            return f"declare {self.return_type} @{self.name}({args})"
        body = "\n\n".join(str(b) for b in self.blocks)
        return f"{header} {{\n{body}\n}}"


class Module:
    """A compilation unit: functions, globals, and the attribute registry."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.vpfloat_attributes = VPFloatAttributeRegistry()

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function @{func.name}")
        func.parent = self
        self.functions[func.name] = func
        return func

    def get_function(self, name: str) -> Function:
        return self.functions[name]

    def get_or_declare(self, name: str, type: FunctionType) -> Function:
        """Fetch an existing function or create a declaration."""
        existing = self.functions.get(name)
        if existing is not None:
            return existing
        return self.add_function(Function(name, type))

    def remove_function(self, name: str) -> None:
        func = self.functions.pop(name)
        func.parent = None

    def add_global(self, var: GlobalVariable) -> GlobalVariable:
        if var.name in self.globals:
            raise ValueError(f"duplicate global @{var.name}")
        var.parent = self
        self.globals[var.name] = var
        return var

    def register_vpfloat_type(self, vptype: VPFloatType) -> None:
        self.vpfloat_attributes.register_type(vptype)

    def __str__(self) -> str:
        parts = [f"; module {self.name}"]
        for g in self.globals.values():
            init = f" = {g.initializer}" if g.initializer else ""
            parts.append(f"@{g.name} : {g.value_type}{init}")
        for func in self.functions.values():
            parts.append(str(func))
        return "\n\n".join(parts)
