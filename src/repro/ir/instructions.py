"""IR instruction set (SSA, LLVM-flavoured).

Instructions are Values; operands maintain def-use edges automatically.
Floating-point opcodes (``fadd`` etc.) operate uniformly on IEEE float
types and vpfloat types -- the property the paper's design hinges on:
upstream optimizations never special-case variable precision.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .types import (
    I1,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IRType,
    IntType,
    PointerType,
    StructType,
    VPFloatType,
)
from .values import Value

INT_BINOPS = ("add", "sub", "mul", "sdiv", "srem", "udiv", "urem",
              "and", "or", "xor", "shl", "ashr", "lshr")
FP_BINOPS = ("fadd", "fsub", "fmul", "fdiv", "frem")
ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge",
                   "ult", "ule", "ugt", "uge")
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge",
                   "ueq", "une", "ord", "uno")
CAST_OPCODES = ("zext", "sext", "trunc", "bitcast", "sitofp", "fptosi",
                "uitofp", "fpext", "fptrunc", "vpconv", "ptrtoint",
                "inttoptr")


class Instruction(Value):
    """Base instruction: an SSA value with operands and a parent block."""

    opcode: str = "<abstract>"

    def __init__(self, opcode: str, type: IRType,
                 operands: Sequence[Value], name: str = ""):
        super().__init__(type, name)
        self.opcode = opcode
        self.parent = None  # BasicBlock, set on insertion
        self.operands: List[Value] = []
        for op in operands:
            self._append_operand(op)

    # ------------------------------------------------------------ #
    # Operand bookkeeping
    # ------------------------------------------------------------ #

    def _append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise TypeError(f"operand of {self.opcode} must be a Value, "
                            f"got {type(value).__name__}")
        self.operands.append(value)
        value.add_user(self)

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        old.remove_user(self)
        self.operands[index] = value
        value.add_user(self)

    def replace_operand(self, old: Value, new: Value) -> None:
        for i, op in enumerate(self.operands):
            if op is old:
                self.set_operand(i, new)

    def drop_all_references(self) -> None:
        for op in self.operands:
            op.remove_user(self)
        self.operands = []

    def erase_from_parent(self) -> None:
        """Unlink and destroy; the instruction must have no remaining users."""
        if self.users:
            raise RuntimeError(
                f"cannot erase {self.opcode} %{self.name}: it still has users"
            )
        self.drop_all_references()
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (BranchInst, RetInst, UnreachableInst))

    @property
    def function(self):
        return self.parent.parent if self.parent else None

    @property
    def module(self):
        func = self.function
        return func.parent if func else None

    def __str__(self) -> str:
        ops = ", ".join(_operand_str(o) for o in self.operands)
        if self.type == VOID:
            return f"{self.opcode} {ops}"
        return f"%{self.name} = {self.opcode} {self.type} {ops}"


def _operand_str(v: Value) -> str:
    from .values import Constant

    if isinstance(v, Constant):
        return str(v)
    name = v.name or f"t{id(v) & 0xFFFF:x}"
    prefix = "@" if getattr(v, "is_function_like", False) else "%"
    return f"{prefix}{name}"


# ----------------------------------------------------------------- #
# Memory
# ----------------------------------------------------------------- #

class AllocaInst(Instruction):
    """Stack allocation.  ``count`` (optional) supports VLAs and
    dynamically-sized vpfloat arrays; the element size of a dynamic
    vpfloat type is resolved at runtime via ``__sizeof_vpfloat``."""

    def __init__(self, allocated_type: IRType, count: Optional[Value] = None,
                 name: str = ""):
        operands = [count] if count is not None else []
        super().__init__("alloca", PointerType(allocated_type), operands, name)
        self.allocated_type = allocated_type

    @property
    def count(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def __str__(self) -> str:
        extra = f", count {_operand_str(self.count)}" if self.count else ""
        return f"%{self.name} = alloca {self.allocated_type}{extra}"


class LoadInst(Instruction):
    def __init__(self, ptr: Value, name: str = ""):
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"load requires a pointer operand, got {ptr.type}")
        super().__init__("load", ptr.type.pointee, [ptr], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class StoreInst(Instruction):
    def __init__(self, value: Value, ptr: Value):
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"store requires a pointer operand, got {ptr.type}")
        super().__init__("store", VOID, [value, ptr])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class GEPInst(Instruction):
    """getelementptr: address arithmetic over arrays/structs.

    The first index scales by the pointee type; further indices step into
    aggregate types.  For pointers to dynamically-sized vpfloat elements
    the byte offset cannot be computed statically -- the UNUM backend's
    address-computation pass rewrites these (paper §III-C2, pass 2).
    """

    def __init__(self, ptr: Value, indices: Sequence[Value], name: str = ""):
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"gep requires a pointer operand, got {ptr.type}")
        result = _gep_result_type(ptr.type, indices)
        super().__init__("gep", result, [ptr, *indices], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]


def _gep_result_type(ptr_type: PointerType, indices: Sequence[Value]) -> IRType:
    from .values import ConstantInt

    current: IRType = ptr_type.pointee
    for index in indices[1:]:  # first index never changes the type
        if isinstance(current, ArrayType):
            current = current.element
        elif isinstance(current, StructType):
            if not isinstance(index, ConstantInt):
                raise TypeError("struct gep index must be a constant")
            current = current.fields[index.value]
        else:
            raise TypeError(f"cannot gep into scalar type {current}")
    return PointerType(current)


# ----------------------------------------------------------------- #
# Arithmetic / comparison / casts
# ----------------------------------------------------------------- #

class BinaryInst(Instruction):
    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in INT_BINOPS and opcode not in FP_BINOPS:
            raise ValueError(f"unknown binary opcode {opcode}")
        if opcode in FP_BINOPS and not lhs.type.is_fp:
            raise TypeError(f"{opcode} requires FP operands, got {lhs.type}")
        if opcode in INT_BINOPS and not lhs.type.is_integer:
            raise TypeError(f"{opcode} requires integer operands, got {lhs.type}")
        if lhs.type != rhs.type:
            raise TypeError(
                f"{opcode} operand types differ: {lhs.type} vs {rhs.type}"
            )
        super().__init__(opcode, lhs.type, [lhs, rhs], name)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class FNegInst(Instruction):
    def __init__(self, value: Value, name: str = ""):
        if not value.type.is_fp:
            raise TypeError(f"fneg requires an FP operand, got {value.type}")
        super().__init__("fneg", value.type, [value], name)


class ICmpInst(Instruction):
    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate}")
        if lhs.type != rhs.type:
            raise TypeError("icmp operand types differ")
        super().__init__("icmp", I1, [lhs, rhs], name)
        self.predicate = predicate

    def __str__(self) -> str:
        return (f"%{self.name} = icmp {self.predicate} "
                f"{_operand_str(self.operands[0])}, "
                f"{_operand_str(self.operands[1])}")


class FCmpInst(Instruction):
    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate {predicate}")
        if lhs.type != rhs.type:
            raise TypeError(
                f"fcmp operand types differ: {lhs.type} vs {rhs.type}"
            )
        super().__init__("fcmp", I1, [lhs, rhs], name)
        self.predicate = predicate

    def __str__(self) -> str:
        return (f"%{self.name} = fcmp {self.predicate} "
                f"{_operand_str(self.operands[0])}, "
                f"{_operand_str(self.operands[1])}")


class CastInst(Instruction):
    """Casts, including ``vpconv`` between any two FP-like types.

    ``vpconv`` is the paper's explicit conversion (no implicit conversions
    exist between vpfloat types, §III-A3); it may lose precision.
    """

    def __init__(self, opcode: str, value: Value, dest_type: IRType,
                 name: str = ""):
        if opcode not in CAST_OPCODES:
            raise ValueError(f"unknown cast opcode {opcode}")
        super().__init__(opcode, dest_type, [value], name)

    @property
    def source(self) -> Value:
        return self.operands[0]

    def __str__(self) -> str:
        return (f"%{self.name} = {self.opcode} "
                f"{_operand_str(self.source)} to {self.type}")


# ----------------------------------------------------------------- #
# Control flow
# ----------------------------------------------------------------- #

class PhiInst(Instruction):
    def __init__(self, type: IRType, name: str = ""):
        super().__init__("phi", type, [], name)
        self.incoming_blocks: List = []

    def add_incoming(self, value: Value, block) -> None:
        self._append_operand(value)
        self.incoming_blocks.append(block)

    @property
    def incoming(self) -> List[Tuple[Value, object]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for_block(self, block) -> Value:
        for value, b in self.incoming:
            if b is block:
                return value
        raise KeyError(f"phi has no incoming edge from {block.name}")

    def remove_incoming(self, block) -> None:
        for i, b in enumerate(self.incoming_blocks):
            if b is block:
                self.operands[i].remove_user(self)
                del self.operands[i]
                del self.incoming_blocks[i]
                return
        raise KeyError(f"phi has no incoming edge from {block.name}")

    def replace_incoming_block(self, old, new) -> None:
        self.incoming_blocks = [new if b is old else b
                                for b in self.incoming_blocks]

    def __str__(self) -> str:
        pairs = ", ".join(
            f"[{_operand_str(v)}, %{b.name}]" for v, b in self.incoming
        )
        return f"%{self.name} = phi {self.type} {pairs}"


class SelectInst(Instruction):
    def __init__(self, cond: Value, true_value: Value, false_value: Value,
                 name: str = ""):
        if true_value.type != false_value.type:
            raise TypeError("select arm types differ")
        super().__init__("select", true_value.type,
                         [cond, true_value, false_value], name)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]


class CallInst(Instruction):
    """Call; ``result_type`` overrides the declared return type for
    type-polymorphic runtime intrinsics (e.g. ``vp.sqrt`` whose result is
    the vpfloat type of its argument)."""

    def __init__(self, callee, args: Sequence[Value], name: str = "",
                 result_type: Optional[IRType] = None):
        if result_type is None:
            result_type = (callee.type.ret
                           if isinstance(callee.type, FunctionType) else VOID)
        super().__init__("call", result_type, list(args), name)
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return list(self.operands)

    def __str__(self) -> str:
        args = ", ".join(_operand_str(a) for a in self.operands)
        target = getattr(self.callee, "name", str(self.callee))
        if self.type == VOID:
            return f"call @{target}({args})"
        return f"%{self.name} = call {self.type} @{target}({args})"


class BranchInst(Instruction):
    """Unconditional (1 target) or conditional (2 targets) branch."""

    def __init__(self, targets: Sequence, cond: Optional[Value] = None):
        operands = [cond] if cond is not None else []
        super().__init__("br", VOID, operands)
        self.targets = list(targets)
        if cond is not None and len(self.targets) != 2:
            raise ValueError("conditional branch requires two targets")
        if cond is None and len(self.targets) != 1:
            raise ValueError("unconditional branch requires one target")

    @property
    def condition(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    @property
    def is_conditional(self) -> bool:
        return bool(self.operands)

    def replace_target(self, old, new) -> None:
        self.targets = [new if t is old else t for t in self.targets]

    def __str__(self) -> str:
        if self.is_conditional:
            return (f"br {_operand_str(self.condition)}, "
                    f"%{self.targets[0].name}, %{self.targets[1].name}")
        return f"br %{self.targets[0].name}"


class RetInst(Instruction):
    def __init__(self, value: Optional[Value] = None):
        operands = [value] if value is not None else []
        super().__init__("ret", VOID, operands)

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def __str__(self) -> str:
        if self.operands:
            return f"ret {_operand_str(self.operands[0])}"
        return "ret void"


class UnreachableInst(Instruction):
    def __init__(self):
        super().__init__("unreachable", VOID, [])

    def __str__(self) -> str:
        return "unreachable"
