"""IR value hierarchy: constants, arguments, globals, def-use tracking.

``Value`` is the LLVM-style base class (the paper represents vpfloat type
attributes as ``Value`` objects so they can be constants, arguments or
instructions).  Def-use edges are tracked through ``users``; RAUW
(`replace_all_uses_with`) also notifies the module's vpfloat attribute
registry so types stay valid when an attribute is replaced (paper §III-B).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .types import IRType, IntType, FloatType, VPFloatType

if TYPE_CHECKING:  # pragma: no cover
    from .module import Function
    from ..bigfloat import BigFloat


class Value:
    """Anything that can be an operand: has a type, a name, and users."""

    def __init__(self, type: IRType, name: str = ""):
        self.type = type
        self.name = name
        self.users: List["Instruction"] = []  # noqa: F821 (forward ref)

    def add_user(self, inst) -> None:
        self.users.append(inst)

    def remove_user(self, inst) -> None:
        # A user appears once per operand slot it occupies.
        self.users.remove(inst)

    def replace_all_uses_with(self, new: "Value") -> None:
        """RAUW: rewrite every user operand, then fix attribute registries."""
        if new is self:
            return
        for user in list(self.users):
            user.replace_operand(self, new)
        registry = _find_registry(self)
        if registry is not None:
            registry.replace_attribute(self, new)

    def __str__(self) -> str:
        return f"%{self.name}" if self.name else f"%<unnamed {id(self):x}>"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


def _find_registry(value: Value):
    """Locate the module attribute registry responsible for ``value``."""
    func = getattr(value, "parent", None)
    # Instructions hang off blocks; arguments hang off functions.
    block_parent = getattr(func, "parent", None)
    candidates = [func, block_parent, getattr(block_parent, "parent", None)]
    for c in candidates:
        registry = getattr(c, "vpfloat_attributes", None)
        if registry is not None:
            return registry
    return None


class Constant(Value):
    """Base of all constants (never tracked by the attribute registry)."""


class ConstantInt(Constant):
    def __init__(self, type: IntType, value: int):
        super().__init__(type)
        mask = (1 << type.bits) - 1
        value &= mask
        # Canonical signed interpretation.
        if value >> (type.bits - 1) and type.bits > 1:
            value -= 1 << type.bits
        self.value = value

    def __str__(self) -> str:
        return str(self.value)

    def __eq__(self, other):
        return (
            isinstance(other, ConstantInt)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self):
        return hash(("cint", self.type.bits, self.value))


class ConstantFloat(Constant):
    def __init__(self, type: FloatType, value: float):
        super().__init__(type)
        self.value = float(value)

    def __str__(self) -> str:
        return repr(self.value)

    def __eq__(self, other):
        return (
            isinstance(other, ConstantFloat)
            and other.type == self.type
            and (other.value == self.value
                 or (other.value != other.value and self.value != self.value))
        )

    def __hash__(self):
        return hash(("cfloat", self.type.bits, self.value))


class ConstantVPFloat(Constant):
    """A vpfloat literal (``v``/``y`` suffixed in the C dialect).

    For dynamically-sized types the constant is materialized at the
    format's maximum configuration and converted at runtime (paper
    §III-A5, last paragraph); ``value`` stores the maximum-configuration
    BigFloat either way.
    """

    def __init__(self, type: VPFloatType, value: "BigFloat"):
        super().__init__(type)
        self.value = value

    def __str__(self) -> str:
        from ..bigfloat import to_str

        suffix = "v" if self.type.format == "unum" else "y"
        return f"{to_str(self.value, 8)}{suffix}"

    def __eq__(self, other):
        return (
            isinstance(other, ConstantVPFloat)
            and other.type == self.type
            and other.value.is_nan() == self.value.is_nan()
            and (other.value.is_nan() or other.value == self.value)
        )

    def __hash__(self):
        return hash(("cvp", hash(self.type)))


class UndefValue(Constant):
    def __str__(self) -> str:
        return "undef"


class ConstantPointerNull(Constant):
    def __str__(self) -> str:
        return "null"


class ConstantString(Constant):
    """Inline string data (used by print-style runtime calls)."""

    def __init__(self, type: IRType, text: str):
        super().__init__(type)
        self.text = text

    def __str__(self) -> str:
        return f'c"{self.text}"'


class Argument(Value):
    def __init__(self, type: IRType, name: str, parent: Optional["Function"] = None,
                 index: int = -1):
        super().__init__(type, name)
        self.parent = parent
        self.index = index


class GlobalVariable(Value):
    """A module-level variable; its Value type is a pointer to ``value_type``."""

    def __init__(self, value_type: IRType, name: str,
                 initializer: Optional[Constant] = None):
        from .types import PointerType

        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.parent = None  # set by Module.add_global

    def __str__(self) -> str:
        return f"@{self.name}"
