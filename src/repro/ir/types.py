"""IR type system, including first-class variable-precision FP types.

Mirrors the paper's LLVM extension (§III-B): alongside the usual void /
integer / float / pointer / array / struct / function types there is
:class:`VPFloatType`, whose exponent / precision / size attributes are IR
*Values* -- constants for constant-size types, or arguments/instructions
for dynamically-sized types.  Two vpfloat types are equal only when they
hold exactly the same attributes (paper §III-A3: no subtyping, no implicit
conversion).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .values import Value


class IRType:
    """Base class of all IR types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)

    @property
    def is_vpfloat(self) -> bool:
        return isinstance(self, VPFloatType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_fp(self) -> bool:
        """True for any floating-point-like type (IEEE or vpfloat)."""
        return self.is_float or self.is_vpfloat

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def size_bytes(self) -> int:
        """Static size in bytes; raises for dynamically-sized types."""
        raise TypeError(f"type {self} has no static size")


class VoidType(IRType):
    def __str__(self) -> str:
        return "void"

    def __eq__(self, other):
        return isinstance(other, VoidType)

    def __hash__(self):
        return hash("void")


class LabelType(IRType):
    """Type of basic-block references."""

    def __str__(self) -> str:
        return "label"

    def __eq__(self, other):
        return isinstance(other, LabelType)

    def __hash__(self):
        return hash("label")


class IntType(IRType):
    def __init__(self, bits: int):
        if bits < 1:
            raise ValueError(f"integer width must be >= 1, got {bits}")
        self.bits = bits

    def __str__(self) -> str:
        return f"i{self.bits}"

    def __eq__(self, other):
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self):
        return hash(("int", self.bits))

    def size_bytes(self) -> int:
        return max(1, (self.bits + 7) // 8)


class FloatType(IRType):
    """IEEE binary32 / binary64."""

    def __init__(self, bits: int):
        if bits not in (32, 64):
            raise ValueError(f"FloatType supports 32/64 bits, got {bits}")
        self.bits = bits

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"

    def __eq__(self, other):
        return isinstance(other, FloatType) and other.bits == self.bits

    def __hash__(self):
        return hash(("float", self.bits))

    def size_bytes(self) -> int:
        return self.bits // 8

    @property
    def precision(self) -> int:
        """Significand bits including the hidden bit."""
        return 24 if self.bits == 32 else 53


class PointerType(IRType):
    def __init__(self, pointee: IRType):
        self.pointee = pointee

    def __str__(self) -> str:
        return f"{self.pointee}*"

    def __eq__(self, other):
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self):
        return hash(("ptr", hash(self.pointee)))

    def size_bytes(self) -> int:
        return 8


class ArrayType(IRType):
    def __init__(self, element: IRType, count: int):
        if count < 0:
            raise ValueError("array count must be >= 0")
        self.element = element
        self.count = count

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    def __eq__(self, other):
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self):
        return hash(("array", hash(self.element), self.count))

    def size_bytes(self) -> int:
        return self.element.size_bytes() * self.count


class StructType(IRType):
    def __init__(self, name: str, fields: Sequence[IRType] | None = None):
        self.name = name
        self.fields: List[IRType] = list(fields) if fields else []

    def set_body(self, fields: Sequence[IRType]) -> None:
        self.fields = list(fields)

    def __str__(self) -> str:
        return f"%{self.name}"

    def __eq__(self, other):
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self):
        return hash(("struct", self.name))

    def size_bytes(self) -> int:
        return sum(f.size_bytes() for f in self.fields)

    def field_offset(self, index: int) -> int:
        return sum(f.size_bytes() for f in self.fields[:index])


class FunctionType(IRType):
    def __init__(self, ret: IRType, params: Sequence[IRType]):
        self.ret = ret
        self.params: Tuple[IRType, ...] = tuple(params)

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.params)
        return f"{self.ret} ({args})"

    def __eq__(self, other):
        return (
            isinstance(other, FunctionType)
            and other.ret == self.ret
            and other.params == self.params
        )

    def __hash__(self):
        return hash(("fn", hash(self.ret), self.params))


class VPFloatType(IRType):
    """``vpfloat<format, ...>`` with attribute Values (paper §III-B).

    For ``mpfr``: ``exp_attr`` is the exponent field width in bits and
    ``prec_attr`` the number of mantissa bits.  For ``unum``: ``exp_attr``
    holds *ess* and ``prec_attr`` holds *fss* (paper §III-A2), with an
    optional ``size_attr`` bounding the byte footprint.

    Attribute Values are NOT connected to the type through def-use edges;
    the owning :class:`~repro.ir.module.Module` keeps a side registry so
    RAUW updates types and a keepalive intrinsic protects them from DCE
    (paper §III-B, first bullet).
    """

    FORMATS = ("mpfr", "unum", "posit")

    def __init__(
        self,
        format: str,
        exp_attr: "Value",
        prec_attr: "Value",
        size_attr: Optional["Value"] = None,
    ):
        if format not in self.FORMATS:
            raise ValueError(f"unsupported vpfloat format {format!r}")
        self.format = format
        self.exp_attr = exp_attr
        self.prec_attr = prec_attr
        self.size_attr = size_attr

    # -------------------------------------------------------------- #

    def attributes(self) -> List["Value"]:
        attrs = [self.exp_attr, self.prec_attr]
        if self.size_attr is not None:
            attrs.append(self.size_attr)
        return attrs

    @property
    def is_static(self) -> bool:
        """True when every attribute is a compile-time constant."""
        from .values import ConstantInt

        return all(isinstance(a, ConstantInt) for a in self.attributes())

    def _const(self, attr: "Value") -> int:
        from .values import ConstantInt

        if not isinstance(attr, ConstantInt):
            raise TypeError(f"attribute of {self} is not a constant")
        return attr.value

    def static_geometry(self):
        """(exponent bits, precision bits, size bytes) for static types."""
        if self.format == "unum":
            from ..unum import UnumConfig

            size = None if self.size_attr is None else self._const(self.size_attr)
            config = UnumConfig(self._const(self.exp_attr),
                                self._const(self.prec_attr), size)
            return (config.exponent_bits, config.fraction_bits,
                    config.size_bytes)
        if self.format == "posit":
            from ..unum.posit import PositConfig

            config = PositConfig(self._const(self.exp_attr),
                                 self._const(self.prec_attr))
            return (config.es, config.max_fraction_bits,
                    config.size_bytes)
        exp = self._const(self.exp_attr)
        prec = self._const(self.prec_attr)
        _validate_mpfr_attrs(exp, prec)
        # Storage: struct header (prec/sign/exp words) + mantissa limbs.
        from ..bigfloat import limb_bytes

        return (exp, prec, 24 + limb_bytes(prec))

    @property
    def static_precision(self) -> int:
        """Significand precision in bits (static types only)."""
        if self.format in ("unum", "posit"):
            return self.static_geometry()[1] + 1  # hidden bit
        return self.static_geometry()[1]

    def size_bytes(self) -> int:
        if not self.is_static:
            raise TypeError(f"dynamically-sized type {self} has no static size")
        return self.static_geometry()[2]

    # -------------------------------------------------------------- #

    def _attr_str(self, attr: Optional["Value"]) -> str:
        from .values import ConstantInt

        if attr is None:
            return ""
        if isinstance(attr, ConstantInt):
            return str(attr.value)
        return f"%{attr.name}"

    def __str__(self) -> str:
        parts = [self.format, self._attr_str(self.exp_attr),
                 self._attr_str(self.prec_attr)]
        if self.size_attr is not None:
            parts.append(self._attr_str(self.size_attr))
        return f"vpfloat<{', '.join(parts)}>"

    def __eq__(self, other):
        """Equal only with identical attributes (constants compare by value)."""
        if not isinstance(other, VPFloatType) or other.format != self.format:
            return False
        return (
            _attr_equal(self.exp_attr, other.exp_attr)
            and _attr_equal(self.prec_attr, other.prec_attr)
            and _attr_equal(self.size_attr, other.size_attr)
        )

    def __hash__(self):
        return hash(("vpfloat", self.format, _attr_key(self.exp_attr),
                     _attr_key(self.prec_attr), _attr_key(self.size_attr)))


#: MPFR backend limits: exponent field width and mantissa bits accepted by
#: the runtime checks (paper footnote 2: maximum configuration for mpfr
#: literals is 16-bit exponent; the library itself accepts up to 16384-bit
#: mantissas in this implementation).
MPFR_MAX_EXP_BITS = 16
MPFR_MIN_PREC, MPFR_MAX_PREC = 2, 16384


def _validate_mpfr_attrs(exp: int, prec: int) -> None:
    if not 1 <= exp <= MPFR_MAX_EXP_BITS:
        raise ValueError(
            f"mpfr exponent width must be in 1..{MPFR_MAX_EXP_BITS}, got {exp}"
        )
    if not MPFR_MIN_PREC <= prec <= MPFR_MAX_PREC:
        raise ValueError(
            f"mpfr precision must be in {MPFR_MIN_PREC}..{MPFR_MAX_PREC}, "
            f"got {prec}"
        )


def _attr_equal(a, b) -> bool:
    from .values import ConstantInt

    if a is None or b is None:
        return a is b
    if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
        return a.value == b.value
    return a is b


def _attr_key(a):
    from .values import ConstantInt

    if a is None:
        return None
    if isinstance(a, ConstantInt):
        return ("const", a.value)
    return ("value", id(a))


# Shared singletons for the common types.
VOID = VoidType()
LABEL = LabelType()
I1 = IntType(1)
I8 = IntType(8)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


def pointer(pointee: IRType) -> PointerType:
    return PointerType(pointee)
