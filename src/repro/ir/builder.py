"""Convenience IRBuilder with an insertion point, LLVM-style."""

from __future__ import annotations

from typing import Optional, Sequence

from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    FNegInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from .module import BasicBlock, Function, Module
from .types import (
    F64,
    I1,
    I32,
    I64,
    FloatType,
    IntType,
    IRType,
    VPFloatType,
)
from .values import ConstantFloat, ConstantInt, ConstantVPFloat, Value


class IRBuilder:
    """Creates instructions at an insertion point and names them."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block

    def set_insert_point(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        return self.block.parent

    @property
    def module(self) -> Module:
        return self.function.parent

    def _insert(self, inst: Instruction, name: str) -> Instruction:
        if name and not inst.name:
            inst.name = self.function.unique_name(name)
        elif not inst.name and inst.type.__class__.__name__ != "VoidType":
            inst.name = self.function.unique_name(inst.opcode)
        if isinstance(inst.type, VPFloatType) and self.module is not None:
            self.module.register_vpfloat_type(inst.type)
        self.block.append(inst)
        return inst

    # ------------------------------------------------------------ #
    # Constants
    # ------------------------------------------------------------ #

    def const_int(self, value: int, type: IntType = I32) -> ConstantInt:
        return ConstantInt(type, value)

    def const_i64(self, value: int) -> ConstantInt:
        return ConstantInt(I64, value)

    def const_bool(self, value: bool) -> ConstantInt:
        return ConstantInt(I1, int(value))

    def const_float(self, value: float, type: FloatType = F64) -> ConstantFloat:
        return ConstantFloat(type, value)

    def const_vpfloat(self, vptype: VPFloatType, value) -> ConstantVPFloat:
        if self.module is not None:
            self.module.register_vpfloat_type(vptype)
        return ConstantVPFloat(vptype, value)

    # ------------------------------------------------------------ #
    # Memory
    # ------------------------------------------------------------ #

    def alloca(self, type: IRType, count: Optional[Value] = None,
               name: str = "addr") -> AllocaInst:
        if isinstance(type, VPFloatType) and self.module is not None:
            self.module.register_vpfloat_type(type)
        return self._insert(AllocaInst(type, count), name)

    def load(self, ptr: Value, name: str = "load") -> LoadInst:
        return self._insert(LoadInst(ptr), name)

    def store(self, value: Value, ptr: Value) -> StoreInst:
        return self._insert(StoreInst(value, ptr), "")

    def gep(self, ptr: Value, indices: Sequence[Value],
            name: str = "gep") -> GEPInst:
        return self._insert(GEPInst(ptr, indices), name)

    # ------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------ #

    def binop(self, opcode: str, lhs: Value, rhs: Value,
              name: str = "") -> BinaryInst:
        return self._insert(BinaryInst(opcode, lhs, rhs), name or opcode)

    def add(self, a, b, name="add"):
        return self.binop("add", a, b, name)

    def sub(self, a, b, name="sub"):
        return self.binop("sub", a, b, name)

    def mul(self, a, b, name="mul"):
        return self.binop("mul", a, b, name)

    def sdiv(self, a, b, name="sdiv"):
        return self.binop("sdiv", a, b, name)

    def srem(self, a, b, name="srem"):
        return self.binop("srem", a, b, name)

    def fadd(self, a, b, name="fadd"):
        return self.binop("fadd", a, b, name)

    def fsub(self, a, b, name="fsub"):
        return self.binop("fsub", a, b, name)

    def fmul(self, a, b, name="fmul"):
        return self.binop("fmul", a, b, name)

    def fdiv(self, a, b, name="fdiv"):
        return self.binop("fdiv", a, b, name)

    def fneg(self, a, name="fneg"):
        return self._insert(FNegInst(a), name)

    def icmp(self, predicate: str, lhs: Value, rhs: Value,
             name: str = "cmp") -> ICmpInst:
        return self._insert(ICmpInst(predicate, lhs, rhs), name)

    def fcmp(self, predicate: str, lhs: Value, rhs: Value,
             name: str = "fcmp") -> FCmpInst:
        return self._insert(FCmpInst(predicate, lhs, rhs), name)

    def cast(self, opcode: str, value: Value, dest: IRType,
             name: str = "cast") -> CastInst:
        if isinstance(dest, VPFloatType) and self.module is not None:
            self.module.register_vpfloat_type(dest)
        return self._insert(CastInst(opcode, value, dest), name)

    def vpconv(self, value: Value, dest: IRType, name: str = "vpconv"):
        return self.cast("vpconv", value, dest, name)

    def select(self, cond: Value, a: Value, b: Value,
               name: str = "select") -> SelectInst:
        return self._insert(SelectInst(cond, a, b), name)

    # ------------------------------------------------------------ #
    # Control flow
    # ------------------------------------------------------------ #

    def phi(self, type: IRType, name: str = "phi") -> PhiInst:
        inst = PhiInst(type)
        inst.name = self.function.unique_name(name)
        if isinstance(type, VPFloatType) and self.module is not None:
            self.module.register_vpfloat_type(type)
        # Phis must precede non-phi instructions.
        position = 0
        for i, existing in enumerate(self.block.instructions):
            if isinstance(existing, PhiInst):
                position = i + 1
        inst.parent = self.block
        self.block.instructions.insert(position, inst)
        return inst

    def call(self, callee, args: Sequence[Value], name: str = "call",
             result_type: Optional[IRType] = None) -> CallInst:
        inst = CallInst(callee, args, result_type=result_type)
        if isinstance(inst.type, VPFloatType) and self.module is not None:
            self.module.register_vpfloat_type(inst.type)
        return self._insert(inst, name)

    def br(self, dest: BasicBlock) -> BranchInst:
        return self._insert(BranchInst([dest]), "")

    def cond_br(self, cond: Value, true_dest: BasicBlock,
                false_dest: BasicBlock) -> BranchInst:
        return self._insert(BranchInst([true_dest, false_dest], cond), "")

    def ret(self, value: Optional[Value] = None) -> RetInst:
        return self._insert(RetInst(value), "")

    def unreachable(self) -> UnreachableInst:
        return self._insert(UnreachableInst(), "")
