"""SSA intermediate representation with first-class vpfloat types.

The repository's LLVM-IR stand-in (DESIGN.md §2): types and constants
(:mod:`~repro.ir.types`, :mod:`~repro.ir.values`), instructions
(:mod:`~repro.ir.instructions`), containers plus the vpfloat attribute
registry (:mod:`~repro.ir.module`), an :class:`IRBuilder`, CFG analyses
(:mod:`~repro.ir.analysis`) and a structural verifier.
"""

from .analysis import DominatorTree, Loop, LoopInfo, reverse_postorder
from .builder import IRBuilder
from .instructions import (
    CAST_OPCODES,
    FCMP_PREDICATES,
    FP_BINOPS,
    ICMP_PREDICATES,
    INT_BINOPS,
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    FNegInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from .module import (
    KEEPALIVE_INTRINSIC,
    BasicBlock,
    Function,
    Module,
    VPFloatAttributeRegistry,
)
from .types import (
    F32,
    F64,
    I1,
    I8,
    I32,
    I64,
    LABEL,
    MPFR_MAX_EXP_BITS,
    MPFR_MAX_PREC,
    MPFR_MIN_PREC,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    IRType,
    PointerType,
    StructType,
    VoidType,
    VPFloatType,
    pointer,
)
from .values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ConstantString,
    ConstantVPFloat,
    GlobalVariable,
    UndefValue,
    Value,
)
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "Module", "Function", "BasicBlock", "IRBuilder",
    "VPFloatAttributeRegistry", "KEEPALIVE_INTRINSIC",
    "IRType", "VoidType", "IntType", "FloatType", "PointerType",
    "ArrayType", "StructType", "FunctionType", "VPFloatType", "pointer",
    "VOID", "LABEL", "I1", "I8", "I32", "I64", "F32", "F64",
    "MPFR_MAX_EXP_BITS", "MPFR_MIN_PREC", "MPFR_MAX_PREC",
    "Value", "Constant", "ConstantInt", "ConstantFloat", "ConstantVPFloat",
    "ConstantPointerNull", "ConstantString", "UndefValue", "Argument",
    "GlobalVariable",
    "Instruction", "AllocaInst", "LoadInst", "StoreInst", "GEPInst",
    "BinaryInst", "FNegInst", "ICmpInst", "FCmpInst", "CastInst", "PhiInst",
    "SelectInst", "CallInst", "BranchInst", "RetInst", "UnreachableInst",
    "INT_BINOPS", "FP_BINOPS", "ICMP_PREDICATES", "FCMP_PREDICATES",
    "CAST_OPCODES",
    "DominatorTree", "LoopInfo", "Loop", "reverse_postorder",
    "verify_module", "verify_function", "VerificationError",
]
