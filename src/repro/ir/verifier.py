"""IR verifier: structural and SSA well-formedness checks.

Run after codegen and after every pass in the test suite.  Checks:

- every block ends in exactly one terminator, none mid-block;
- phis appear only at block heads and cover every predecessor;
- operand def-use edges are consistent (operand lists vs user lists);
- SSA dominance: every use is dominated by its definition;
- branch targets belong to the same function;
- vpfloat attribute Values are integer-typed and, for instruction/argument
  attributes, live in the same function as the types that use them.
"""

from __future__ import annotations

from typing import List

from .analysis import DominatorTree
from .instructions import AllocaInst, Instruction, PhiInst
from .module import Function, Module
from .types import ArrayType, PointerType, VPFloatType
from .values import Argument, Constant, Value


class VerificationError(Exception):
    """The IR violates a structural invariant."""


def verify_module(module: Module) -> None:
    for func in module.functions.values():
        if not func.is_declaration:
            verify_function(func)


def verify_function(func: Function) -> None:
    errors: List[str] = []
    _check_blocks(func, errors)
    if not errors:
        _check_ssa(func, errors)
    _check_vpfloat_types(func, errors)
    if errors:
        listing = "\n  - ".join(errors)
        raise VerificationError(
            f"function @{func.name} failed verification:\n  - {listing}"
        )


def _check_blocks(func: Function, errors: List[str]) -> None:
    for block in func.blocks:
        if block.parent is not func:
            errors.append(f"block {block.name}: wrong parent")
        if not block.instructions:
            errors.append(f"block {block.name}: empty block")
            continue
        term = block.instructions[-1]
        if not term.is_terminator:
            errors.append(f"block {block.name}: missing terminator")
        for inst in block.instructions[:-1]:
            if inst.is_terminator:
                errors.append(
                    f"block {block.name}: terminator {inst.opcode} mid-block"
                )
        seen_non_phi = False
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                if seen_non_phi:
                    errors.append(
                        f"block {block.name}: phi %{inst.name} after non-phi"
                    )
            else:
                seen_non_phi = True
            if inst.parent is not block:
                errors.append(
                    f"block {block.name}: %{inst.name} has wrong parent"
                )
            _check_operand_links(inst, errors)
        # Branch targets must be blocks of this function.
        for succ in block.successors():
            if succ not in func.blocks:
                errors.append(
                    f"block {block.name}: branch to foreign block {succ.name}"
                )
    # Phi incoming edges match predecessors (reachable blocks only:
    # passes may leave detached loops for SimplifyCFG to collect).
    from .analysis import reverse_postorder

    reachable = set(reverse_postorder(func))
    for block in func.blocks:
        if block not in reachable:
            continue
        preds = set(block.predecessors())
        for phi in block.phis():
            incoming = {b for _, b in phi.incoming}
            if incoming != preds:
                errors.append(
                    f"phi %{phi.name} in {block.name}: incoming blocks "
                    f"{sorted(b.name for b in incoming)} != predecessors "
                    f"{sorted(p.name for p in preds)}"
                )


def _check_operand_links(inst: Instruction, errors: List[str]) -> None:
    for op in inst.operands:
        if inst not in op.users:
            errors.append(
                f"%{inst.name or inst.opcode}: operand {op} lacks back-edge"
            )


def _check_ssa(func: Function, errors: List[str]) -> None:
    domtree = DominatorTree(func)
    reachable = set(domtree.rpo)
    positions = {}
    for block in func.blocks:
        for i, inst in enumerate(block.instructions):
            positions[inst] = (block, i)
    for block in func.blocks:
        if block not in reachable:
            continue  # unreachable code is not subject to dominance
        for inst in block.instructions:
            operands = inst.operands
            if isinstance(inst, PhiInst):
                # A phi use must dominate the incoming edge, not the phi.
                for value, pred in inst.incoming:
                    if not _def_available(value, pred, None, domtree,
                                          positions, at_end=True):
                        errors.append(
                            f"phi %{inst.name}: incoming {value} from "
                            f"{pred.name} does not dominate the edge"
                        )
                continue
            for op in operands:
                if not _def_available(op, block, inst, domtree, positions):
                    errors.append(
                        f"%{inst.name or inst.opcode} in {block.name}: "
                        f"operand {op} does not dominate the use"
                    )


def _def_available(value: Value, block, user, domtree, positions,
                   at_end: bool = False) -> bool:
    if isinstance(value, (Constant, Argument)):
        return True
    if not isinstance(value, Instruction):
        return True  # globals, functions
    if value not in positions:
        return False  # detached instruction used as operand
    def_block, def_index = positions[value]
    if def_block not in domtree._rpo_index:
        return False
    if def_block is block:
        if at_end:
            return True
        return def_index < positions[user][1]
    return domtree.strictly_dominates(def_block, block) or domtree.dominates(
        def_block, block
    )


def _check_vpfloat_types(func: Function, errors: List[str]) -> None:
    def check_type(vptype: VPFloatType, where: str) -> None:
        for attr in vptype.attributes():
            if isinstance(attr, Constant):
                continue
            if not attr.type.is_integer:
                errors.append(
                    f"{where}: vpfloat attribute {attr} is not integer-typed"
                )
            owner = getattr(attr, "parent", None)
            owner_func = getattr(owner, "parent", owner)
            if isinstance(attr, Argument) and attr.parent is not func:
                errors.append(
                    f"{where}: vpfloat attribute argument %{attr.name} "
                    f"belongs to another function"
                )
            elif isinstance(attr, Instruction) and owner_func is not func:
                errors.append(
                    f"{where}: vpfloat attribute %{attr.name} "
                    f"defined outside this function"
                )

    def core_vpfloat(type):
        while isinstance(type, (PointerType, ArrayType)):
            type = type.pointee if isinstance(type, PointerType) \
                else type.element
        return type if isinstance(type, VPFloatType) else None

    for arg in func.args:
        vptype = core_vpfloat(arg.type)
        if vptype is not None:
            check_type(vptype, f"argument %{arg.name}")
    for inst in func.instructions():
        vptype = core_vpfloat(inst.type)
        if vptype is not None:
            check_type(vptype, f"%{inst.name or inst.opcode}")
        if isinstance(inst, AllocaInst):
            vptype = core_vpfloat(inst.allocated_type)
            if vptype is not None:
                check_type(vptype, f"%{inst.name or inst.opcode}")
