"""CFG analyses: reverse postorder, dominators, dominance frontiers, loops.

Dominators use the Cooper–Harvey–Kennedy iterative algorithm; loop
detection finds natural loops from back edges.  These feed mem2reg, LICM,
loop idiom recognition, unrolling and the polyhedral-lite optimizer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .module import BasicBlock, Function


def reverse_postorder(func: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry (unreachable excluded)."""
    visited: Set[BasicBlock] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        visited.add(block)
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    if func.blocks:
        visit(func.entry)
    order.reverse()
    return order


class DominatorTree:
    """Immediate dominators + dominance queries for one function."""

    def __init__(self, func: Function):
        self.function = func
        self.rpo = reverse_postorder(func)
        self._rpo_index = {b: i for i, b in enumerate(self.rpo)}
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute()
        self.children: Dict[BasicBlock, List[BasicBlock]] = {
            b: [] for b in self.rpo
        }
        for block, parent in self.idom.items():
            if parent is not None and parent is not block:
                self.children[parent].append(block)

    def _compute(self) -> None:
        if not self.rpo:
            return
        entry = self.rpo[0]
        self.idom = {entry: entry}
        changed = True
        while changed:
            changed = False
            for block in self.rpo[1:]:
                preds = [p for p in block.predecessors() if p in self.idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for p in preds[1:]:
                    new_idom = self._intersect(p, new_idom)
                if self.idom.get(block) is not new_idom:
                    self.idom[block] = new_idom
                    changed = True

    def _intersect(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while self._rpo_index[a] > self._rpo_index[b]:
                a = self.idom[a]
            while self._rpo_index[b] > self._rpo_index[a]:
                b = self.idom[b]
        return a

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        current: Optional[BasicBlock] = b
        entry = self.rpo[0] if self.rpo else None
        while current is not None:
            if current is a:
                return True
            if current is entry:
                return False
            current = self.idom.get(current)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def frontiers(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Dominance frontiers (Cooper-Harvey-Kennedy)."""
        df: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in self.rpo}
        for block in self.rpo:
            preds = [p for p in block.predecessors() if p in self.idom]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner is not self.idom[block]:
                    df[runner].add(block)
                    runner = self.idom[runner]
        return df


class Loop:
    """A natural loop: header plus body blocks."""

    def __init__(self, header: BasicBlock, blocks: Set[BasicBlock]):
        self.header = header
        self.blocks = blocks
        self.subloops: List["Loop"] = []
        self.parent: Optional["Loop"] = None

    @property
    def depth(self) -> int:
        depth, current = 1, self.parent
        while current is not None:
            depth += 1
            current = current.parent
        return depth

    def exits(self) -> List[BasicBlock]:
        """Blocks outside the loop reachable from inside."""
        out: List[BasicBlock] = []
        for block in self.blocks:
            for succ in block.successors():
                if succ not in self.blocks and succ not in out:
                    out.append(succ)
        return out

    def exiting_blocks(self) -> List[BasicBlock]:
        return [
            b for b in self.blocks
            if any(s not in self.blocks for s in b.successors())
        ]

    def latches(self) -> List[BasicBlock]:
        return [b for b in self.blocks
                if self.header in b.successors() and b is not self.header]

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if any."""
        outside = [p for p in self.header.predecessors()
                   if p not in self.blocks]
        if len(outside) == 1 and len(outside[0].successors()) == 1:
            return outside[0]
        return None

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def __repr__(self) -> str:
        return f"<Loop header={self.header.name} blocks={len(self.blocks)}>"


class LoopInfo:
    """All natural loops of a function, nested."""

    def __init__(self, func: Function):
        self.function = func
        self.domtree = DominatorTree(func)
        self.loops: List[Loop] = []
        self._discover()

    def _discover(self) -> None:
        headers: Dict[BasicBlock, Set[BasicBlock]] = {}
        for block in self.domtree.rpo:
            for succ in block.successors():
                if self.domtree.dominates(succ, block):  # back edge
                    headers.setdefault(succ, set()).update(
                        self._natural_loop(succ, block)
                    )
        for header, blocks in headers.items():
            self.loops.append(Loop(header, blocks))
        # Establish nesting: a loop is a subloop when its header is inside
        # another loop's body.
        for inner in self.loops:
            best: Optional[Loop] = None
            for outer in self.loops:
                if outer is inner:
                    continue
                if inner.header in outer.blocks and inner.blocks <= outer.blocks:
                    if best is None or len(outer.blocks) < len(best.blocks):
                        best = outer
            if best is not None:
                inner.parent = best
                best.subloops.append(inner)

    @staticmethod
    def _natural_loop(header: BasicBlock, latch: BasicBlock) -> Set[BasicBlock]:
        blocks = {header, latch}
        worklist = [latch]
        while worklist:
            block = worklist.pop()
            for pred in block.predecessors():
                if pred not in blocks:
                    blocks.add(pred)
                    worklist.append(pred)
        return blocks

    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        """Innermost loop containing ``block``."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if block in loop.blocks:
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best

    def top_level(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def innermost(self) -> List[Loop]:
        return [l for l in self.loops if not l.subloops]
