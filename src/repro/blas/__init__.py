"""Variable-precision BLAS (paper Listing 4)."""

from .vblas import (
    VBLAS_DIALECT_SOURCE,
    BlasOps,
    Vector,
    vaxpy,
    vcopy,
    vdot,
    vfrom,
    vgemv,
    vnorm2,
    vscal,
    vzero,
)

__all__ = [
    "vaxpy", "vscal", "vdot", "vgemv", "vnorm2", "vcopy", "vzero",
    "vfrom", "Vector", "BlasOps", "VBLAS_DIALECT_SOURCE",
]
