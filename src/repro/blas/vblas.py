"""Variable-precision BLAS over BigFloat vectors (paper Listing 4).

The paper implements CG on top of a precision-generic BLAS whose
functions take the precision as their first argument (``vaxpy``,
``vgemv``, ``vdot``, ``vscal``).  This module is that library's
reference implementation: every routine computes with correctly-rounded
BigFloat arithmetic at the requested precision and records its operation
counts in a :class:`BlasOps` tally, which the performance model converts
to cycles (so the Fig. 3 runtime curve reflects the same MPFR cost model
as the compiled benchmarks).

A dialect-source version of the same interface (compiled through the full
flow) lives in :data:`VBLAS_DIALECT_SOURCE` and is exercised by tests and
the quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..bigfloat import BigFloat, arith

Vector = List[BigFloat]


@dataclass
class BlasOps:
    """Operation tally for the cost model."""

    adds: int = 0
    muls: int = 0
    divs: int = 0
    sqrts: int = 0
    loads: int = 0
    stores: int = 0

    def merge(self, other: "BlasOps") -> None:
        self.adds += other.adds
        self.muls += other.muls
        self.divs += other.divs
        self.sqrts += other.sqrts
        self.loads += other.loads
        self.stores += other.stores

    def cycles(self, prec: int, costs=None,
               per_op_temp: bool = False) -> int:
        """Modeled cycles at ``prec`` bits (MPFR software execution).

        ``per_op_temp`` adds an init/clear pair per arithmetic operation
        -- the Boost baseline's temporary churn."""
        from ..runtime.cost_model import CycleCosts

        costs = costs or CycleCosts()
        total = 0
        total += self.adds * costs.mpfr_op_cost("mpfr_add", prec)
        total += self.muls * costs.mpfr_op_cost("mpfr_mul", prec)
        total += self.divs * costs.mpfr_op_cost("mpfr_div", prec)
        total += self.sqrts * costs.mpfr_op_cost("mpfr_sqrt", prec)
        total += (self.loads + self.stores) * costs.int_op
        if per_op_temp:
            per_temp = (costs.mpfr_op_cost("mpfr_init2", prec)
                        + costs.mpfr_op_cost("mpfr_clear", prec))
            total += (self.adds + self.muls + self.divs + self.sqrts) \
                * per_temp
        return total


def vzero(n: int, prec: int) -> Vector:
    return [BigFloat.zero(prec) for _ in range(n)]


def vfrom(values: Sequence[float], prec: int) -> Vector:
    return [BigFloat.from_value(v, prec) for v in values]


def vcopy(x: Vector, prec: int, ops: BlasOps | None = None) -> Vector:
    if ops is not None:
        ops.loads += len(x)
        ops.stores += len(x)
    return [v.round_to(prec) for v in x]


def vaxpy(prec: int, alpha: BigFloat, x: Vector, y: Vector,
          ops: BlasOps | None = None) -> Vector:
    """y <- alpha*x + y (paper Listing 4 vaxpy, unit strides)."""
    if len(x) != len(y):
        raise ValueError("vaxpy length mismatch")
    if ops is not None:
        ops.muls += len(x)
        ops.adds += len(x)
        ops.loads += 2 * len(x)
        ops.stores += len(x)
    return [arith.add(arith.mul(alpha, xi, prec), yi, prec)
            for xi, yi in zip(x, y)]


def vscal(prec: int, alpha: BigFloat, x: Vector,
          ops: BlasOps | None = None) -> Vector:
    """x <- alpha*x."""
    if ops is not None:
        ops.muls += len(x)
        ops.loads += len(x)
        ops.stores += len(x)
    return [arith.mul(alpha, xi, prec) for xi in x]


def vdot(prec: int, x: Vector, y: Vector,
         ops: BlasOps | None = None) -> BigFloat:
    """dot(x, y), accumulated at the working precision."""
    if len(x) != len(y):
        raise ValueError("vdot length mismatch")
    if ops is not None:
        ops.muls += len(x)
        ops.adds += len(x)
        ops.loads += 2 * len(x)
    total = BigFloat.zero(prec)
    for xi, yi in zip(x, y):
        total = arith.add(total, arith.mul(xi, yi, prec), prec)
    return total


def vnorm2(prec: int, x: Vector, ops: BlasOps | None = None) -> BigFloat:
    """Euclidean norm at the working precision."""
    total = vdot(prec, x, x, ops)
    if ops is not None:
        ops.sqrts += 1
    return arith.sqrt(total, prec)


def vgemv(prec: int, alpha: BigFloat, matrix, x: Vector, beta: BigFloat,
          y: Vector, ops: BlasOps | None = None) -> Vector:
    """y <- alpha*A*x + beta*y for a CSR matrix (paper Listing 4 vgemv:
    the matrix entries are doubles, the vectors variable precision)."""
    n = matrix.nrows
    if len(x) != matrix.ncols or len(y) != n:
        raise ValueError("vgemv shape mismatch")
    result: Vector = []
    nnz = 0
    for i in range(n):
        acc = BigFloat.zero(prec)
        for j, a in matrix.row(i):
            acc = arith.add(acc, arith.mul(
                BigFloat.from_float(a, prec), x[j], prec), prec)
            nnz += 1
        term = arith.mul(alpha, acc, prec)
        result.append(arith.add(term, arith.mul(beta, y[i], prec), prec))
    if ops is not None:
        ops.muls += nnz + 2 * n
        ops.adds += nnz + n
        ops.loads += 2 * nnz + n
        ops.stores += n
    return result


#: Listing 4 of the paper, transliterated into the dialect (dense gemv
#: variant).  Compiled by tests and the quickstart example.
VBLAS_DIALECT_SOURCE = r"""
void vaxpy(unsigned precision, int n,
           vpfloat<mpfr, 16, precision> alpha,
           vpfloat<mpfr, 16, precision> *X,
           vpfloat<mpfr, 16, precision> *Y) {
  for (int i = 0; i < n; i++)
    Y[i] = alpha * X[i] + Y[i];
}

void vscal(unsigned precision, int n,
           vpfloat<mpfr, 16, precision> alpha,
           vpfloat<mpfr, 16, precision> *X) {
  for (int i = 0; i < n; i++)
    X[i] = alpha * X[i];
}

vpfloat<mpfr, 16, precision>
vdot(unsigned precision, int n,
     vpfloat<mpfr, 16, precision> *X,
     vpfloat<mpfr, 16, precision> *Y) {
  vpfloat<mpfr, 16, precision> acc = 0.0;
  for (int i = 0; i < n; i++)
    acc = acc + X[i] * Y[i];
  return acc;
}

void vgemv(unsigned precision, int m, int n,
           vpfloat<mpfr, 16, precision> alpha,
           double *A,
           vpfloat<mpfr, 16, precision> *X,
           vpfloat<mpfr, 16, precision> beta,
           vpfloat<mpfr, 16, precision> *Y) {
  for (int i = 0; i < m; i++) {
    vpfloat<mpfr, 16, precision> acc = 0.0;
    for (int j = 0; j < n; j++)
      acc = acc + A[i*n+j] * X[j];
    Y[i] = alpha * acc + beta * Y[i];
  }
}
"""
