"""PolyBench kernels written in the vpfloat C dialect.

Faithful (flattened-index) ports of the PolyBench 4.1 kernels the paper
evaluates (Figs. 1-2, Table I), templated over the element type:

- ``FTYPE`` expands to a vpfloat type, ``double`` or ``float``;
- ``SQRT(x)`` expands to ``vp_sqrt``/``sqrt`` accordingly;
- every kernel ships with a deterministic PolyBench-style initializer and
  a ``run(n)`` driver that allocates (heap) buffers, runs the kernel, and
  returns the output base pointer so harnesses can read exact results.

Dataset classes follow the PolyBench naming but are scaled to simulator-
friendly sizes (documented in EXPERIMENTS.md): the accuracy and locality
*trends* across classes are what Table I / Fig. 1 exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Dataset class -> problem size, per dimensionality of the kernel's
#: iteration space (so cubic kernels stay tractable in the interpreter).
DATASETS: Dict[str, Dict[int, int]] = {
    "mini":   {1: 64,  2: 16, 3: 8},
    "small":  {1: 128, 2: 24, 3: 12},
    "medium": {1: 256, 2: 32, 3: 16},
    "large":  {1: 512, 2: 48, 3: 24},
    "xlarge": {1: 1024, 2: 64, 3: 32},
}

DATASET_ORDER = ("mini", "small", "medium", "large", "xlarge")


@dataclass
class KernelSpec:
    """One benchmark kernel."""

    name: str
    source: str
    #: Dimensionality class used to pick N for a dataset label.
    dims: int = 2
    #: Number of output elements produced by run(n), as a function of n.
    output_count: str = "n*n"
    #: Extra note (e.g. paper-reported behaviour).
    note: str = ""

    def instantiate(self, ftype: str) -> str:
        if ftype.startswith("vpfloat"):
            sqrt_fn, fabs_fn = "vp_sqrt", "vp_fabs"
        else:
            sqrt_fn, fabs_fn = "sqrt", "fabs"
        return (self.source
                .replace("FTYPE", ftype)
                .replace("SQRT", sqrt_fn)
                .replace("FABS", fabs_fn))

    def size_for(self, dataset: str) -> int:
        return DATASETS[dataset][self.dims]

    def outputs(self, n: int) -> int:
        return eval(self.output_count, {"n": n})  # noqa: S307 - trusted


KERNELS: Dict[str, KernelSpec] = {}


def _kernel(name: str, source: str, dims: int = 2,
            output_count: str = "n*n", note: str = "") -> None:
    KERNELS[name] = KernelSpec(name=name, source=source, dims=dims,
                               output_count=output_count, note=note)


# ----------------------------------------------------------------- #
# Linear algebra: BLAS-like
# ----------------------------------------------------------------- #

_kernel("gemm", r"""
void kernel_gemm(int n, FTYPE *C, FTYPE *A, FTYPE *B,
                 FTYPE alpha, FTYPE beta) {
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      C[i*n+j] = beta * C[i*n+j];
  for (int i = 0; i < n; i++)
    for (int k = 0; k < n; k++)
      for (int j = 0; j < n; j++)
        C[i*n+j] = C[i*n+j] + alpha * A[i*n+k] * B[k*n+j];
}

long run(int n) {
  FTYPE C[n*n];
  FTYPE A[n*n];
  FTYPE B[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      C[i*n+j] = (double)((i*j+1) % n) / n;
      A[i*n+j] = (double)(i*(j+1) % n) / n;
      B[i*n+j] = (double)(i*(j+2) % n) / n;
    }
  kernel_gemm(n, C, A, B, 1.5, 1.2);
  for (int i = 0; i < n*n; i++) out[i] = C[i];
  return (long)out;
}
""", dims=3)

_kernel("2mm", r"""
void kernel_2mm(int n, FTYPE *tmp, FTYPE *A, FTYPE *B, FTYPE *C, FTYPE *D,
                FTYPE alpha, FTYPE beta) {
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      FTYPE acc = 0.0;
      for (int k = 0; k < n; k++)
        acc = acc + alpha * A[i*n+k] * B[k*n+j];
      tmp[i*n+j] = acc;
    }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      FTYPE acc = beta * D[i*n+j];
      for (int k = 0; k < n; k++)
        acc = acc + tmp[i*n+k] * C[k*n+j];
      D[i*n+j] = acc;
    }
}

long run(int n) {
  FTYPE tmp[n*n]; FTYPE A[n*n]; FTYPE B[n*n]; FTYPE C[n*n]; FTYPE D[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i*n+j] = (double)((i*j+1) % n) / n;
      B[i*n+j] = (double)((i*(j+1)+2) % n) / n;
      C[i*n+j] = (double)((i*(j+3)+1) % n) / n;
      D[i*n+j] = (double)((i*(j+2)) % n) / n;
    }
  kernel_2mm(n, tmp, A, B, C, D, 1.5, 1.2);
  for (int i = 0; i < n*n; i++) out[i] = D[i];
  return (long)out;
}
""", dims=3)

_kernel("3mm", r"""
void kernel_3mm(int n, FTYPE *E, FTYPE *A, FTYPE *B, FTYPE *F, FTYPE *C,
                FTYPE *D, FTYPE *G) {
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      FTYPE acc = 0.0;
      for (int k = 0; k < n; k++) acc = acc + A[i*n+k] * B[k*n+j];
      E[i*n+j] = acc;
    }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      FTYPE acc = 0.0;
      for (int k = 0; k < n; k++) acc = acc + C[i*n+k] * D[k*n+j];
      F[i*n+j] = acc;
    }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      FTYPE acc = 0.0;
      for (int k = 0; k < n; k++) acc = acc + E[i*n+k] * F[k*n+j];
      G[i*n+j] = acc;
    }
}

long run(int n) {
  FTYPE E[n*n]; FTYPE A[n*n]; FTYPE B[n*n]; FTYPE F[n*n];
  FTYPE C[n*n]; FTYPE D[n*n]; FTYPE G[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i*n+j] = (double)((i*j+1) % n) / (5*n);
      B[i*n+j] = (double)((i*(j+1)+2) % n) / (5*n);
      C[i*n+j] = (double)(i*(j+3) % n) / (5*n);
      D[i*n+j] = (double)((i*(j+2)+2) % n) / (5*n);
    }
  kernel_3mm(n, E, A, B, F, C, D, G);
  for (int i = 0; i < n*n; i++) out[i] = G[i];
  return (long)out;
}
""", dims=3)

_kernel("atax", r"""
void kernel_atax(int n, FTYPE *A, FTYPE *x, FTYPE *y, FTYPE *tmp) {
  for (int i = 0; i < n; i++) y[i] = 0.0;
  for (int i = 0; i < n; i++) {
    FTYPE acc = 0.0;
    for (int j = 0; j < n; j++)
      acc = acc + A[i*n+j] * x[j];
    tmp[i] = acc;
    for (int j = 0; j < n; j++)
      y[j] = y[j] + A[i*n+j] * tmp[i];
  }
}

long run(int n) {
  FTYPE A[n*n]; FTYPE x[n]; FTYPE y[n]; FTYPE tmp[n];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    x[i] = 1.0 + (double)i / n;
    for (int j = 0; j < n; j++)
      A[i*n+j] = (double)((i+j) % n) / (5*n);
  }
  kernel_atax(n, A, x, y, tmp);
  for (int i = 0; i < n; i++) out[i] = y[i];
  return (long)out;
}
""", dims=2, output_count="n")

_kernel("bicg", r"""
void kernel_bicg(int n, FTYPE *A, FTYPE *s, FTYPE *q, FTYPE *p, FTYPE *r) {
  for (int i = 0; i < n; i++) s[i] = 0.0;
  for (int i = 0; i < n; i++) {
    q[i] = 0.0;
    for (int j = 0; j < n; j++) {
      s[j] = s[j] + r[i] * A[i*n+j];
      q[i] = q[i] + A[i*n+j] * p[j];
    }
  }
}

long run(int n) {
  FTYPE A[n*n]; FTYPE s[n]; FTYPE q[n]; FTYPE p[n]; FTYPE r[n];
  FTYPE *out = (FTYPE*)malloc(2*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    p[i] = (double)(i % n) / n;
    r[i] = (double)((i+1) % n) / n;
    for (int j = 0; j < n; j++)
      A[i*n+j] = (double)((i*(j+1)) % n) / n;
  }
  kernel_bicg(n, A, s, q, p, r);
  for (int i = 0; i < n; i++) { out[i] = s[i]; out[n+i] = q[i]; }
  return (long)out;
}
""", dims=2, output_count="2*n")

_kernel("mvt", r"""
void kernel_mvt(int n, FTYPE *x1, FTYPE *x2, FTYPE *y1, FTYPE *y2,
                FTYPE *A) {
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      x1[i] = x1[i] + A[i*n+j] * y1[j];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      x2[i] = x2[i] + A[j*n+i] * y2[j];
}

long run(int n) {
  FTYPE x1[n]; FTYPE x2[n]; FTYPE y1[n]; FTYPE y2[n]; FTYPE A[n*n];
  FTYPE *out = (FTYPE*)malloc(2*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    x1[i] = (double)(i % n) / n;
    x2[i] = (double)((i+1) % n) / n;
    y1[i] = (double)((i+3) % n) / n;
    y2[i] = (double)((i+4) % n) / n;
    for (int j = 0; j < n; j++)
      A[i*n+j] = (double)((i*j) % n) / n;
  }
  kernel_mvt(n, x1, x2, y1, y2, A);
  for (int i = 0; i < n; i++) { out[i] = x1[i]; out[n+i] = x2[i]; }
  return (long)out;
}
""", dims=2, output_count="2*n")

_kernel("gemver", r"""
void kernel_gemver(int n, FTYPE alpha, FTYPE beta, FTYPE *A, FTYPE *u1,
                   FTYPE *v1, FTYPE *u2, FTYPE *v2, FTYPE *w, FTYPE *x,
                   FTYPE *y, FTYPE *z) {
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      A[i*n+j] = A[i*n+j] + u1[i] * v1[j] + u2[i] * v2[j];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      x[i] = x[i] + beta * A[j*n+i] * y[j];
  for (int i = 0; i < n; i++)
    x[i] = x[i] + z[i];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      w[i] = w[i] + alpha * A[i*n+j] * x[j];
}

long run(int n) {
  FTYPE A[n*n]; FTYPE u1[n]; FTYPE v1[n]; FTYPE u2[n]; FTYPE v2[n];
  FTYPE w[n]; FTYPE x[n]; FTYPE y[n]; FTYPE z[n];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    u1[i] = (double)i / n; v1[i] = (double)(i+1) / (2*n);
    u2[i] = (double)(i+2) / (3*n); v2[i] = (double)(i+3) / (4*n);
    w[i] = 0.0; x[i] = 0.0;
    y[i] = (double)(i+4) / (5*n); z[i] = (double)(i+5) / (6*n);
    for (int j = 0; j < n; j++)
      A[i*n+j] = (double)(i*j % n) / n;
  }
  kernel_gemver(n, 1.5, 1.2, A, u1, v1, u2, v2, w, x, y, z);
  for (int i = 0; i < n; i++) out[i] = w[i];
  return (long)out;
}
""", dims=2, output_count="n")

_kernel("gesummv", r"""
void kernel_gesummv(int n, FTYPE alpha, FTYPE beta, FTYPE *A, FTYPE *B,
                    FTYPE *tmp, FTYPE *x, FTYPE *y) {
  for (int i = 0; i < n; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (int j = 0; j < n; j++) {
      tmp[i] = A[i*n+j] * x[j] + tmp[i];
      y[i] = B[i*n+j] * x[j] + y[i];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
}

long run(int n) {
  FTYPE A[n*n]; FTYPE B[n*n]; FTYPE tmp[n]; FTYPE x[n]; FTYPE y[n];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    x[i] = (double)(i % n) / n;
    for (int j = 0; j < n; j++) {
      A[i*n+j] = (double)((i*j+1) % n) / n;
      B[i*n+j] = (double)((i*j+2) % n) / n;
    }
  }
  kernel_gesummv(n, 1.5, 1.2, A, B, tmp, x, y);
  for (int i = 0; i < n; i++) out[i] = y[i];
  return (long)out;
}
""", dims=2, output_count="n",
        note="paper: failed on coprocessor hardware when compiled with Polly")

_kernel("syrk", r"""
void kernel_syrk(int n, FTYPE alpha, FTYPE beta, FTYPE *C, FTYPE *A) {
  for (int i = 0; i < n; i++)
    for (int j = 0; j <= i; j++)
      C[i*n+j] = beta * C[i*n+j];
  for (int i = 0; i < n; i++)
    for (int k = 0; k < n; k++)
      for (int j = 0; j <= i; j++)
        C[i*n+j] = C[i*n+j] + alpha * A[i*n+k] * A[j*n+k];
}

long run(int n) {
  FTYPE C[n*n]; FTYPE A[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i*n+j] = (double)((i*j+1) % n) / n;
      C[i*n+j] = (double)((i+j+2) % n) / n;
    }
  kernel_syrk(n, 1.5, 1.2, C, A);
  for (int i = 0; i < n*n; i++) out[i] = C[i];
  return (long)out;
}
""", dims=3)

_kernel("syr2k", r"""
void kernel_syr2k(int n, FTYPE alpha, FTYPE beta, FTYPE *C, FTYPE *A,
                  FTYPE *B) {
  for (int i = 0; i < n; i++)
    for (int j = 0; j <= i; j++)
      C[i*n+j] = beta * C[i*n+j];
  for (int i = 0; i < n; i++)
    for (int k = 0; k < n; k++)
      for (int j = 0; j <= i; j++)
        C[i*n+j] = C[i*n+j] + A[j*n+k]*alpha*B[i*n+k]
                   + B[j*n+k]*alpha*A[i*n+k];
}

long run(int n) {
  FTYPE C[n*n]; FTYPE A[n*n]; FTYPE B[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i*n+j] = (double)((i*j+1) % n) / n;
      B[i*n+j] = (double)((i*j+2) % n) / n;
      C[i*n+j] = (double)((i+j+3) % n) / n;
    }
  kernel_syr2k(n, 1.5, 1.2, C, A, B);
  for (int i = 0; i < n*n; i++) out[i] = C[i];
  return (long)out;
}
""", dims=3)

_kernel("trmm", r"""
void kernel_trmm(int n, FTYPE alpha, FTYPE *A, FTYPE *B) {
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      for (int k = i + 1; k < n; k++)
        B[i*n+j] = B[i*n+j] + A[k*n+i] * B[k*n+j];
      B[i*n+j] = alpha * B[i*n+j];
    }
}

long run(int n) {
  FTYPE A[n*n]; FTYPE B[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i*n+j] = (double)((i+j) % n) / n;
      B[i*n+j] = (double)((n+i-j) % n) / n;
    }
  kernel_trmm(n, 1.5, A, B);
  for (int i = 0; i < n*n; i++) out[i] = B[i];
  return (long)out;
}
""", dims=3)

# ----------------------------------------------------------------- #
# Data mining
# ----------------------------------------------------------------- #

_kernel("covariance", r"""
void kernel_covariance(int n, FTYPE *data, FTYPE *cov, FTYPE *mean) {
  for (int j = 0; j < n; j++) {
    mean[j] = 0.0;
    for (int i = 0; i < n; i++)
      mean[j] = mean[j] + data[i*n+j];
    mean[j] = mean[j] / (double)n;
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      data[i*n+j] = data[i*n+j] - mean[j];
  for (int i = 0; i < n; i++)
    for (int j = i; j < n; j++) {
      FTYPE acc = 0.0;
      for (int k = 0; k < n; k++)
        acc = acc + data[k*n+i] * data[k*n+j];
      acc = acc / (double)(n - 1);
      cov[i*n+j] = acc;
      cov[j*n+i] = acc;
    }
}

long run(int n) {
  FTYPE data[n*n]; FTYPE cov[n*n]; FTYPE mean[n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      data[i*n+j] = (double)(i*j % n) / n + (double)i / (n+1);
  kernel_covariance(n, data, cov, mean);
  for (int i = 0; i < n*n; i++) out[i] = cov[i];
  return (long)out;
}
""", dims=3)

_kernel("correlation", r"""
void kernel_correlation(int n, FTYPE *data, FTYPE *corr, FTYPE *mean,
                        FTYPE *stddev) {
  FTYPE eps = 0.1;
  for (int j = 0; j < n; j++) {
    mean[j] = 0.0;
    for (int i = 0; i < n; i++)
      mean[j] = mean[j] + data[i*n+j];
    mean[j] = mean[j] / (double)n;
  }
  for (int j = 0; j < n; j++) {
    stddev[j] = 0.0;
    for (int i = 0; i < n; i++)
      stddev[j] = stddev[j] + (data[i*n+j] - mean[j])
                              * (data[i*n+j] - mean[j]);
    stddev[j] = SQRT(stddev[j] / (double)n);
    if (stddev[j] <= eps) stddev[j] = 1.0;
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      data[i*n+j] = (data[i*n+j] - mean[j])
                    / (SQRT((double)n) * stddev[j]);
  for (int i = 0; i < n - 1; i++) {
    corr[i*n+i] = 1.0;
    for (int j = i + 1; j < n; j++) {
      FTYPE acc = 0.0;
      for (int k = 0; k < n; k++)
        acc = acc + data[k*n+i] * data[k*n+j];
      corr[i*n+j] = acc;
      corr[j*n+i] = acc;
    }
  }
  corr[(n-1)*n + (n-1)] = 1.0;
}

long run(int n) {
  FTYPE data[n*n]; FTYPE corr[n*n]; FTYPE mean[n]; FTYPE stddev[n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      data[i*n+j] = (double)(i*j % n) / n + (double)(i+j) / (2*n);
      corr[i*n+j] = 0.0;
    }
  kernel_correlation(n, data, corr, mean, stddev);
  for (int i = 0; i < n*n; i++) out[i] = corr[i];
  return (long)out;
}
""", dims=3)

_kernel("gramschmidt", r"""
void kernel_gramschmidt(int n, FTYPE *A, FTYPE *R, FTYPE *Q) {
  for (int k = 0; k < n; k++) {
    FTYPE nrm = 0.0;
    for (int i = 0; i < n; i++)
      nrm = nrm + A[i*n+k] * A[i*n+k];
    R[k*n+k] = SQRT(nrm);
    for (int i = 0; i < n; i++)
      Q[i*n+k] = A[i*n+k] / R[k*n+k];
    for (int j = k + 1; j < n; j++) {
      R[k*n+j] = 0.0;
      for (int i = 0; i < n; i++)
        R[k*n+j] = R[k*n+j] + Q[i*n+k] * A[i*n+j];
      for (int i = 0; i < n; i++)
        A[i*n+j] = A[i*n+j] - Q[i*n+k] * R[k*n+j];
    }
  }
}

long run(int n) {
  FTYPE A[n*n]; FTYPE R[n*n]; FTYPE Q[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i*n+j] = (double)((i*j % n) + 1) / (2*n) + 0.001 * (double)(i + 2*j);
      R[i*n+j] = 0.0;
      Q[i*n+j] = 0.0;
    }
  kernel_gramschmidt(n, A, R, Q);
  for (int i = 0; i < n*n; i++) out[i] = R[i];
  return (long)out;
}
""", dims=3,
        note="paper Table I: numerically unstable at IEEE 32/64")

# ----------------------------------------------------------------- #
# Solvers / factorizations
# ----------------------------------------------------------------- #

_kernel("cholesky", r"""
void kernel_cholesky(int n, FTYPE *A) {
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < i; j++) {
      for (int k = 0; k < j; k++)
        A[i*n+j] = A[i*n+j] - A[i*n+k] * A[j*n+k];
      A[i*n+j] = A[i*n+j] / A[j*n+j];
    }
    for (int k = 0; k < i; k++)
      A[i*n+i] = A[i*n+i] - A[i*n+k] * A[i*n+k];
    A[i*n+i] = SQRT(A[i*n+i]);
  }
}

long run(int n) {
  FTYPE A[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++)
      A[i*n+j] = 0.0;
    for (int j = 0; j <= i; j++)
      A[i*n+j] = (double)((-j % n) + n) / n + 1.0;
    A[i*n+i] = A[i*n+i] + (double)n * 2.0;
  }
  // Make symmetric positive definite: A = B*B^T shape via diagonal boost.
  kernel_cholesky(n, A);
  for (int i = 0; i < n*n; i++) out[i] = A[i];
  return (long)out;
}
""", dims=3)

_kernel("lu", r"""
void kernel_lu(int n, FTYPE *A) {
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < i; j++) {
      for (int k = 0; k < j; k++)
        A[i*n+j] = A[i*n+j] - A[i*n+k] * A[k*n+j];
      A[i*n+j] = A[i*n+j] / A[j*n+j];
    }
    for (int j = i; j < n; j++)
      for (int k = 0; k < i; k++)
        A[i*n+j] = A[i*n+j] - A[i*n+k] * A[k*n+j];
  }
}

long run(int n) {
  FTYPE A[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i*n+j] = (double)((i*j+1) % n) / n;
      if (i == j) A[i*n+j] = A[i*n+j] + (double)n;
    }
  kernel_lu(n, A);
  for (int i = 0; i < n*n; i++) out[i] = A[i];
  return (long)out;
}
""", dims=3)

_kernel("ludcmp", r"""
void kernel_ludcmp(int n, FTYPE *A, FTYPE *b, FTYPE *x, FTYPE *y) {
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < i; j++) {
      FTYPE w = A[i*n+j];
      for (int k = 0; k < j; k++)
        w = w - A[i*n+k] * A[k*n+j];
      A[i*n+j] = w / A[j*n+j];
    }
    for (int j = i; j < n; j++) {
      FTYPE w = A[i*n+j];
      for (int k = 0; k < i; k++)
        w = w - A[i*n+k] * A[k*n+j];
      A[i*n+j] = w;
    }
  }
  for (int i = 0; i < n; i++) {
    FTYPE w = b[i];
    for (int j = 0; j < i; j++)
      w = w - A[i*n+j] * y[j];
    y[i] = w;
  }
  for (int i = n - 1; i >= 0; i--) {
    FTYPE w = y[i];
    for (int j = i + 1; j < n; j++)
      w = w - A[i*n+j] * x[j];
    x[i] = w / A[i*n+i];
  }
}

long run(int n) {
  FTYPE A[n*n]; FTYPE b[n]; FTYPE x[n]; FTYPE y[n];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    b[i] = (double)(i+1) / (2*n) + 4.0;
    x[i] = 0.0; y[i] = 0.0;
    for (int j = 0; j < n; j++) {
      A[i*n+j] = (double)((i*j+1) % n) / n;
      if (i == j) A[i*n+j] = A[i*n+j] + (double)(2*n);
    }
  }
  kernel_ludcmp(n, A, b, x, y);
  for (int i = 0; i < n; i++) out[i] = x[i];
  return (long)out;
}
""", dims=3, output_count="n",
        note="paper: failed on hardware at max precision with Polly")

_kernel("trisolv", r"""
void kernel_trisolv(int n, FTYPE *L, FTYPE *x, FTYPE *b) {
  for (int i = 0; i < n; i++) {
    x[i] = b[i];
    for (int j = 0; j < i; j++)
      x[i] = x[i] - L[i*n+j] * x[j];
    x[i] = x[i] / L[i*n+i];
  }
}

long run(int n) {
  FTYPE L[n*n]; FTYPE x[n]; FTYPE b[n];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    b[i] = (double)i / n;
    for (int j = 0; j < n; j++)
      L[i*n+j] = (double)((i+n-j+1)*2) / n;
    L[i*n+i] = L[i*n+i] + 1.0;
  }
  kernel_trisolv(n, L, x, b);
  for (int i = 0; i < n; i++) out[i] = x[i];
  return (long)out;
}
""", dims=2, output_count="n")

_kernel("durbin", r"""
void kernel_durbin(int n, FTYPE *r, FTYPE *y) {
  FTYPE z[n];
  y[0] = 0.0 - r[0];
  FTYPE beta = 1.0;
  FTYPE alpha = 0.0 - r[0];
  for (int k = 1; k < n; k++) {
    beta = (1.0 - alpha * alpha) * beta;
    FTYPE sum = 0.0;
    for (int i = 0; i < k; i++)
      sum = sum + r[k-i-1] * y[i];
    alpha = (FTYPE)0.0 - (r[k] + sum) / beta;
    for (int i = 0; i < k; i++)
      z[i] = y[i] + alpha * y[k-i-1];
    for (int i = 0; i < k; i++)
      y[i] = z[i];
    y[k] = alpha;
  }
}

long run(int n) {
  FTYPE r[n]; FTYPE y[n];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    r[i] = (double)(n + 1 - i) / (2*n);
  kernel_durbin(n, r, y);
  for (int i = 0; i < n; i++) out[i] = y[i];
  return (long)out;
}
""", dims=2, output_count="n")

# ----------------------------------------------------------------- #
# Stencils
# ----------------------------------------------------------------- #

_kernel("jacobi-1d", r"""
void kernel_jacobi_1d(int tsteps, int n, FTYPE *A, FTYPE *B) {
  for (int t = 0; t < tsteps; t++) {
    for (int i = 1; i < n - 1; i++)
      B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1]);
    for (int i = 1; i < n - 1; i++)
      A[i] = 0.33333 * (B[i-1] + B[i] + B[i+1]);
  }
}

long run(int n) {
  FTYPE A[n]; FTYPE B[n];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    A[i] = ((double)i + 2.0) / n;
    B[i] = ((double)i + 3.0) / n;
  }
  kernel_jacobi_1d(20, n, A, B);
  for (int i = 0; i < n; i++) out[i] = A[i];
  return (long)out;
}
""", dims=1, output_count="n",
        note="paper: performance similar to Boost at low precision")

_kernel("jacobi-2d", r"""
void kernel_jacobi_2d(int tsteps, int n, FTYPE *A, FTYPE *B) {
  for (int t = 0; t < tsteps; t++) {
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        B[i*n+j] = 0.2 * (A[i*n+j] + A[i*n+j-1] + A[i*n+j+1]
                          + A[(i+1)*n+j] + A[(i-1)*n+j]);
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        A[i*n+j] = 0.2 * (B[i*n+j] + B[i*n+j-1] + B[i*n+j+1]
                          + B[(i+1)*n+j] + B[(i-1)*n+j]);
  }
}

long run(int n) {
  FTYPE A[n*n]; FTYPE B[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i*n+j] = (double)i * (j+2) / n;
      B[i*n+j] = (double)i * (j+3) / n;
    }
  kernel_jacobi_2d(8, n, A, B);
  for (int i = 0; i < n*n; i++) out[i] = A[i];
  return (long)out;
}
""", dims=2)

_kernel("seidel-2d", r"""
void kernel_seidel_2d(int tsteps, int n, FTYPE *A) {
  for (int t = 0; t < tsteps; t++)
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        A[i*n+j] = (A[(i-1)*n+j-1] + A[(i-1)*n+j] + A[(i-1)*n+j+1]
                    + A[i*n+j-1] + A[i*n+j] + A[i*n+j+1]
                    + A[(i+1)*n+j-1] + A[(i+1)*n+j] + A[(i+1)*n+j+1])
                   / 9.0;
}

long run(int n) {
  FTYPE A[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      A[i*n+j] = ((double)i * (j+2) + 2.0) / n;
  kernel_seidel_2d(6, n, A);
  for (int i = 0; i < n*n; i++) out[i] = A[i];
  return (long)out;
}
""", dims=2)

_kernel("adi", r"""
void kernel_adi(int tsteps, int n, FTYPE *u, FTYPE *v, FTYPE *p, FTYPE *q) {
  FTYPE DX = 1.0 / (double)n;
  FTYPE DT = 1.0 / (double)tsteps;
  FTYPE B1 = 2.0;
  FTYPE B2 = 1.0;
  FTYPE mul1 = B1 * DT / (DX * DX);
  FTYPE mul2 = B2 * DT / (DX * DX);
  FTYPE a = (FTYPE)0.0 - mul1 / 2.0;
  FTYPE b = 1.0 + mul1;
  FTYPE c = a;
  FTYPE d = (FTYPE)0.0 - mul2 / 2.0;
  FTYPE e = 1.0 + mul2;
  FTYPE f = d;
  for (int t = 1; t <= tsteps; t++) {
    for (int i = 1; i < n - 1; i++) {
      v[0*n+i] = 1.0;
      p[i*n+0] = 0.0;
      q[i*n+0] = v[0*n+i];
      for (int j = 1; j < n - 1; j++) {
        p[i*n+j] = (FTYPE)0.0 - c / (a * p[i*n+j-1] + b);
        q[i*n+j] = ((FTYPE)0.0 - d * u[j*n+i-1]
                    + (1.0 + 2.0*d) * u[j*n+i] - f * u[j*n+i+1]
                    - a * q[i*n+j-1]) / (a * p[i*n+j-1] + b);
      }
      v[(n-1)*n+i] = 1.0;
      for (int j = n - 2; j >= 1; j--)
        v[j*n+i] = p[i*n+j] * v[(j+1)*n+i] + q[i*n+j];
    }
    for (int i = 1; i < n - 1; i++) {
      u[i*n+0] = 1.0;
      p[i*n+0] = 0.0;
      q[i*n+0] = u[i*n+0];
      for (int j = 1; j < n - 1; j++) {
        p[i*n+j] = (FTYPE)0.0 - f / (d * p[i*n+j-1] + e);
        q[i*n+j] = ((FTYPE)0.0 - a * v[(i-1)*n+j]
                    + (1.0 + 2.0*a) * v[i*n+j] - c * v[(i+1)*n+j]
                    - d * q[i*n+j-1]) / (d * p[i*n+j-1] + e);
      }
      u[i*n+n-1] = 1.0;
      for (int j = n - 2; j >= 1; j--)
        u[i*n+j] = p[i*n+j] * u[i*n+j+1] + q[i*n+j];
    }
  }
}

long run(int n) {
  FTYPE u[n*n]; FTYPE v[n*n]; FTYPE p[n*n]; FTYPE q[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      u[i*n+j] = (double)(i + n - j) / n;
      v[i*n+j] = 0.0; p[i*n+j] = 0.0; q[i*n+j] = 0.0;
    }
  kernel_adi(4, n, u, v, p, q);
  for (int i = 0; i < n*n; i++) out[i] = u[i];
  return (long)out;
}
""", dims=2,
        note="paper: slowdown vs Boost at lower precisions; "
             "hardware failure with Polly")

_kernel("deriche", r"""
void kernel_deriche(int n, FTYPE *imgIn, FTYPE *imgOut, FTYPE *y1,
                    FTYPE *y2, double alpha) {
  double k_d = (1.0 - exp(0.0 - alpha)) * (1.0 - exp(0.0 - alpha))
             / (1.0 + 2.0 * alpha * exp(0.0 - alpha) - exp(2.0 * alpha));
  FTYPE a1 = k_d;
  FTYPE a2 = k_d * exp(0.0 - alpha) * (alpha - 1.0);
  FTYPE a3 = k_d * exp(0.0 - alpha) * (alpha + 1.0);
  FTYPE a4 = (FTYPE)0.0 - k_d * exp(0.0 - 2.0 * alpha);
  FTYPE b1 = 2.0 * exp(0.0 - alpha);
  FTYPE b2 = (FTYPE)0.0 - exp(0.0 - 2.0 * alpha);
  for (int i = 0; i < n; i++) {
    FTYPE ym1 = 0.0;
    FTYPE ym2 = 0.0;
    FTYPE xm1 = 0.0;
    for (int j = 0; j < n; j++) {
      y1[i*n+j] = a1 * imgIn[i*n+j] + a2 * xm1 + b1 * ym1 + b2 * ym2;
      xm1 = imgIn[i*n+j];
      ym2 = ym1;
      ym1 = y1[i*n+j];
    }
  }
  for (int i = 0; i < n; i++) {
    FTYPE yp1 = 0.0;
    FTYPE yp2 = 0.0;
    FTYPE xp1 = 0.0;
    FTYPE xp2 = 0.0;
    for (int j = n - 1; j >= 0; j--) {
      y2[i*n+j] = a3 * xp1 + a4 * xp2 + b1 * yp1 + b2 * yp2;
      xp2 = xp1;
      xp1 = imgIn[i*n+j];
      yp2 = yp1;
      yp1 = y2[i*n+j];
    }
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      imgOut[i*n+j] = y1[i*n+j] + y2[i*n+j];
}

long run(int n) {
  FTYPE imgIn[n*n]; FTYPE imgOut[n*n]; FTYPE y1[n*n]; FTYPE y2[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      imgIn[i*n+j] = (double)((313*i + 991*j) % 65536) / 65535.0;
  kernel_deriche(n, imgIn, imgOut, y1, y2, 0.25);
  for (int i = 0; i < n*n; i++) out[i] = imgOut[i];
  return (long)out;
}
""", dims=2,
        note="paper: slowdown vs Boost at lower precisions (complex "
             "access patterns limit MPFR object reuse)")

_kernel("nussinov", r"""
void kernel_nussinov(int n, FTYPE *table, FTYPE *seq) {
  for (int i = n - 1; i >= 0; i--) {
    for (int j = i + 1; j < n; j++) {
      if (j - 1 >= 0) {
        if (table[i*n+j] < table[i*n+j-1])
          table[i*n+j] = table[i*n+j-1];
      }
      if (i + 1 < n) {
        if (table[i*n+j] < table[(i+1)*n+j])
          table[i*n+j] = table[(i+1)*n+j];
      }
      if (j - 1 >= 0) {
        if (i + 1 < n) {
          if (i < j - 1) {
            FTYPE match = table[(i+1)*n+j-1] + (seq[i] + seq[j] == 3.0 ? 1.0 : 0.0);
            if (table[i*n+j] < match)
              table[i*n+j] = match;
          } else {
            if (table[i*n+j] < table[(i+1)*n+j-1])
              table[i*n+j] = table[(i+1)*n+j-1];
          }
        }
      }
      for (int k = i + 1; k < j; k++) {
        FTYPE split = table[i*n+k] + table[(k+1)*n+j];
        if (table[i*n+j] < split)
          table[i*n+j] = split;
      }
    }
  }
}

long run(int n) {
  FTYPE table[n*n]; FTYPE seq[n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    seq[i] = (double)((i + 1) % 4);
    for (int j = 0; j < n; j++)
      table[i*n+j] = 0.0;
  }
  kernel_nussinov(n, table, seq);
  for (int i = 0; i < n*n; i++) out[i] = table[i];
  return (long)out;
}
""", dims=3,
        note="paper: failed on hardware at max precision with Polly")

_kernel("doitgen", r"""
void kernel_doitgen(int n, FTYPE *A, FTYPE *C4, FTYPE *sum) {
  for (int r = 0; r < n; r++)
    for (int q = 0; q < n; q++) {
      for (int p = 0; p < n; p++) {
        sum[p] = 0.0;
        for (int s = 0; s < n; s++)
          sum[p] = sum[p] + A[(r*n+q)*n+s] * C4[s*n+p];
      }
      for (int p = 0; p < n; p++)
        A[(r*n+q)*n+p] = sum[p];
    }
}

long run(int n) {
  FTYPE A[n*n*n]; FTYPE C4[n*n]; FTYPE sum[n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      C4[i*n+j] = (double)(i*j % n) / n;
      for (int k = 0; k < n; k++)
        A[(i*n+j)*n+k] = (double)((i*j + k) % n) / n;
    }
  kernel_doitgen(n, A, C4, sum);
  for (int i = 0; i < n*n; i++) out[i] = A[i];
  return (long)out;
}
""", dims=3)

_kernel("fdtd-2d", r"""
void kernel_fdtd_2d(int tmax, int n, FTYPE *ex, FTYPE *ey, FTYPE *hz,
                    FTYPE *fict) {
  for (int t = 0; t < tmax; t++) {
    for (int j = 0; j < n; j++)
      ey[0*n+j] = fict[t];
    for (int i = 1; i < n; i++)
      for (int j = 0; j < n; j++)
        ey[i*n+j] = ey[i*n+j] - 0.5 * (hz[i*n+j] - hz[(i-1)*n+j]);
    for (int i = 0; i < n; i++)
      for (int j = 1; j < n; j++)
        ex[i*n+j] = ex[i*n+j] - 0.5 * (hz[i*n+j] - hz[i*n+j-1]);
    for (int i = 0; i < n - 1; i++)
      for (int j = 0; j < n - 1; j++)
        hz[i*n+j] = hz[i*n+j] - 0.7 * (ex[i*n+j+1] - ex[i*n+j]
                                       + ey[(i+1)*n+j] - ey[i*n+j]);
  }
}

long run(int n) {
  FTYPE ex[n*n]; FTYPE ey[n*n]; FTYPE hz[n*n]; FTYPE fict[8];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int t = 0; t < 8; t++) fict[t] = (double)t;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      ex[i*n+j] = (double)(i*(j+1)) / n;
      ey[i*n+j] = (double)(i*(j+2)) / n;
      hz[i*n+j] = (double)(i*(j+3)) / n;
    }
  kernel_fdtd_2d(6, n, ex, ey, hz, fict);
  for (int i = 0; i < n*n; i++) out[i] = hz[i];
  return (long)out;
}
""", dims=2)

_kernel("heat-3d", r"""
void kernel_heat_3d(int tsteps, int n, FTYPE *A, FTYPE *B) {
  for (int t = 1; t <= tsteps; t++) {
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        for (int k = 1; k < n - 1; k++)
          B[(i*n+j)*n+k] =
              0.125 * (A[((i+1)*n+j)*n+k] - 2.0 * A[(i*n+j)*n+k]
                       + A[((i-1)*n+j)*n+k])
            + 0.125 * (A[(i*n+j+1)*n+k] - 2.0 * A[(i*n+j)*n+k]
                       + A[(i*n+j-1)*n+k])
            + 0.125 * (A[(i*n+j)*n+k+1] - 2.0 * A[(i*n+j)*n+k]
                       + A[(i*n+j)*n+k-1])
            + A[(i*n+j)*n+k];
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        for (int k = 1; k < n - 1; k++)
          A[(i*n+j)*n+k] =
              0.125 * (B[((i+1)*n+j)*n+k] - 2.0 * B[(i*n+j)*n+k]
                       + B[((i-1)*n+j)*n+k])
            + 0.125 * (B[(i*n+j+1)*n+k] - 2.0 * B[(i*n+j)*n+k]
                       + B[(i*n+j-1)*n+k])
            + 0.125 * (B[(i*n+j)*n+k+1] - 2.0 * B[(i*n+j)*n+k]
                       + B[(i*n+j)*n+k-1])
            + B[(i*n+j)*n+k];
  }
}

long run(int n) {
  FTYPE A[n*n*n]; FTYPE B[n*n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      for (int k = 0; k < n; k++) {
        A[(i*n+j)*n+k] = (double)(i + j + (n - k)) * 10.0 / n;
        B[(i*n+j)*n+k] = A[(i*n+j)*n+k];
      }
  kernel_heat_3d(4, n, A, B);
  for (int i = 0; i < n*n; i++) out[i] = A[i];
  return (long)out;
}
""", dims=3)

_kernel("floyd-warshall", r"""
void kernel_floyd_warshall(int n, FTYPE *path) {
  for (int k = 0; k < n; k++)
    for (int i = 0; i < n; i++)
      for (int j = 0; j < n; j++) {
        FTYPE through = path[i*n+k] + path[k*n+j];
        if (through < path[i*n+j])
          path[i*n+j] = through;
      }
}

long run(int n) {
  FTYPE path[n*n];
  FTYPE *out = (FTYPE*)malloc(n*n*sizeof(FTYPE));
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      path[i*n+j] = (double)(i*j % 7 + 1);
      if ((i + j) % 13 == 0 || (i + j) % 7 == 0) path[i*n+j] = 999.0;
      if (i == j) path[i*n+j] = 0.0;
    }
  kernel_floyd_warshall(n, path);
  for (int i = 0; i < n*n; i++) out[i] = path[i];
  return (long)out;
}
""", dims=3)


#: Kernel subsets used by the evaluation drivers.
TABLE1_KERNELS = ("gemm", "3mm", "covariance", "gramschmidt")
FIG1_KERNELS = tuple(KERNELS)
FIG2_KERNELS = ("gemm", "2mm", "3mm", "atax", "bicg", "mvt", "gesummv",
                "gemver", "trisolv", "jacobi-1d", "jacobi-2d", "ludcmp",
                "adi", "nussinov", "gramschmidt")
#: Kernel/Polly combinations that hit the coprocessor memory erratum in
#: the paper's runs (§IV-B).
FIG2_HW_FAILURES = {
    ("gesummv", False), ("gesummv", True),
    ("adi", False), ("adi", True),
    ("3mm", True), ("ludcmp", True), ("nussinov", True),
}


def source_for(kernel: str, ftype: str) -> str:
    """Instantiated dialect source for one kernel."""
    return KERNELS[kernel].instantiate(ftype)


def vpfloat_mpfr_type(prec_bits: int, exp_bits: int = 16) -> str:
    return f"vpfloat<mpfr, {exp_bits}, {prec_bits}>"


def vpfloat_unum_type(ess: int = 4, fss: int = 9,
                      size: int | None = None) -> str:
    if size is None:
        return f"vpfloat<unum, {ess}, {fss}>"
    return f"vpfloat<unum, {ess}, {fss}, {size}>"
