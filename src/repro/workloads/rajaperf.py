"""RAJAPerf-style kernels in the vpfloat dialect.

The paper runs RAJAPerf with six variants: Base_Seq / Lambda_Seq /
RAJA_Seq and their OpenMP counterparts (Fig. 1 bottom).  The kernel
*bodies* are identical across variants -- the variants differ only in the
C++ abstraction wrapping the loop (raw loop, lambda, RAJA::forall), which
perturbs what the optimizer sees.  We reproduce that structure:

- one dialect source per kernel, with a sequential driver and an OpenMP
  driver (``#pragma omp parallel for`` on the grand loop);
- the three abstraction variants map to compiler-configuration proxies
  (see ``VARIANTS``): Base_Seq compiles with the full pipeline, the
  lambda/RAJA wrappers are modeled by disabling the optimizations those
  abstractions typically obstruct (unrolling; loop-idiom recognition).
  EXPERIMENTS.md discusses this substitution.

Kernels are drawn from the suite's Basic / Lcals / Stream groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Variant name -> CompilerDriver kwargs (abstraction-cost proxies).
#: The lambda / RAJA::forall wrappers hide the loop body behind a call
#: boundary, which in the real toolchain defeats exactly the pattern-
#: matching parts of the MPFR lowering: in-place store fusion (the store
#: happens inside the functor) and, for the RAJA templates, the
#: double-operand specialization (operands pass through the template's
#: generic parameters).  The Boost baseline is unaffected either way.
VARIANTS: Dict[str, dict] = {
    "Base_Seq": {},
    "Lambda_Seq": {"in_place_stores": False},
    "RAJA_Seq": {"in_place_stores": False, "specialize_scalars": False},
}
OMP_VARIANTS: Dict[str, dict] = {
    "Base_OpenMP": {},
    "Lambda_OpenMP": {"in_place_stores": False},
    "RAJA_OpenMP": {"in_place_stores": False, "specialize_scalars": False},
}

#: Threads on the paper's testbed: 8 cores / 16 hardware threads.
PAPER_THREADS = 16


@dataclass
class RajaKernel:
    name: str
    source: str
    #: Output element count expression in n.
    output_count: str = "n"

    def instantiate(self, ftype: str, openmp: bool) -> str:
        pragma = "#pragma omp parallel for" if openmp else ""
        sqrt_fn = "vp_sqrt" if ftype.startswith("vpfloat") else "sqrt"
        return (self.source
                .replace("FTYPE", ftype)
                .replace("//OMP", pragma)
                .replace("SQRT", sqrt_fn))


RAJA_KERNELS: Dict[str, RajaKernel] = {}


def _raja(name: str, source: str, output_count: str = "n") -> None:
    RAJA_KERNELS[name] = RajaKernel(name, source, output_count)


_raja("DAXPY", r"""
long run(int n) {
  FTYPE x[n]; FTYPE y[n];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  FTYPE a = 2.5;
  for (int i = 0; i < n; i++) { x[i] = (double)i / n; y[i] = 1.0; }
  for (int rep = 0; rep < 10; rep++) {
    //OMP
    for (int i = 0; i < n; i++)
      y[i] = a * x[i] + y[i];
  }
  for (int i = 0; i < n; i++) out[i] = y[i];
  return (long)out;
}
""")

_raja("MULADDSUB", r"""
long run(int n) {
  FTYPE out1[n]; FTYPE out2[n]; FTYPE out3[n]; FTYPE in1[n]; FTYPE in2[n];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    in1[i] = (double)(i+1) / n;
    in2[i] = (double)(n-i) / n;
  }
  for (int rep = 0; rep < 8; rep++) {
    //OMP
    for (int i = 0; i < n; i++) {
      out1[i] = in1[i] * in2[i];
      out2[i] = in1[i] + in2[i];
      out3[i] = in1[i] - in2[i];
    }
  }
  for (int i = 0; i < n; i++) out[i] = out1[i] + out2[i] - out3[i];
  return (long)out;
}
""")

_raja("IF_QUAD", r"""
long run(int n) {
  FTYPE a[n]; FTYPE b[n]; FTYPE c[n]; FTYPE x1[n]; FTYPE x2[n];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    a[i] = 1.0;
    b[i] = (double)(i % 8) - 4.0;
    c[i] = 0.5;
  }
  for (int rep = 0; rep < 8; rep++) {
    //OMP
    for (int i = 0; i < n; i++) {
      FTYPE s = b[i]*b[i] - 4.0*a[i]*c[i];
      if (s >= (FTYPE)0.0) {
        FTYPE s2 = SQRT(s);
        x2[i] = ((FTYPE)0.0 - b[i] - s2) / (2.0*a[i]);
        x1[i] = ((FTYPE)0.0 - b[i] + s2) / (2.0*a[i]);
      } else {
        x2[i] = 0.0;
        x1[i] = 0.0;
      }
    }
  }
  for (int i = 0; i < n; i++) out[i] = x1[i] + x2[i];
  return (long)out;
}
""")

_raja("TRAP_INT", r"""
FTYPE trap_fn(FTYPE x, FTYPE y, FTYPE xp, FTYPE yp) {
  FTYPE denom = (x - xp)*(x - xp) + (y - yp)*(y - yp);
  return 1.0 / SQRT(denom);
}

long run(int n) {
  FTYPE *out = (FTYPE*)malloc(1*sizeof(FTYPE));
  FTYPE x0 = 0.1;
  FTYPE xp = 0.8;
  FTYPE y = 0.5;
  FTYPE yp = 1.4;
  FTYPE h = 0.01;
  FTYPE sumx = 0.0;
  for (int rep = 0; rep < 4; rep++) {
    sumx = 0.0;
    //OMP
    for (int i = 0; i < n; i++) {
      FTYPE x = x0 + ((double)i + 0.5) * h;
      sumx = sumx + trap_fn(x, y, xp, yp);
    }
  }
  out[0] = sumx * h;
  return (long)out;
}
""", output_count="1")

_raja("FIRST_DIFF", r"""
long run(int n) {
  FTYPE x[n+1]; FTYPE y[n+1];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  for (int i = 0; i <= n; i++) y[i] = (double)(i*i % 97) / 97.0;
  for (int rep = 0; rep < 10; rep++) {
    //OMP
    for (int i = 0; i < n; i++)
      x[i] = y[i+1] - y[i];
  }
  for (int i = 0; i < n; i++) out[i] = x[i];
  return (long)out;
}
""")

_raja("HYDRO_1D", r"""
long run(int n) {
  FTYPE x[n+12]; FTYPE y[n+12]; FTYPE z[n+12];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  FTYPE q = 0.5; FTYPE r = 0.25; FTYPE t = 0.125;
  for (int i = 0; i < n + 12; i++) {
    y[i] = (double)(i % 13) / 13.0;
    z[i] = (double)(i % 7) / 7.0;
  }
  for (int rep = 0; rep < 10; rep++) {
    //OMP
    for (int i = 0; i < n; i++)
      x[i] = q + y[i] * (r * z[i+10] + t * z[i+11]);
  }
  for (int i = 0; i < n; i++) out[i] = x[i];
  return (long)out;
}
""")

_raja("TRIDIAG_ELIM", r"""
long run(int n) {
  FTYPE xout[n+1]; FTYPE xin[n+1]; FTYPE y[n+1]; FTYPE z[n+1];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  for (int i = 0; i <= n; i++) {
    xin[i] = (double)(i % 11 + 1) / 11.0;
    y[i] = (double)(i % 5 + 1) / 5.0;
    z[i] = (double)(i % 3 + 1) / 3.0;
  }
  for (int rep = 0; rep < 10; rep++) {
    //OMP
    for (int i = 1; i < n; i++)
      xout[i] = z[i] * (y[i] - xin[i-1]);
  }
  for (int i = 1; i < n; i++) out[i] = xout[i];
  return (long)out;
}
""")

_raja("EOS", r"""
long run(int n) {
  FTYPE x[n+7]; FTYPE y[n+7]; FTYPE z[n+7]; FTYPE u[n+7];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  FTYPE q = 0.5; FTYPE r = 0.25; FTYPE t = 0.125;
  for (int i = 0; i < n + 7; i++) {
    y[i] = (double)(i % 13) / 13.0;
    z[i] = (double)(i % 7) / 7.0;
    u[i] = (double)(i % 5) / 5.0;
  }
  for (int rep = 0; rep < 8; rep++) {
    //OMP
    for (int i = 0; i < n; i++)
      x[i] = u[i] + r * (z[i] + r * y[i])
             + t * (u[i+3] + r * (u[i+2] + r * u[i+1])
                    + t * (u[i+6] + q * (u[i+5] + q * u[i+4])));
  }
  for (int i = 0; i < n; i++) out[i] = x[i];
  return (long)out;
}
""")

_raja("STREAM_ADD", r"""
long run(int n) {
  FTYPE a[n]; FTYPE b[n]; FTYPE c[n];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    a[i] = (double)i / n;
    b[i] = (double)(n - i) / n;
  }
  for (int rep = 0; rep < 10; rep++) {
    //OMP
    for (int i = 0; i < n; i++)
      c[i] = a[i] + b[i];
  }
  for (int i = 0; i < n; i++) out[i] = c[i];
  return (long)out;
}
""")

_raja("STREAM_MUL", r"""
long run(int n) {
  FTYPE b[n]; FTYPE c[n];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  FTYPE alpha = 1.5;
  for (int i = 0; i < n; i++) c[i] = (double)i / n;
  for (int rep = 0; rep < 10; rep++) {
    //OMP
    for (int i = 0; i < n; i++)
      b[i] = alpha * c[i];
  }
  for (int i = 0; i < n; i++) out[i] = b[i];
  return (long)out;
}
""")

_raja("STREAM_TRIAD", r"""
long run(int n) {
  FTYPE a[n]; FTYPE b[n]; FTYPE c[n];
  FTYPE *out = (FTYPE*)malloc(n*sizeof(FTYPE));
  FTYPE alpha = 1.5;
  for (int i = 0; i < n; i++) {
    b[i] = (double)i / n;
    c[i] = (double)(n - i) / n;
  }
  for (int rep = 0; rep < 10; rep++) {
    //OMP
    for (int i = 0; i < n; i++)
      a[i] = b[i] + alpha * c[i];
  }
  for (int i = 0; i < n; i++) out[i] = a[i];
  return (long)out;
}
""")

_raja("DOT", r"""
long run(int n) {
  FTYPE a[n]; FTYPE b[n];
  FTYPE *out = (FTYPE*)malloc(1*sizeof(FTYPE));
  for (int i = 0; i < n; i++) {
    a[i] = (double)i / n;
    b[i] = (double)(n - i) / n;
  }
  FTYPE dot = 0.0;
  for (int rep = 0; rep < 8; rep++) {
    dot = 0.0;
    //OMP
    for (int i = 0; i < n; i++) {
      #pragma omp atomic
      dot = dot + a[i] * b[i];
    }
  }
  out[0] = dot;
  return (long)out;
}
""", output_count="1")


def raja_source(kernel: str, ftype: str, openmp: bool = False) -> str:
    return RAJA_KERNELS[kernel].instantiate(ftype, openmp)


#: Default problem size for the perf comparison (vector length).
DEFAULT_N = 256
