"""Benchmark workloads: PolyBench and RAJAPerf ports in the dialect."""

from .polybench import (
    DATASET_ORDER,
    DATASETS,
    FIG1_KERNELS,
    FIG2_HW_FAILURES,
    FIG2_KERNELS,
    KERNELS,
    KernelSpec,
    TABLE1_KERNELS,
    source_for,
    vpfloat_mpfr_type,
    vpfloat_unum_type,
)
from .rajaperf import (
    DEFAULT_N,
    OMP_VARIANTS,
    PAPER_THREADS,
    RAJA_KERNELS,
    VARIANTS,
    RajaKernel,
    raja_source,
)

__all__ = [
    "KERNELS", "KernelSpec", "source_for", "DATASETS", "DATASET_ORDER",
    "TABLE1_KERNELS", "FIG1_KERNELS", "FIG2_KERNELS", "FIG2_HW_FAILURES",
    "vpfloat_mpfr_type", "vpfloat_unum_type",
    "RAJA_KERNELS", "RajaKernel", "raja_source",
    "VARIANTS", "OMP_VARIANTS", "PAPER_THREADS", "DEFAULT_N",
]
