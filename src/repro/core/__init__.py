"""Public compilation API: one driver over the whole flow.

This is the package's front door::

    from repro.core import CompilerDriver

    program = CompilerDriver(backend="mpfr", polly=True).compile(source)
    result = program.run("kernel", [args...])

Backends: ``"none"`` (vpfloat stays first-class, functional testing),
``"mpfr"`` (the paper's MPFR lowering), ``"boost"`` (the Boost-style
baseline), ``"unum"`` (the coprocessor ISA backend executed on the
machine model).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..backends import BoostLoweringPass, MPFRLoweringPass
from ..codegen import generate_ir
from ..ir import Module, verify_module
from ..lang import analyze, parse
from ..observability import (
    CAT_CACHE,
    CAT_COMPILE,
    CAT_RUNTIME,
    absorb_mpfr_stats,
    absorb_pass_timings,
    absorb_profile,
    absorb_report,
    absorb_tier_stats,
    absorb_unum_stats,
    current_ledger,
    current_metrics,
    current_tracer,
    report_fields,
)
from ..passes import build_o3_pipeline
from ..passes.polly import optimize_unit
from ..runtime import CostAccounting, ExecutionResult, Interpreter
from ..runtime.cost_model import CacheModel
from .cache import CacheStats, CompileCache, as_compile_cache, \
    default_cache_dir

BACKENDS = ("none", "mpfr", "boost", "unum")

#: Execution engines, fastest first (see README "Execution engines").
ENGINES = ("jit", "fast", "unfused", "legacy")

__all__ = [
    "BACKENDS", "CacheStats", "CompileCache", "CompileOptions",
    "CompiledProgram", "CompilerDriver", "ENGINES", "as_compile_cache",
    "compile_source", "default_cache_dir", "resolve_engine",
]


def resolve_engine(engine: Optional[str], backend: str) -> str:
    """Validate / default the execution engine selection.

    ``None`` picks the per-backend default: the specializing ``jit``
    codegen engine for the mpfr backend (its lowered modules are where
    the emitted straight-line code pays off most), the fused closure
    tables (``fast``) everywhere else.
    """
    if engine is None:
        return "jit" if backend == "mpfr" else "fast"
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; "
                         f"choose from {ENGINES}")
    return engine


@dataclass
class CompileOptions:
    """Knobs mirroring the paper's evaluation configurations."""

    opt_level: int = 3
    polly: bool = False
    polly_tile: int = 16
    backend: str = "mpfr"
    #: MPFR-backend options (the ablation switches).
    reuse_objects: bool = True
    specialize_scalars: bool = True
    in_place_stores: bool = True
    #: -O3 pipeline switches.
    enable_loop_idiom: bool = True
    enable_inlining: bool = True
    enable_unroll: bool = True
    #: FP_CONTRACT: fuse a*b+c into fma (off by default; see passes.fma).
    contract_fma: bool = False
    verify: bool = True


class CompiledProgram:
    """The result of a compilation: IR module and (for unum) assembly."""

    def __init__(self, module: Module, options: CompileOptions,
                 asm=None, tiled_nests: int = 0, pass_timings=None):
        self.module = module
        self.options = options
        self.asm = asm
        self.tiled_nests = tiled_nests
        #: Wall-clock seconds per middle-end pass / backend lowering.
        self.pass_timings: dict = pass_timings or {}
        #: Jit-engine emitted-source store (set by the driver when the
        #: program came through a CompileCache; else created lazily).
        self._codegen_store = None
        #: Batch-mode sidecar key (fingerprint with batch=True) and its
        #: lazily-created store; batch-mode jit source differs from
        #: serial source, so the two never share a sidecar.
        self._batch_codegen_key: Optional[str] = None
        self._batch_store = None
        #: Engine the driver was configured for; ``run()`` falls back
        #: to it when neither ``engine`` nor ``dispatch`` is passed.
        self._default_engine: Optional[str] = None
        #: Kernel-tier policy the driver was configured for
        #: (auto/generic/small); per-run ``kernel_tier=`` overrides it.
        self._kernel_tier: str = "auto"

    def __getstate__(self):
        # The codegen store holds a live CompileCache reference; the
        # pickled program must stand alone (it *is* a cache entry).
        state = dict(self.__dict__)
        state["_codegen_store"] = None
        state["_batch_store"] = None
        return state

    # ------------------------------------------------------------ #

    def _resolve_mode(self, dispatch: Optional[str],
                      engine: Optional[str]) -> str:
        """``engine`` wins over the legacy ``dispatch`` alias; ``None``
        for both picks the driver's engine, then the backend default
        (jit for mpfr)."""
        mode = engine if engine is not None else dispatch
        if mode is None:
            mode = self._default_engine
        if mode is None:
            return resolve_engine(None, self.options.backend)
        return mode

    def _resolve_tier(self, kernel_tier: Optional[str]) -> str:
        """Per-run override wins; None falls back to the driver's
        policy (auto when the program never saw a driver)."""
        if kernel_tier is None:
            return getattr(self, "_kernel_tier", "auto")
        from ..codegen.smallfloat import KERNEL_TIER_POLICIES

        if kernel_tier not in KERNEL_TIER_POLICIES:
            raise ValueError(f"unknown kernel tier {kernel_tier!r}; "
                             f"choose from {KERNEL_TIER_POLICIES}")
        return kernel_tier

    def _codegen_store_for(self, mode: str):
        if mode != "jit":
            return None
        store = self._codegen_store
        if store is None:
            from ..codegen.pyjit import CodegenStore

            store = CodegenStore()
            self._codegen_store = store
        return store

    def _batch_codegen_store(self):
        store = getattr(self, "_batch_store", None)
        if store is None:
            from ..codegen.pyjit import CodegenStore

            serial = self._codegen_store
            key = getattr(self, "_batch_codegen_key", None)
            if serial is not None and serial.cache is not None \
                    and key is not None:
                store = CodegenStore(serial.cache, key)
            else:
                store = CodegenStore()
            self._batch_store = store
        return store

    # ------------------------------------------------------------ #

    def _pool_default(self, pool: Optional[bool]) -> bool:
        """The runtime MPFR free-list is on for the paper's own runtime
        (mpfr/none) and off for the Boost baseline, whose per-operation
        allocation traffic is the behavior under measurement (Fig. 1)."""
        if pool is None:
            return self.options.backend != "boost"
        return pool

    def run(self, name: str, args: Optional[List[object]] = None,
            cache: bool = True, max_steps: int = 500_000_000,
            coprocessor=None, costs=None,
            dispatch: Optional[str] = None,
            profile: bool = False,
            pool: Optional[bool] = None,
            engine: Optional[str] = None,
            kernel_tier: Optional[str] = None) -> ExecutionResult:
        """Execute a function; returns value + CostReport + stdout.

        ``costs`` selects a CycleCosts profile (default: Xeon-calibrated;
        pass ``ROCKET_CYCLE_COSTS`` for the Fig. 2 FPGA baseline).
        ``engine`` picks the execution engine (:data:`ENGINES`;
        ``dispatch`` is the pre-engine spelling of the same knob and
        still works; ``None`` for both means the backend default --
        the specializing jit for mpfr, fused closures otherwise).
        ``profile``/``pool`` configure the interpreter's observability
        layer and MPFR object pool (``pool`` defaults per backend: on
        except for Boost).  ``kernel_tier`` overrides the driver's
        kernel-tier policy for this run (auto/generic/small: the jit
        engine's precision-specialized fast-path kernels vs the
        generic ones; bit-identical either way)."""
        accounting = CostAccounting(costs=costs,
                                    cache=CacheModel() if cache else None)
        tracer = current_tracer()
        ledger = current_ledger()
        wall0 = time.perf_counter() if ledger is not None else 0.0
        span = tracer.span(f"execute:{name}", cat=CAT_RUNTIME,
                           args={"backend": self.options.backend}) \
            if tracer is not None else None
        if self.options.backend == "unum":
            from ..runtime.unum_machine import UnumMachine

            machine = UnumMachine(self.asm, accounting=accounting,
                                  coprocessor=coprocessor,
                                  max_steps=max_steps)
            try:
                value = machine.run(name, args)
            finally:
                if span is not None:
                    tracer.finish(span)
            report = accounting.report
            report.cycles += machine.scalar_cycles + \
                machine.coprocessor.cycles
            report.serial_cycles = report.cycles - report.parallel_cycles
            result = ExecutionResult(value, report, machine.stdout)
            result.machine = machine
            registry = current_metrics()
            if registry is not None:
                absorb_report(registry, report)
                absorb_unum_stats(registry, machine)
            if ledger is not None:
                ledger.record("run", function=name, backend="unum",
                              engine=None,
                              wall_seconds=time.perf_counter() - wall0,
                              **report_fields(report))
            return result
        mode = self._resolve_mode(dispatch, engine)
        tier = self._resolve_tier(kernel_tier)
        interpreter = Interpreter(self.module, accounting=accounting,
                                  max_steps=max_steps, dispatch=mode,
                                  profile=profile,
                                  mpfr_pool=self._pool_default(pool),
                                  codegen_store=self._codegen_store_for(mode),
                                  kernel_tier=tier)
        try:
            result = interpreter.run(name, args)
        finally:
            if span is not None:
                span.args["cycles"] = accounting.report.cycles
                tracer.finish(span)
        result.interpreter = interpreter
        registry = current_metrics()
        tier_stats = interpreter.tier_stats
        if registry is not None:
            absorb_report(registry, result.report)
            absorb_mpfr_stats(registry, interpreter.mpfr.stats)
            if result.profile is not None:
                absorb_profile(registry, result.profile)
            if tier_stats is not None and tier_stats.total_ops():
                absorb_tier_stats(registry, tier_stats)
        if ledger is not None:
            extra = {}
            if tier_stats is not None and tier_stats.total_ops():
                extra["kernel_tier"] = tier
                extra["kernel_tiers"] = tier_stats.as_dict()
            ledger.record("run", function=name,
                          backend=self.options.backend, engine=mode,
                          wall_seconds=time.perf_counter() - wall0,
                          **extra, **report_fields(result.report))
        return result

    def run_batch(self, name: str, args: Optional[List[object]] = None,
                  lanes: int = 1, cache: bool = True,
                  max_steps: int = 500_000_000, costs=None,
                  pool: Optional[bool] = None,
                  kernel_tier: Optional[str] = None):
        """Execute a function across ``lanes`` independent instances
        with one IR dispatch per instruction (the batched jit engine).

        All lanes run the same program and arguments in lockstep SPMD;
        per-lane values and the shared :class:`CostReport` are
        bit-identical to ``lanes`` serial jit runs.  A program the
        batched engine cannot run in lockstep (divergent comparisons,
        non-jittable functions) transparently falls back to per-lane
        serial execution -- still correct, reported via
        ``BatchResult.mode`` and telemetry.  mpfr backend only.
        """
        from ..runtime.batch import (
            BatchDivergence,
            BatchInterpreter,
            BatchResult,
            BatchUnsupported,
            lane_view,
        )

        if self.options.backend != "mpfr":
            raise ValueError(
                "batched execution requires the mpfr backend, "
                f"not {self.options.backend!r}")
        accounting = CostAccounting(costs=costs,
                                    cache=CacheModel() if cache else None)
        tracer = current_tracer()
        ledger = current_ledger()
        wall0 = time.perf_counter() if ledger is not None else 0.0
        span = tracer.span(f"execute-batch:{name}", cat=CAT_RUNTIME,
                           args={"backend": self.options.backend,
                                 "lanes": lanes}) \
            if tracer is not None else None
        registry = current_metrics()
        tier = self._resolve_tier(kernel_tier)
        interpreter = BatchInterpreter(
            self.module, lanes, accounting=accounting,
            max_steps=max_steps, mpfr_pool=self._pool_default(pool),
            codegen_store=self._batch_codegen_store(),
            kernel_tier=tier)
        try:
            try:
                result = interpreter.run(name, args)
            except (BatchDivergence, BatchUnsupported) as exc:
                interpreter.batch.serial_fallback_lanes += lanes
                interpreter.batch.flush(registry)
                if span is not None:
                    span.args["fallback"] = str(exc)
                serial = self._run_batch_serial(
                    name, args, lanes, cache=cache, max_steps=max_steps,
                    costs=costs, pool=pool, reason=str(exc))
                if ledger is not None:
                    ledger.record(
                        "batch_run", function=name,
                        backend=self.options.backend, engine="jit",
                        lanes=lanes, mode="serial",
                        fallback_reason=str(exc),
                        wall_seconds=time.perf_counter() - wall0,
                        **report_fields(serial.reports[0]))
                return serial
        finally:
            if span is not None:
                span.args["cycles"] = accounting.report.cycles
                tracer.finish(span)
        values = [lane_view(result.value, i) for i in range(lanes)]
        batch_ctx = interpreter.batch
        np_counters = (batch_ctx.np_ops, batch_ctx.np_lanes,
                       batch_ctx.np_bailouts)
        interpreter.batch.flush(registry)
        if registry is not None:
            absorb_report(registry, result.report)
            absorb_mpfr_stats(registry, interpreter.mpfr.stats)
        if ledger is not None:
            extra = {}
            if np_counters != (0, 0, 0):
                extra["kernel_tier"] = tier
                extra["kernel_tiers"] = {
                    "batch_np": {"ops": np_counters[0],
                                 "lanes": np_counters[1],
                                 "bailouts": np_counters[2]}}
            ledger.record("batch_run", function=name,
                          backend=self.options.backend, engine="jit",
                          lanes=lanes, mode="batched",
                          wall_seconds=time.perf_counter() - wall0,
                          **extra, **report_fields(result.report))
        return BatchResult(lanes=lanes, values=values,
                           reports=[result.report] * lanes,
                           stdout=result.stdout, mode="batched",
                           interpreter=interpreter)

    def _run_batch_serial(self, name, args, lanes, cache, max_steps,
                          costs, pool, reason):
        """Per-lane serial jit runs standing in for a bailed-out batch."""
        from ..runtime.batch import BatchResult

        values: List[object] = []
        reports: List[object] = []
        stdout: List[str] = []
        interpreter = None
        for _ in range(lanes):
            result = self.run(name, args, cache=cache,
                              max_steps=max_steps, costs=costs,
                              pool=pool, engine="jit")
            values.append(result.value)
            reports.append(result.report)
            stdout = result.stdout
            interpreter = result.interpreter
        return BatchResult(lanes=lanes, values=values, reports=reports,
                           stdout=stdout, mode="serial",
                           fallback_reason=reason,
                           interpreter=interpreter)

    def interpreter(self, cache: bool = True,
                    max_steps: int = 500_000_000, costs=None,
                    dispatch: Optional[str] = None, profile: bool = False,
                    pool: Optional[bool] = None,
                    engine: Optional[str] = None,
                    kernel_tier: Optional[str] = None) -> Interpreter:
        """A fresh interpreter over the compiled module (mpfr/boost/none)."""
        accounting = CostAccounting(costs=costs,
                                    cache=CacheModel() if cache else None)
        mode = self._resolve_mode(dispatch, engine)
        return Interpreter(self.module, accounting=accounting,
                           max_steps=max_steps, dispatch=mode,
                           profile=profile,
                           mpfr_pool=self._pool_default(pool),
                           codegen_store=self._codegen_store_for(mode),
                           kernel_tier=self._resolve_tier(kernel_tier))

    def machine(self, cache: bool = True, coprocessor=None,
                max_steps: int = 500_000_000, costs=None):
        """A fresh UNUM machine over the compiled assembly."""
        from ..runtime.unum_machine import UnumMachine

        accounting = CostAccounting(costs=costs,
                                    cache=CacheModel() if cache else None)
        return UnumMachine(self.asm, accounting=accounting,
                           coprocessor=coprocessor, max_steps=max_steps)


class CompilerDriver:
    """parse -> sema -> [polly] -> irgen -> -O3 -> backend.

    ``cache`` (a :class:`CompileCache`, a directory path, or None)
    short-circuits :meth:`compile`: a hit skips parse/sema/irgen, the
    whole -O3 pipeline, and the backend lowering, returning a program
    whose runs are bit-identical to a fresh compile.  Keys cover the
    source text, the module name, and every :class:`CompileOptions`
    field, so no stale program can ever be served.
    """

    def __init__(self, backend: str = "mpfr", opt_level: int = 3,
                 polly: bool = False, cache=None, engine=None,
                 kernel_tier: str = "auto", **kwargs):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"choose from {BACKENDS}")
        self.options = CompileOptions(backend=backend, opt_level=opt_level,
                                      polly=polly, **kwargs)
        self.cache = as_compile_cache(cache)
        #: Engine the compiled programs will run under; part of the
        #: cache fingerprint (not a CompileOptions field: it changes
        #: nothing about the IR, only how it is executed).
        self.engine = resolve_engine(engine, backend)
        #: Kernel-tier policy (auto/generic/small) the programs' runs
        #: default to; like ``engine`` it is an execution knob, hashed
        #: into the fingerprint because the jit sidecar's emitted code
        #: binds kernels at emission time.
        from ..codegen.smallfloat import KERNEL_TIER_POLICIES

        if kernel_tier not in KERNEL_TIER_POLICIES:
            raise ValueError(f"unknown kernel tier {kernel_tier!r}; "
                             f"choose from {KERNEL_TIER_POLICIES}")
        self.kernel_tier = kernel_tier

    def compile(self, source: str, name: str = "module") -> CompiledProgram:
        ledger = current_ledger()
        if ledger is None:
            return self._compile_entry(source, name, {})
        info: dict = {}
        wall0 = time.perf_counter()
        program = self._compile_entry(source, name, info)
        cached = info.get("cached", False)
        ledger.record(
            "compile", name=name, backend=self.options.backend,
            engine=self.engine, opt_level=self.options.opt_level,
            polly=self.options.polly, fingerprint=info.get("key"),
            cached=cached,
            wall_seconds=time.perf_counter() - wall0,
            # A cached program carries the *original* compile's pass
            # timings in its pickle; only a fresh compile's are this
            # event's.
            passes=dict(program.pass_timings) if not cached else None,
        )
        return program

    def _compile_entry(self, source: str, name: str,
                       info: dict) -> CompiledProgram:
        """The compile flow proper; fills ``info`` with the cache
        ``key`` and ``cached`` flag for the ledger wrapper."""
        tracer = current_tracer()
        registry = current_metrics()
        if registry is not None:
            registry.inc("compile.count")
        cache = self.cache
        if cache is None:
            if tracer is None:
                return self._finish(self._compile(source, name))
            with tracer.span(f"compile:{name}", cat=CAT_COMPILE,
                             args={"backend": self.options.backend,
                                   "cached": False}):
                return self._finish(self._compile(source, name))
        key = cache.fingerprint(source, self.options, name,
                                engine=self.engine,
                                kernel_tier=self.kernel_tier)
        batch_key = cache.fingerprint(source, self.options, name,
                                      engine=self.engine, batch=True,
                                      kernel_tier=self.kernel_tier)
        info["key"] = key
        if tracer is None:
            program = cache.get(key)
            info["cached"] = program is not None
            if program is None:
                program = self._compile(source, name)
                cache.put(key, program)
            else:
                if registry is not None:
                    registry.inc("compile.cache_hits")
            return self._finish(program, key, batch_key)
        with tracer.span(f"compile:{name}", cat=CAT_COMPILE,
                         args={"backend": self.options.backend}) as span:
            with tracer.span("cache.lookup", cat=CAT_CACHE) as lookup:
                program = cache.get(key)
                lookup.args["hit"] = program is not None
            span.args["cached"] = program is not None
            info["cached"] = program is not None
            if program is None:
                program = self._compile(source, name)
                cache.put(key, program)
            else:
                if registry is not None:
                    registry.inc("compile.cache_hits")
        return self._finish(program, key, batch_key)

    def _finish(self, program: CompiledProgram,
                key: Optional[str] = None,
                batch_key: Optional[str] = None) -> CompiledProgram:
        """Attach driver-side execution state to a (possibly cached)
        program: the default engine and -- in jit mode with a cache --
        the emitted-source stores (serial + batched, separately keyed)
        persisting next to the pickle."""
        program._default_engine = self.engine
        program._kernel_tier = self.kernel_tier
        if self.engine == "jit" and key is not None:
            from ..codegen.pyjit import CodegenStore

            program._codegen_store = CodegenStore(self.cache, key)
            program._batch_codegen_key = batch_key
        return program

    def _compile(self, source: str, name: str = "module") -> CompiledProgram:
        options = self.options
        tracer = current_tracer()
        front_span = tracer.span("frontend", cat=CAT_COMPILE) \
            if tracer is not None else None
        unit = analyze(parse(source))
        tiled = 0
        if options.polly:
            tiled = optimize_unit(unit, options.polly_tile)
            if tiled:
                unit = analyze(unit)  # re-resolve the new declarations
        module = generate_ir(unit, name, verify=options.verify)
        if front_span is not None:
            tracer.finish(front_span)
        timings: dict = {}
        if options.opt_level >= 2:
            pipeline = build_o3_pipeline(
                enable_loop_idiom=options.enable_loop_idiom,
                enable_inlining=options.enable_inlining,
                enable_unroll=options.enable_unroll,
                contract_fma=options.contract_fma,
            )
            if tracer is not None:
                with tracer.span("o3-pipeline", cat=CAT_COMPILE):
                    stats = pipeline.run(module)
            else:
                stats = pipeline.run(module)
            timings.update(stats.timings)
            if options.verify:
                verify_module(module)
        asm = None
        lowering_span = None
        if tracer is not None and options.backend != "none":
            lowering_span = tracer.span(f"lowering:{options.backend}",
                                        cat=CAT_COMPILE)
        lowering_started = time.perf_counter()
        if options.backend == "mpfr":
            MPFRLoweringPass(
                reuse_objects=options.reuse_objects,
                specialize_scalars=options.specialize_scalars,
                in_place_stores=options.in_place_stores,
            ).run_module(module)
            if options.verify:
                verify_module(module)
            timings["mpfr-lowering"] = time.perf_counter() - lowering_started
        elif options.backend == "boost":
            BoostLoweringPass().run_module(module)
            if options.verify:
                verify_module(module)
            timings["boost-lowering"] = time.perf_counter() - lowering_started
        elif options.backend == "unum":
            from ..backends.unum_backend import compile_to_unum

            asm = compile_to_unum(module)
            timings["unum-codegen"] = time.perf_counter() - lowering_started
        if lowering_span is not None:
            tracer.finish(lowering_span)
        registry = current_metrics()
        if registry is not None:
            registry.inc("compile.fresh")
            absorb_pass_timings(registry, timings)
        return CompiledProgram(module, options, asm=asm, tiled_nests=tiled,
                               pass_timings=timings)


def compile_source(source: str, backend: str = "mpfr", cache=None,
                   **kwargs) -> CompiledProgram:
    """One-shot convenience wrapper around :class:`CompilerDriver`."""
    return CompilerDriver(backend=backend, cache=cache,
                          **kwargs).compile(source)
