"""Persistent compile cache: skip the middle-end for repeated sweeps.

The evaluation drivers compile the same (kernel source, options) pairs
over and over -- across sweep points inside one process, across the
benchmark reruns of a session, and across worker processes of the
parallel engine (:mod:`repro.evaluation.parallel`).  This module caches
:class:`~repro.core.CompiledProgram` objects at two levels:

* an **in-process LRU** (``memory_slots`` entries) in front, so a warm
  process never touches the filesystem for a repeated point;
* an **on-disk store** of pickled programs under ``directory``, shared
  between processes and surviving across runs.

Entries are keyed by a SHA-256 **fingerprint** of everything that can
change the compilation result: the source text (which embeds the
vpfloat attribute spellings), the module name, every
:class:`~repro.core.CompileOptions` field (backend, opt level, Polly
tiling, the per-pass pipeline switches, the MPFR-lowering ablations),
the cache format version, and the Python major/minor version (pickles
are not guaranteed portable across interpreters).  Any change to any of
those yields a distinct key; identical inputs return a program whose
runs are bit-identical to a fresh compile.

Disk entries are written atomically (temp file + ``os.replace``) so a
crashed or concurrent writer can never leave a torn entry; unreadable
or stale-format entries are treated as misses and deleted best-effort.

``max_disk_bytes`` bounds the on-disk store: after every store the
least-recently-used entries (a ``.vpc`` pickle and its ``.vpcgen``
codegen sidecar evict together) are deleted until the store fits.
Recency is the entry's mtime, which disk hits refresh, so a hot entry
survives a sweep of cold ones.  An evicted entry simply costs a
recompile on its next lookup -- the compile-cache contract (bit-
identical programs, never a wrong answer) is unaffected by eviction.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Optional, Tuple

from ..codegen import CODEGEN_VERSION
from ..observability import current_metrics

#: Bump when the pickle layout of CompiledProgram/Module changes in a
#: way that should invalidate existing caches.  v2: the fingerprint
#: gained the execution engine and codegen version (programs built for
#: one engine must never replay under another), and entries grew
#: optional ``.vpcgen`` codegen sidecars.
FORMAT_VERSION = 2

#: Environment override for the default on-disk location.
CACHE_DIR_ENV = "VPFLOAT_CACHE_DIR"

#: Function-record statuses a ``.vpcgen`` sidecar may carry.
_CODEGEN_STATUSES = ("jit", "fallback")


def _codegen_payload_ok(payload: dict) -> bool:
    """Structural validity of a ``.vpcgen`` sidecar beyond the version
    stamp: ``functions`` must map names to records the jit engine can
    consume (a ``status`` it knows; emitted source, when present, as a
    string).  Anything else -- a truncated write that still parsed, a
    hand-edited file, a garbled record -- must read as a cache miss."""
    functions = payload.get("functions", {})
    if not isinstance(functions, dict):
        return False
    for name, record in functions.items():
        if not isinstance(name, str) or not isinstance(record, dict):
            return False
        if record.get("status") not in _CODEGEN_STATUSES:
            return False
        source = record.get("source")
        if record["status"] == "jit" and not isinstance(source, str):
            return False
        if source is not None and not isinstance(source, str):
            return False
        reason = record.get("reason")
        if reason is not None and not isinstance(reason, str):
            return False
        line_map = record.get("line_map")
        if line_map is not None:
            # IR-location map of the emitted source (see pyjit): line
            # numbers (as JSON string keys) -> [block, inst, opcode].
            if not isinstance(line_map, dict):
                return False
            for lineno, loc in line_map.items():
                if not (isinstance(lineno, str) and lineno.isdigit()
                        and isinstance(loc, list) and len(loc) == 3):
                    return False
    return True


def default_cache_dir() -> str:
    """``$VPFLOAT_CACHE_DIR`` or ``~/.cache/vpfloat-repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "vpfloat-repro")


@dataclass
class CacheStats:
    """Where lookups were served from (one instance per cache object)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0  # unreadable/corrupt disk entries treated as misses
    evictions: int = 0  # LRU entries removed to honour max_disk_bytes

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CompileCache:
    """Two-level (memory LRU -> disk) cache of compiled programs.

    ``directory=None`` gives a memory-only cache.  The directory is
    created lazily on the first store, so constructing a cache never
    touches the filesystem.  ``max_disk_bytes`` (None = unbounded)
    size-bounds the disk tier with LRU eviction after each store.
    """

    def __init__(self, directory: Optional[str] = None,
                 memory_slots: int = 64,
                 max_disk_bytes: Optional[int] = None):
        if memory_slots < 0:
            raise ValueError(f"memory_slots must be >= 0, "
                             f"got {memory_slots}")
        if max_disk_bytes is not None and max_disk_bytes < 0:
            raise ValueError(f"max_disk_bytes must be >= 0 or None, "
                             f"got {max_disk_bytes}")
        self.directory = (Path(directory).expanduser()
                          if directory is not None else None)
        self.memory_slots = memory_slots
        self.max_disk_bytes = max_disk_bytes
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, object]" = OrderedDict()

    # ------------------------------------------------------------ #
    # Keys
    # ------------------------------------------------------------ #

    @staticmethod
    def fingerprint(source: str, options, name: str = "module",
                    engine: Optional[str] = None,
                    batch: bool = False,
                    kernel_tier: str = "auto") -> str:
        """Stable hex digest over everything that affects compilation.

        ``engine`` is the execution engine the program is being built
        for; together with the codegen format version it keeps cached
        programs (and their codegen sidecars) from ever being replayed
        under a different engine or a stale emitted-source format.
        ``batch`` keys batched-execution codegen sidecars separately:
        batch-mode jit modules use the fused N-lane kernel maps and
        broadcast assignments, so their source differs from serial
        modules for the same program.  ``kernel_tier`` is the kernel
        selection policy the program will run under (auto/generic/
        small); it changes no IR, but codegen sidecars bind kernels by
        policy, so tiers never share one.
        """
        h = hashlib.sha256()
        h.update(b"vpfloat-compile-cache\0")
        h.update(f"format={FORMAT_VERSION}\0".encode())
        h.update(f"python={sys.version_info[0]}.{sys.version_info[1]}\0"
                 .encode())
        h.update(f"name={name}\0".encode())
        h.update(f"engine={engine!r}\0".encode())
        h.update(f"batch={batch!r}\0".encode())
        h.update(f"kernel_tier={kernel_tier!r}\0".encode())
        h.update(f"codegen={CODEGEN_VERSION}\0".encode())
        for f in sorted(fields(options), key=lambda f: f.name):
            value = getattr(options, f.name)
            h.update(f"opt:{f.name}={value!r}\0".encode())
        h.update(b"source\0")
        h.update(source.encode())
        return h.hexdigest()

    # ------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------ #

    def get(self, key: str):
        """The cached program for ``key``, or None."""
        registry = current_metrics()
        memory = self._memory
        program = memory.get(key)
        if program is not None:
            memory.move_to_end(key)
            self.stats.memory_hits += 1
            if registry is not None:
                registry.inc("compile.cache.memory_hits")
            return program
        program = self._disk_get(key)
        if program is not None:
            self.stats.disk_hits += 1
            self._memory_put(key, program)
            if registry is not None:
                registry.inc("compile.cache.disk_hits")
            return program
        self.stats.misses += 1
        if registry is not None:
            registry.inc("compile.cache.misses")
        return None

    def put(self, key: str, program) -> None:
        self.stats.stores += 1
        registry = current_metrics()
        if registry is not None:
            registry.inc("compile.cache.stores")
        self._memory_put(key, program)
        self._disk_put(key, program)

    def clear(self) -> None:
        """Drop the memory tier and delete this cache's disk entries."""
        self._memory.clear()
        if self.directory is None or not self.directory.is_dir():
            return
        for pattern in ("*.vpc", "*.vpcgen"):
            for entry in self.directory.glob(pattern):
                try:
                    entry.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------ #
    # Codegen sidecars
    # ------------------------------------------------------------ #

    def get_codegen(self, key: str) -> Optional[dict]:
        """The jit engine's emitted-source sidecar for ``key``, or None.

        The sidecar lives next to the pickled program as
        ``<key>.vpcgen`` (JSON: per-function status, fallback reason,
        and emitted Python source).  Unreadable, version-mismatched or
        structurally corrupt sidecars (truncated writes, garbled
        function records) are unlinked and treated as misses, mirroring
        the pickle tier's stale-format handling -- a bad sidecar must
        cost a recompile, never propagate an error into the run.
        """
        if self.directory is None:
            return None
        path = self.directory / f"{key}.vpcgen"
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            self._count_error()
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if (not isinstance(payload, dict)
                or payload.get("version") != CODEGEN_VERSION
                or not _codegen_payload_ok(payload)):
            self._count_error()
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return payload

    def put_codegen(self, key: str, payload: dict) -> None:
        """Atomically persist the codegen sidecar for ``key``."""
        if self.directory is None:
            return
        path = self.directory / f"{key}.vpcgen"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, temp = tempfile.mkstemp(dir=str(path.parent),
                                        suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                os.replace(temp, path)
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
        except OSError:
            self._count_error()
            return
        self._evict_if_needed()

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------ #
    # Tiers
    # ------------------------------------------------------------ #

    def _memory_put(self, key: str, program) -> None:
        if self.memory_slots == 0:
            return
        memory = self._memory
        memory[key] = program
        memory.move_to_end(key)
        while len(memory) > self.memory_slots:
            memory.popitem(last=False)

    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{key}.vpc"

    def _disk_get(self, key: str):
        path = self._path(key)
        if path is None:
            return None
        try:
            with open(path, "rb") as handle:
                version, program = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Torn write from a pre-atomic era, a different pickle
            # protocol, or plain corruption: treat as a miss.
            self._count_error()
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if version != FORMAT_VERSION:
            self._count_error()
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if self.max_disk_bytes is not None:
            # Refresh recency so LRU eviction spares hot entries.
            try:
                os.utime(path)
            except OSError:
                pass
        return program

    def _disk_put(self, key: str, program) -> None:
        path = self._path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, temp = tempfile.mkstemp(dir=str(path.parent),
                                        suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump((FORMAT_VERSION, program), handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp, path)
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
        except OSError:
            # Read-only/filled disk: persisting is best-effort; the
            # memory tier still serves this process.
            self._count_error()
            return
        self._evict_if_needed()

    # ------------------------------------------------------------ #
    # Size-bounded LRU eviction
    # ------------------------------------------------------------ #

    def disk_usage(self) -> "Tuple[int, int]":
        """``(entries, bytes)`` of the on-disk tier (pickles plus
        their codegen sidecars); ``(0, 0)`` for memory-only caches."""
        entries, total = self._scan_disk()
        return len(entries), total

    def _scan_disk(self):
        """Per-key disk footprint: ``{key: (recency, bytes, paths)}``
        plus the total byte count.  Recency is the newest mtime of the
        key's files (the ``.vpc`` pickle, refreshed on hits, dominates
        in practice)."""
        entries: dict = {}
        total = 0
        if self.directory is None or not self.directory.is_dir():
            return entries, total
        for pattern in ("*.vpc", "*.vpcgen"):
            for path in self.directory.glob(pattern):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                recency, size, paths = entries.get(
                    path.stem, (0.0, 0, []))
                entries[path.stem] = (max(recency, stat.st_mtime),
                                      size + stat.st_size,
                                      paths + [path])
                total += stat.st_size
        return entries, total

    def _evict_if_needed(self) -> None:
        """Delete least-recently-used disk entries until the store fits
        ``max_disk_bytes`` (no-op when unbounded)."""
        if self.max_disk_bytes is None or self.directory is None:
            return
        entries, total = self._scan_disk()
        registry = current_metrics()
        if total > self.max_disk_bytes:
            for key in sorted(entries, key=lambda k: entries[k][0]):
                if total <= self.max_disk_bytes:
                    break
                recency, size, paths = entries[key]
                for path in paths:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                total -= size
                self.stats.evictions += 1
                if registry is not None:
                    registry.inc("compile.cache.evictions")
        if registry is not None:
            registry.gauge("compile.cache.disk_bytes", total)

    def _count_error(self) -> None:
        self.stats.errors += 1
        registry = current_metrics()
        if registry is not None:
            registry.inc("compile.cache.errors")


def as_compile_cache(cache) -> Optional[CompileCache]:
    """Coerce ``cache`` (CompileCache | path-like | None) to a cache."""
    if cache is None or isinstance(cache, CompileCache):
        return cache
    return CompileCache(os.fspath(cache))
