"""Translation-validation harness: engine and pass transitions.

The entry points compile and execute one program under a *reference*
configuration and a set of *candidate* configurations, then assemble a
:class:`~repro.validation.certificate.Certificate`:

* :func:`validate_engines` -- the engine transitions (legacy <-> the
  fused/unfused closure tables <-> the specializing jit) plus the MPFR
  pool toggle, under the ``exact`` / ``traffic`` report invariants.
* :func:`validate_passes` -- the pass transitions (-O0 vs -O3 and each
  -O3 pipeline switch), value-equivalence with ``sane`` report checks.
* :func:`certificate_for_outcomes` -- assemble a certificate from run
  observations the caller already holds (the evaluation harness path,
  where kernels read their output arrays out of simulated memory).

Validation outcomes are surfaced as ``validate.*`` counters and
``validate:*`` tracer spans through the telemetry registry; pass
``strict=True`` (the default for the CLI paths) to raise
:class:`~repro.validation.certificate.CertificateError` on a failed
certificate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core import ENGINES, CompilerDriver, resolve_engine
from ..observability import CAT_VALIDATE, current_metrics, current_tracer
from .certificate import (
    TRANSITIONS,
    Certificate,
    CertificateError,
    make_check,
    report_snapshot,
    values_digest,
    values_token,
)

#: -O3 pipeline switches whose transition must preserve value semantics
#: (``contract_fma`` is excluded: fusing a*b+c into a single rounding is
#: an intentional semantic change, the reason it is off by default).
_PASS_SWITCHES = ("enable_loop_idiom", "enable_inlining", "enable_unroll")


def record_certificate(certificate: Certificate) -> None:
    """Fold a certificate's outcome into the telemetry registry."""
    registry = current_metrics()
    if registry is None:
        return
    registry.inc("validate.certificates")
    registry.inc("validate.passed" if certificate.passed
                 else "validate.failed")
    registry.inc(f"validate.kind.{certificate.kind}."
                 f"{'passed' if certificate.passed else 'failed'}")
    for check in certificate.checks:
        registry.inc("validate.checks")
        registry.inc(f"validate.check.{check.label}."
                     f"{'passed' if check.passed else 'failed'}")


def finish_certificate(certificate: Certificate,
                       strict: bool) -> Certificate:
    """Record telemetry and (in strict mode) raise on failure."""
    record_certificate(certificate)
    if strict and not certificate.passed:
        raise CertificateError(certificate.render())
    return certificate


# ----------------------------------------------------------------- #
# Source-level validators (compile + run per configuration)
# ----------------------------------------------------------------- #

def _observe(source: str, name: str, func: str, args,
             backend: str, engine: Optional[str], pool: Optional[bool],
             opt_level: int = 3, cache=None,
             max_steps: int = 500_000_000,
             **driver_kwargs) -> Tuple[Tuple, dict]:
    """Compile and run one configuration; -> (value tokens, report)."""
    driver = CompilerDriver(backend=backend, opt_level=opt_level,
                            cache=cache, engine=engine, **driver_kwargs)
    program = driver.compile(source, name=name)
    result = program.run(func, list(args), engine=engine, pool=pool,
                         max_steps=max_steps)
    return values_token([result.value]), report_snapshot(result.report)


def validate_engines(source: str, func: str, args: Sequence = (),
                     backend: str = "mpfr",
                     engine: Optional[str] = None,
                     engines: Optional[Sequence[str]] = None,
                     name: str = "program", cache=None,
                     max_steps: int = 500_000_000, strict: bool = True,
                     **driver_kwargs) -> Certificate:
    """Certificate for the engine transitions of one program.

    The reference is ``engine`` (default: the backend's default
    engine); every other entry of ``engines`` (default: all of
    :data:`~repro.core.ENGINES`) is checked under the ``exact`` report
    invariant, and the MPFR pool toggle under ``traffic``.
    """
    if backend == "unum":
        raise ValueError("engine validation applies to the interpreter "
                         "backends (none/mpfr/boost), not unum")
    reference_engine = resolve_engine(engine, backend)
    candidates = [e for e in (engines or ENGINES)
                  if e != reference_engine]
    tracer = current_tracer()
    span = tracer.span(f"validate:{name}", cat=CAT_VALIDATE,
                       args={"kind": "engine",
                             "reference": reference_engine}) \
        if tracer is not None else None
    try:
        ref_values, ref_report = _observe(
            source, name, func, args, backend, reference_engine, None,
            cache=cache, max_steps=max_steps, **driver_kwargs)
        certificate = Certificate(
            subject=name, kind="engine",
            reference=f"engine.{reference_engine}",
            witness={"func": func, "args": list(args),
                     "backend": backend,
                     "value_digest": values_digest_from(ref_values),
                     "cycles": ref_report["cycles"]})
        for candidate in candidates:
            values, report = _observe(
                source, name, func, args, backend, candidate, None,
                cache=cache, max_steps=max_steps, **driver_kwargs)
            certificate.add(make_check(
                f"engine.{candidate}", "exact", ref_values, values,
                ref_report, report))
        if backend != "boost":
            # The pool is on by default for mpfr/none; check it off.
            values, report = _observe(
                source, name, func, args, backend, reference_engine,
                False, cache=cache, max_steps=max_steps,
                **driver_kwargs)
            certificate.add(make_check(
                "pool.off", "traffic", ref_values, values,
                ref_report, report))
    finally:
        if span is not None:
            tracer.finish(span)
    return finish_certificate(certificate, strict)


def validate_tiers(source: str, func: str, args: Sequence = (),
                   backend: str = "mpfr",
                   engine: Optional[str] = None,
                   name: str = "program", cache=None,
                   max_steps: int = 500_000_000, strict: bool = True,
                   lanes: Optional[int] = None,
                   **driver_kwargs) -> Certificate:
    """Certificate for the ``generic↔specialized`` kernel transition.

    The reference compiles and runs with ``kernel_tier="small"`` (the
    precision-specialized fast-path kernels wherever legal); the
    candidate forces ``kernel_tier="generic"``.  Both run on the jit
    engine (the only engine that binds tiered kernels); the check runs
    under the ``exact`` invariant -- the tier is a strength reduction,
    not a semantic change.  ``lanes`` adds a batched-execution check of
    the same transition (mpfr backend only).
    """
    if backend == "unum":
        raise ValueError("kernel-tier validation applies to the "
                         "interpreter backends (none/mpfr/boost), "
                         "not unum")
    strictness = TRANSITIONS["generic↔specialized"]
    reference_engine = resolve_engine(engine, backend)
    tracer = current_tracer()
    span = tracer.span(f"validate:{name}", cat=CAT_VALIDATE,
                       args={"kind": "kernel-tier"}) \
        if tracer is not None else None
    try:
        ref_values, ref_report = _observe(
            source, name, func, args, backend, reference_engine, None,
            cache=cache, max_steps=max_steps, kernel_tier="small",
            **driver_kwargs)
        certificate = Certificate(
            subject=name, kind="kernel-tier", reference="tier.small",
            witness={"func": func, "args": list(args),
                     "backend": backend,
                     "value_digest": values_digest_from(ref_values),
                     "cycles": ref_report["cycles"]})
        values, report = _observe(
            source, name, func, args, backend, reference_engine, None,
            cache=cache, max_steps=max_steps, kernel_tier="generic",
            **driver_kwargs)
        certificate.add(make_check(
            "tier.generic", strictness, ref_values, values,
            ref_report, report))
        if lanes is not None and backend == "mpfr":
            for tier in ("small", "generic"):
                driver = CompilerDriver(
                    backend=backend, cache=cache, engine="jit",
                    kernel_tier=tier, **driver_kwargs)
                program = driver.compile(source, name=name)
                batch = program.run_batch(func, list(args), lanes=lanes,
                                          max_steps=max_steps)
                tokens = values_token(batch.values)
                snapshot = report_snapshot(batch.reports[0])
                if tier == "small":
                    batch_ref_values, batch_ref_report = tokens, snapshot
                else:
                    certificate.add(make_check(
                        f"tier.generic.batch{lanes}", strictness,
                        batch_ref_values, tokens,
                        batch_ref_report, snapshot))
    finally:
        if span is not None:
            tracer.finish(span)
    return finish_certificate(certificate, strict)


def validate_passes(source: str, func: str, args: Sequence = (),
                    backend: str = "mpfr",
                    engine: Optional[str] = None,
                    name: str = "program", cache=None,
                    max_steps: int = 500_000_000, strict: bool = True,
                    **driver_kwargs) -> Certificate:
    """Certificate for the pass transitions of one program.

    Compares the full -O3 pipeline against -O0 (raw codegen) and
    against -O3 with each pipeline switch disabled; values must be
    bit-identical, reports need only be sane (optimization is allowed
    to change the schedule -- that is its job).
    """
    if backend == "unum":
        raise ValueError("pass validation applies to the interpreter "
                         "backends (none/mpfr/boost), not unum")
    reference_engine = resolve_engine(engine, backend)
    tracer = current_tracer()
    span = tracer.span(f"validate:{name}", cat=CAT_VALIDATE,
                       args={"kind": "pass"}) \
        if tracer is not None else None
    try:
        ref_values, ref_report = _observe(
            source, name, func, args, backend, reference_engine, None,
            opt_level=3, cache=cache, max_steps=max_steps,
            **driver_kwargs)
        certificate = Certificate(
            subject=name, kind="pass", reference="opt.O3",
            witness={"func": func, "args": list(args),
                     "backend": backend,
                     "value_digest": values_digest_from(ref_values)})
        values, report = _observe(
            source, name, func, args, backend, reference_engine, None,
            opt_level=0, cache=cache, max_steps=max_steps,
            **driver_kwargs)
        certificate.add(make_check("opt.O0", "sane", ref_values,
                                   values, ref_report, report))
        for switch in _PASS_SWITCHES:
            kwargs = dict(driver_kwargs)
            kwargs[switch] = False
            values, report = _observe(
                source, name, func, args, backend, reference_engine,
                None, opt_level=3, cache=cache, max_steps=max_steps,
                **kwargs)
            certificate.add(make_check(
                f"pass.no-{switch[len('enable_'):]}", "sane",
                ref_values, values, ref_report, report))
    finally:
        if span is not None:
            tracer.finish(span)
    return finish_certificate(certificate, strict)


def values_digest_from(tokens: Tuple) -> str:
    import hashlib

    return hashlib.sha256(repr(tokens).encode()).hexdigest()[:16]


# ----------------------------------------------------------------- #
# Outcome-level certificates (evaluation-harness path)
# ----------------------------------------------------------------- #

def certificate_for_outcomes(subject: str, reference_label: str,
                             reference: Tuple[Sequence, object],
                             candidates: List[Tuple[str, str,
                                                    Sequence, object]],
                             witness: Optional[dict] = None,
                             strict: bool = True) -> Certificate:
    """Assemble a certificate from observations the caller produced.

    ``reference`` is ``(values, report)`` for the reference
    configuration; each candidate is ``(label, strictness, values,
    report)``.  Values may be any sequence the token layer understands
    (run results, output arrays); reports are CostReport objects or
    snapshots."""
    ref_values = values_token(reference[0])
    ref_report = _as_snapshot(reference[1])
    certificate = Certificate(
        subject=subject, kind="engine", reference=reference_label,
        witness=dict(witness or {}))
    certificate.witness.setdefault("value_digest",
                                   values_digest(reference[0]))
    tracer = current_tracer()
    span = tracer.span(f"validate:{subject}", cat=CAT_VALIDATE,
                       args={"kind": "engine",
                             "reference": reference_label}) \
        if tracer is not None else None
    try:
        for label, strictness, values, report in candidates:
            certificate.add(make_check(
                label, strictness, ref_values, values_token(values),
                ref_report, _as_snapshot(report)))
    finally:
        if span is not None:
            tracer.finish(span)
    return finish_certificate(certificate, strict)


def _as_snapshot(report) -> dict:
    if isinstance(report, dict):
        return report
    return report_snapshot(report)
