"""Delta-debugging minimizer for failing fuzz programs.

:func:`minimize` shrinks a :class:`~repro.validation.fuzzer.FuzzProgram`
that fails a caller-supplied predicate (``predicate(program) -> bool``,
True when the failure still reproduces) to a small reproducer:

1. **ddmin over ops** -- remove chunks of instructions (halving
   granularity, classic Zeller/Hildebrandt), renumbering the surviving
   value references; a candidate subset is only well-formed when every
   op's operands survive with it, so ill-formed subsets are skipped
   rather than tested.
2. **Literal simplification** -- rewrite literal text toward simpler
   spellings ("1.0", "0.0", ...) wherever the failure persists.
3. **Loop-trip reduction** -- shrink loop trip counts toward 1.

The whole process is deterministic (no randomness, fixed scan orders)
and memoizes predicate calls by program digest, so re-running a
minimization replays identically.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..observability import current_metrics
from .fuzzer import FuzzOp, FuzzProgram

#: Simpler literal spellings, tried in order during simplification.
SIMPLE_LITERALS = ("1.0", "0.0", "2.0", "0.5")


def _rebuild(program: FuzzProgram,
             keep: Sequence[int]) -> Optional[FuzzProgram]:
    """The subprogram over ``keep`` (sorted op indexes), with value
    references renumbered; None when it would be ill-formed."""
    if not keep:
        return None
    renumber: Dict[int, int] = {old: new for new, old in enumerate(keep)}
    ops: List[FuzzOp] = []
    for old in keep:
        op = program.ops[old]
        for ref in op.references():
            if ref not in renumber:
                return None
        if op.op == "lit":
            ops.append(op)
        elif op.op == "loop":
            trips = op.args[0]
            ops.append(FuzzOp("loop", (trips,) + tuple(
                renumber[r] for r in op.args[1:])))
        else:
            ops.append(FuzzOp(op.op, tuple(
                renumber[r] for r in op.args)))
    if ops[0].op != "lit":
        return None
    return FuzzProgram(program.prec, tuple(ops))


class _Memo:
    """Predicate wrapper: memoizes by digest, counts evaluations."""

    def __init__(self, predicate: Callable[[FuzzProgram], bool]):
        self._predicate = predicate
        self._seen: Dict[str, bool] = {}
        self.evaluations = 0

    def __call__(self, program: FuzzProgram) -> bool:
        key = program.digest()
        if key not in self._seen:
            self.evaluations += 1
            self._seen[key] = bool(self._predicate(program))
        return self._seen[key]


def _ddmin_ops(program: FuzzProgram, failing: _Memo) -> FuzzProgram:
    """Classic ddmin over the instruction list."""
    indexes: Tuple[int, ...] = tuple(range(len(program.ops)))
    granularity = 2
    while len(indexes) >= 2:
        chunk = max(1, len(indexes) // granularity)
        reduced = False
        start = 0
        while start < len(indexes):
            keep = indexes[:start] + indexes[start + chunk:]
            candidate = _rebuild(program, keep)
            if candidate is not None and failing(candidate):
                indexes = keep
                granularity = max(granularity - 1, 2)
                reduced = True
                # Restart the scan on the reduced list.
                start = 0
                continue
            start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(granularity * 2, len(indexes))
    rebuilt = _rebuild(program, indexes)
    assert rebuilt is not None  # the original always rebuilds
    return rebuilt


def _redirect(program: FuzzProgram, failing: _Memo) -> FuzzProgram:
    """Retarget operands at earlier values (ascending scan).

    Rewiring ``loop(n, v2, v1, v3)`` to ``loop(n, v0, v0, v0)`` frees
    the intermediate definitions for the next ddmin round to delete."""
    changed = True
    while changed:
        changed = False
        for i, op in enumerate(program.ops):
            if op.op == "lit":
                continue
            head = (op.args[:1] if op.op == "loop" else ())
            refs = list(op.args[len(head):])
            for slot, current in enumerate(refs):
                for target in range(current):
                    trial = list(refs)
                    trial[slot] = target
                    ops = list(program.ops)
                    ops[i] = FuzzOp(op.op, head + tuple(trial))
                    candidate = FuzzProgram(program.prec, tuple(ops))
                    if failing(candidate):
                        program = candidate
                        refs = trial
                        changed = True
                        break
    return program


def _simplify(program: FuzzProgram, failing: _Memo) -> FuzzProgram:
    """Literal and loop-trip simplification to a fixed point."""
    changed = True
    while changed:
        changed = False
        for i, op in enumerate(program.ops):
            if op.op == "lit":
                for text in SIMPLE_LITERALS:
                    if op.args[0] == text:
                        break
                    ops = list(program.ops)
                    ops[i] = FuzzOp("lit", (text,))
                    candidate = FuzzProgram(program.prec, tuple(ops))
                    if failing(candidate):
                        program = candidate
                        changed = True
                        break
            elif op.op == "loop" and op.args[0] > 1:
                ops = list(program.ops)
                ops[i] = FuzzOp("loop", (op.args[0] - 1,) + op.args[1:])
                candidate = FuzzProgram(program.prec, tuple(ops))
                if failing(candidate):
                    program = candidate
                    changed = True
    return program


def minimize(program: FuzzProgram,
             predicate: Callable[[FuzzProgram], bool]) -> FuzzProgram:
    """Shrink ``program`` while ``predicate`` keeps returning True.

    ``predicate(program)`` must be True for the input program (i.e. the
    failure reproduces); raises ValueError otherwise so a flaky
    reproduction is caught up front instead of silently minimizing to
    garbage.
    """
    failing = _Memo(predicate)
    if not failing(program):
        raise ValueError("predicate does not hold on the input program; "
                         "nothing to minimize")
    before = len(program)
    program = _ddmin_ops(program, failing)
    # Redirection and simplification can unlock further op removal
    # (a freed operand chain, a literal another op already loads), and
    # removal can expose new redirection targets: iterate to a fixed
    # point.
    while True:
        program = _redirect(program, failing)
        program = _simplify(program, failing)
        smaller = _ddmin_ops(program, failing)
        if len(smaller) == len(program):
            program = smaller
            break
        program = smaller
    registry = current_metrics()
    if registry is not None:
        registry.inc("validate.minimize.runs")
        registry.inc("validate.minimize.ops_removed",
                     before - len(program))
        registry.inc("validate.minimize.evaluations",
                     failing.evaluations)
    return program
