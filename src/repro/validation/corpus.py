"""Reproducer corpus: persist and replay minimized failing programs.

Every failure the fuzzer finds is shrunk by the minimizer and written to
a corpus directory as ``vpfuzz-<digest>.json`` -- a self-contained
document holding the program (precision + op list), the mismatch that
condemned it, and the rendered dialect source for human reading.  The
digest is the program's own content hash, so re-finding the same minimal
reproducer is idempotent.

:func:`replay` re-runs the full cross-check on a saved reproducer; the
generation/minimization pipeline is deterministic, so a reproducer keeps
failing until the underlying bug is fixed, at which point ``replay``
reports it clean and the file can be retired.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Tuple

from .fuzzer import FuzzProgram, Mismatch, cross_check

CORPUS_VERSION = 1

#: Default corpus location (override with ``--corpus-dir`` or the
#: VPFLOAT_FUZZ_CORPUS environment variable).
DEFAULT_CORPUS_DIR = os.path.join("results", "fuzz-corpus")


def corpus_dir(override: Optional[str] = None) -> str:
    return (override
            or os.environ.get("VPFLOAT_FUZZ_CORPUS")
            or DEFAULT_CORPUS_DIR)


def reproducer_path(directory: str, program: FuzzProgram) -> str:
    return os.path.join(directory, f"vpfuzz-{program.digest()}.json")


def save_reproducer(program: FuzzProgram, mismatch: Mismatch,
                    directory: Optional[str] = None) -> str:
    """Write one minimized reproducer; returns the file path."""
    directory = corpus_dir(directory)
    os.makedirs(directory, exist_ok=True)
    path = reproducer_path(directory, program)
    document = {
        "corpus_version": CORPUS_VERSION,
        "program": program.to_json(),
        "mismatch": mismatch.to_dict(),
        "source": program.render_source(),
    }
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_reproducer(path: str) -> Tuple[FuzzProgram, dict]:
    """-> (program, mismatch-dict) from a corpus file."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "program" not in document:
        raise ValueError(f"{path}: not a vpfuzz reproducer")
    return (FuzzProgram.from_json(document["program"]),
            dict(document.get("mismatch", {})))


def replay(path: str) -> Optional[Mismatch]:
    """Re-run the cross-check on a saved reproducer.

    Returns the (fresh) mismatch when the failure still reproduces, or
    None when the program now validates clean."""
    program, _ = load_reproducer(path)
    return cross_check(program)
