"""Translation validation: certificates, fuzzing, minimization.

The paper's pitch is that variable-precision arithmetic drops into the
normal compiler flow "seamlessly" -- which is only credible if every
transition the toolchain offers (execution engines, the MPFR pool,
optimization levels and individual -O3 passes) is *checkably*
semantics-preserving.  This package makes that checkable:

* :mod:`~repro.validation.certificate` -- equivalence certificates:
  bit-level value witnesses plus cycle-report invariants per transition.
* :mod:`~repro.validation.harness` -- compile-and-run validators behind
  the ``--validate`` flags of ``vpfloat-cc`` and the evaluation
  drivers, with ``validate.*`` telemetry.
* :mod:`~repro.validation.fuzzer` -- random-program differential
  testing across engines, optimization levels, backends, precisions and
  all five rounding modes.
* :mod:`~repro.validation.minimize` -- deterministic delta-debugging of
  failing programs to minimal reproducers.
* :mod:`~repro.validation.corpus` -- reproducer persistence + replay.

``python -m repro.validation fuzz`` runs a fuzzing session;
``python -m repro.validation replay FILE`` re-checks a reproducer.
"""

from .certificate import (
    CERTIFICATE_VERSION,
    STRICTNESS,
    TRANSITIONS,
    Certificate,
    CertificateError,
    Check,
    compare_reports,
    make_check,
    report_snapshot,
    value_token,
    values_digest,
    values_token,
)
from .corpus import (
    DEFAULT_CORPUS_DIR,
    corpus_dir,
    load_reproducer,
    replay,
    save_reproducer,
)
from .fuzzer import (
    ALL_ROUNDING_MODES,
    BATCH_LANES,
    ENGINE_CONFIGS,
    FuzzOp,
    FuzzProgram,
    Mismatch,
    cross_check,
    cross_check_batched,
    cross_check_engines,
    cross_check_rounding,
    cross_check_tiers,
    eval_mpfr_api,
    eval_reference,
    fuzz_programs,
    generate_program,
)
from .harness import (
    certificate_for_outcomes,
    finish_certificate,
    record_certificate,
    validate_engines,
    validate_passes,
    validate_tiers,
)
from .minimize import minimize

__all__ = [
    "ALL_ROUNDING_MODES",
    "BATCH_LANES",
    "CERTIFICATE_VERSION",
    "Certificate",
    "CertificateError",
    "Check",
    "DEFAULT_CORPUS_DIR",
    "ENGINE_CONFIGS",
    "FuzzOp",
    "FuzzProgram",
    "Mismatch",
    "STRICTNESS",
    "TRANSITIONS",
    "certificate_for_outcomes",
    "compare_reports",
    "corpus_dir",
    "cross_check",
    "cross_check_batched",
    "cross_check_engines",
    "cross_check_rounding",
    "cross_check_tiers",
    "eval_mpfr_api",
    "eval_reference",
    "finish_certificate",
    "fuzz_programs",
    "generate_program",
    "load_reproducer",
    "make_check",
    "minimize",
    "record_certificate",
    "replay",
    "report_snapshot",
    "save_reproducer",
    "validate_engines",
    "validate_passes",
    "validate_tiers",
    "value_token",
    "values_digest",
    "values_token",
]
