"""Program fuzzer: random IR programs cross-checked across the stack.

Generalizes the ad-hoc ``random_program`` strategy of
``tests/test_differential.py`` into a first-class generator over a small
SSA-shaped IR (:class:`FuzzProgram`): each :class:`FuzzOp` defines one
value from literals and earlier values (add/sub/mul/div, neg/abs/sqrt,
and a bounded ``acc = acc * m + a`` loop).  One program drives two
independent differentials:

* :func:`cross_check_rounding` -- evaluate the program directly through
  :mod:`repro.bigfloat.arith` and again through the
  :class:`~repro.bigfloat.mpfr_api.MpfrLibrary` object layer (pool on
  and off), at the program's precision under **all five rounding
  modes**; results must be bit-identical BigFloats.
* :func:`cross_check_engines` -- render the program to dialect source,
  compile it through the real frontend/optimizer, and execute it across
  backends (none/mpfr/boost), optimization levels (-O0/-O3), all four
  execution engines, and the pool toggle; the returned doubles must be
  bit-identical.

:func:`cross_check` composes both; a divergence comes back as a
:class:`Mismatch` which the delta-debugging minimizer
(:mod:`repro.validation.minimize`) can shrink to a minimal reproducer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..bigfloat import BigFloat, arith, convert
from ..bigfloat.mpfr_api import MpfrLibrary
from ..bigfloat.rounding import RNDA, RNDD, RNDN, RNDU, RNDZ, RoundingMode
from ..observability import current_metrics
from .certificate import (
    TRANSITIONS,
    compare_reports,
    report_snapshot,
    value_token,
)

FUZZ_FORMAT_VERSION = 1

#: All five MPFR rounding modes, in a stable order.
ALL_ROUNDING_MODES = (RNDN, RNDZ, RNDU, RNDD, RNDA)

#: Precision range the fuzzer sweeps (bits of significand).
MIN_PRECISION = 24
MAX_PRECISION = 512

#: Operations over earlier values.  ``lit`` introduces a literal;
#: ``loop`` runs ``acc = acc * m + a`` for a bounded trip count.
BINARY_OPS = ("add", "sub", "mul", "div")
UNARY_OPS = ("neg", "abs", "sqrt")
ALL_OPS = ("lit",) + BINARY_OPS + UNARY_OPS + ("loop",)

_SOURCE_BINOP = {"add": "+", "sub": "-", "mul": "*", "div": "/"}

#: Dialect spellings for literals the lexer has no token for (the
#: divisions fold/evaluate to the same special under every engine).
_SOURCE_SPECIALS = {
    "inf": "(1.0 / 0.0)", "-inf": "(-1.0 / 0.0)",
    "nan": "(0.0 / 0.0)",
}


@dataclass(frozen=True)
class FuzzOp:
    """One instruction: defines value ``v<i>`` from earlier values.

    ``args`` holds value indexes for arithmetic ops, the literal text
    for ``lit``, and ``(trips, acc, m, a)`` for ``loop``.
    """

    op: str
    args: Tuple

    def references(self) -> Tuple[int, ...]:
        """Indexes of earlier values this op reads."""
        if self.op == "lit":
            return ()
        if self.op == "loop":
            return tuple(self.args[1:])
        return tuple(self.args)

    def to_json(self) -> list:
        return [self.op, list(self.args)]

    @classmethod
    def from_json(cls, data) -> "FuzzOp":
        op, args = data
        return cls(op, tuple(args))


@dataclass(frozen=True)
class FuzzProgram:
    """An SSA-shaped straight-line/loop program at one precision.

    ``ops[i]`` defines value ``v<i>``; the program's result is the last
    value.  Programs are immutable and hashable so the minimizer can
    memoize predicate evaluations.
    """

    prec: int
    ops: Tuple[FuzzOp, ...]

    def __post_init__(self):
        if not self.ops:
            raise ValueError("a FuzzProgram needs at least one op")
        for i, op in enumerate(self.ops):
            if op.op not in ALL_OPS:
                raise ValueError(f"op #{i}: unknown opcode {op.op!r}")
            for ref in op.references():
                if not 0 <= ref < i:
                    raise ValueError(
                        f"op #{i} ({op.op}) references v{ref}, which is "
                        f"not an earlier value")
        if self.ops[0].op != "lit":
            raise ValueError("the first op must be a literal")

    def __len__(self) -> int:
        return len(self.ops)

    # ------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------ #

    def render_source(self) -> str:
        """The program as vpfloat dialect source (function ``f``)."""
        ftype = f"vpfloat<mpfr, 16, {self.prec}>"
        lines: List[str] = []
        for i, op in enumerate(self.ops):
            if op.op == "lit":
                rhs = _SOURCE_SPECIALS.get(op.args[0], op.args[0])
            elif op.op in BINARY_OPS:
                a, b = op.args
                rhs = f"v{a} {_SOURCE_BINOP[op.op]} v{b}"
            elif op.op == "neg":
                rhs = f"-v{op.args[0]}"
            elif op.op == "abs":
                rhs = f"vp_fabs(v{op.args[0]})"
            elif op.op == "sqrt":
                rhs = f"vp_sqrt(v{op.args[0]})"
            elif op.op == "loop":
                trips, acc, m, a = op.args
                lines.append(f"  {ftype} v{i} = v{acc};")
                lines.append(f"  for (int i = 0; i < {trips}; i++) "
                             f"v{i} = v{i} * v{m} + v{a};")
                continue
            else:  # pragma: no cover - __post_init__ rejects these
                raise AssertionError(op.op)
            lines.append(f"  {ftype} v{i} = {rhs};")
        body = "\n".join(lines)
        result = len(self.ops) - 1
        return (f"double f() {{\n{body}\n"
                f"  return (double)(v{result});\n}}\n")

    def digest(self) -> str:
        import hashlib

        blob = repr((self.prec, tuple(op.to_json() for op in self.ops)))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def to_json(self) -> dict:
        return {"version": FUZZ_FORMAT_VERSION, "precision": self.prec,
                "ops": [op.to_json() for op in self.ops]}

    @classmethod
    def from_json(cls, data: dict) -> "FuzzProgram":
        if not isinstance(data, dict) or "ops" not in data:
            raise ValueError("not a fuzz-program document")
        return cls(int(data["precision"]),
                   tuple(FuzzOp.from_json(op) for op in data["ops"]))


# ----------------------------------------------------------------- #
# Direct evaluators (no compiler involved)
# ----------------------------------------------------------------- #

#: Kernel table the reference evaluator consults; a test can pass a
#: mutated copy to simulate a miscompile for minimizer self-checks.
REFERENCE_KERNELS: Dict[str, Callable] = {
    "add": arith.add, "sub": arith.sub, "mul": arith.mul,
    "div": arith.div, "neg": arith.neg, "abs": arith.abs_,
    "sqrt": arith.sqrt,
}


def eval_reference(program: FuzzProgram,
                   rm: RoundingMode = RNDN,
                   kernels: Optional[Dict[str, Callable]] = None
                   ) -> BigFloat:
    """Evaluate directly over BigFloats via :mod:`repro.bigfloat.arith`."""
    table = kernels or REFERENCE_KERNELS
    prec = program.prec
    values: List[BigFloat] = []
    for op in program.ops:
        if op.op == "lit":
            values.append(convert.from_str(op.args[0], prec, rm))
        elif op.op in BINARY_OPS:
            a, b = op.args
            values.append(table[op.op](values[a], values[b], prec, rm))
        elif op.op in UNARY_OPS:
            values.append(table[op.op](values[op.args[0]], prec, rm))
        else:  # loop
            trips, acc, m, a = op.args
            current = values[acc]
            for _ in range(trips):
                current = table["add"](
                    table["mul"](current, values[m], prec, rm),
                    values[a], prec, rm)
            values.append(current)
    return values[-1]


def eval_mpfr_api(program: FuzzProgram, rm: RoundingMode = RNDN,
                  pool: bool = False) -> BigFloat:
    """Evaluate through the C-style MPFR object layer (handles,
    init/clear lifetime, optional free-list pool) -- an independent
    path over the same arithmetic."""
    lib = MpfrLibrary(pool=pool)
    prec = max(program.prec, 2)
    handles = []

    def fresh():
        handles.append(lib.init2(prec))
        return handles[-1]

    for op in program.ops:
        dst = fresh()
        if op.op == "lit":
            lib.set_str(dst, op.args[0], rm)
        elif op.op == "add":
            lib.add(dst, handles[op.args[0]], handles[op.args[1]], rm)
        elif op.op == "sub":
            lib.sub(dst, handles[op.args[0]], handles[op.args[1]], rm)
        elif op.op == "mul":
            lib.mul(dst, handles[op.args[0]], handles[op.args[1]], rm)
        elif op.op == "div":
            lib.div(dst, handles[op.args[0]], handles[op.args[1]], rm)
        elif op.op == "neg":
            lib.neg(dst, handles[op.args[0]], rm)
        elif op.op == "abs":
            lib.abs(dst, handles[op.args[0]], rm)
        elif op.op == "sqrt":
            lib.sqrt(dst, handles[op.args[0]], rm)
        else:  # loop
            trips, acc, m, a = op.args
            lib.set(dst, handles[acc], rm)
            scratch = lib.init2(prec)
            for _ in range(trips):
                lib.mul(scratch, dst, handles[m], rm)
                lib.add(dst, scratch, handles[a], rm)
            lib.clear(scratch)
    result = handles[-1].value
    for handle in handles:
        lib.clear(handle)
    return result


# ----------------------------------------------------------------- #
# Cross-checks
# ----------------------------------------------------------------- #

@dataclass
class Mismatch:
    """The first divergence a cross-check found."""

    stage: str          # "rounding" | "engine"
    label: str          # candidate configuration
    reference: str      # reference configuration
    expected: str       # token repr of the reference value
    got: str            # token repr of the candidate value
    rounding: Optional[str] = None

    def to_dict(self) -> dict:
        return {"stage": self.stage, "label": self.label,
                "reference": self.reference, "expected": self.expected,
                "got": self.got, "rounding": self.rounding}

    def describe(self) -> str:
        where = f" [{self.rounding}]" if self.rounding else ""
        return (f"{self.stage}{where}: {self.label} diverged from "
                f"{self.reference}: {self.got} != {self.expected}")


def cross_check_rounding(program: FuzzProgram,
                         modes: Sequence[RoundingMode]
                         = ALL_ROUNDING_MODES) -> Optional[Mismatch]:
    """Direct-evaluator differential at every rounding mode."""
    for rm in modes:
        reference = value_token(eval_reference(program, rm))
        for label, pool in (("mpfr_api", False), ("mpfr_api.pool", True)):
            candidate = value_token(eval_mpfr_api(program, rm, pool))
            if candidate != reference:
                return Mismatch("rounding", label, "arith",
                                repr(reference), repr(candidate),
                                rounding=rm.value)
    return None


#: Engine/optimization configurations for the compiled differential:
#: (label, backend, opt_level, engine, pool).  The first entry is the
#: reference.
ENGINE_CONFIGS: Tuple[Tuple[str, str, int, Optional[str],
                            Optional[bool]], ...] = (
    ("none.O3.fast", "none", 3, "fast", None),
    ("none.O0.fast", "none", 0, "fast", None),
    ("none.O3.legacy", "none", 3, "legacy", None),
    ("mpfr.O3.jit", "mpfr", 3, "jit", None),
    ("mpfr.O3.fast", "mpfr", 3, "fast", None),
    ("mpfr.O3.unfused", "mpfr", 3, "unfused", None),
    ("mpfr.O3.legacy", "mpfr", 3, "legacy", None),
    ("mpfr.O3.jit.no-pool", "mpfr", 3, "jit", False),
    ("boost.O3.fast", "boost", 3, "fast", None),
)


def cross_check_engines(program: FuzzProgram,
                        configs=ENGINE_CONFIGS) -> Optional[Mismatch]:
    """Compile the rendered source and diff all engine/opt configs."""
    from ..core import compile_source

    source = program.render_source()
    reference_label = configs[0][0]
    reference = None
    for label, backend, opt_level, engine, pool in configs:
        compiled = compile_source(source, backend=backend,
                                  opt_level=opt_level, engine=engine)
        value = compiled.run("f", [], cache=False, engine=engine,
                             pool=pool).value
        token = value_token(value)
        if reference is None:
            reference = token
        elif token != reference:
            return Mismatch("engine", label, reference_label,
                            repr(reference), repr(token))
    return None


#: Lane counts the batched differential sweeps (kept small: every lane
#: of a fuzz program computes the same values, so two sizes suffice to
#: exercise broadcast, the fused kernels, and the report invariant).
BATCH_LANES: Tuple[int, ...] = (2, 5)


def cross_check_batched(program: FuzzProgram,
                        lanes: Sequence[int] = BATCH_LANES
                        ) -> Optional[Mismatch]:
    """Batched-engine differential: the ``serial↔batched`` transition.

    Compiles the rendered source for the mpfr jit engine, runs it once
    serially, then as a batch of N lanes for each N in ``lanes``; every
    lane's value must be bit-identical to the serial run and the shared
    cycle report must satisfy the transition's invariant
    (:data:`~repro.validation.certificate.TRANSITIONS`, ``exact``).  A
    batch that bails out to per-lane serial execution still passes --
    the fallback path is itself the serial engine."""
    from ..core import compile_source

    strictness = TRANSITIONS["serial↔batched"]
    source = program.render_source()
    compiled = compile_source(source, backend="mpfr", opt_level=3,
                              engine="jit")
    serial = compiled.run("f", [], cache=False, engine="jit")
    reference = value_token(serial.value)
    reference_report = report_snapshot(serial.report)
    for n in lanes:
        batch = compiled.run_batch("f", [], lanes=n, cache=False)
        for i in range(n):
            token = value_token(batch.values[i])
            if token != reference:
                return Mismatch("batch", f"mpfr.O3.jit.batch{n}.lane{i}",
                                "mpfr.O3.jit.serial", repr(reference),
                                repr(token))
            detail = compare_reports(reference_report,
                                     report_snapshot(batch.reports[i]),
                                     strictness)
            if detail is not None:
                return Mismatch(
                    "batch", f"mpfr.O3.jit.batch{n}.lane{i}.report",
                    "mpfr.O3.jit.serial", repr(reference_report),
                    f"{report_snapshot(batch.reports[i])!r} ({detail})")
    return None


def cross_check_tiers(program: FuzzProgram,
                      lanes: Sequence[int] = BATCH_LANES
                      ) -> Optional[Mismatch]:
    """Kernel-tier differential: the ``generic↔specialized`` transition
    in lockstep.

    Compiles the rendered source twice for the mpfr jit engine -- once
    with ``kernel_tier="small"`` (the precision-specialized fast-path
    kernels plus the batched numpy tier with its lane floor waived),
    once with ``kernel_tier="generic"`` -- and runs both serially and
    at each batched lane count.  Values and cycle reports must match
    bit-for-bit under the transition's ``exact`` invariant; the tier is
    a strength reduction of the same arithmetic, never a reround."""
    from ..core import compile_source

    strictness = TRANSITIONS["generic↔specialized"]
    source = program.render_source()
    programs = {
        tier: compile_source(source, backend="mpfr", opt_level=3,
                             engine="jit", kernel_tier=tier)
        for tier in ("small", "generic")
    }
    runs = {tier: compiled.run("f", [], cache=False)
            for tier, compiled in programs.items()}
    reference = value_token(runs["generic"].value)
    token = value_token(runs["small"].value)
    if token != reference:
        return Mismatch("tier", "mpfr.O3.jit.tier-small",
                        "mpfr.O3.jit.tier-generic", repr(reference),
                        repr(token))
    reference_report = report_snapshot(runs["generic"].report)
    detail = compare_reports(reference_report,
                             report_snapshot(runs["small"].report),
                             strictness)
    if detail is not None:
        return Mismatch(
            "tier", "mpfr.O3.jit.tier-small.report",
            "mpfr.O3.jit.tier-generic", repr(reference_report),
            f"{report_snapshot(runs['small'].report)!r} ({detail})")
    for n in lanes:
        batches = {tier: compiled.run_batch("f", [], lanes=n,
                                            cache=False)
                   for tier, compiled in programs.items()}
        for i in range(n):
            reference = value_token(batches["generic"].values[i])
            token = value_token(batches["small"].values[i])
            if token != reference:
                return Mismatch(
                    "tier", f"mpfr.O3.jit.tier-small.batch{n}.lane{i}",
                    f"mpfr.O3.jit.tier-generic.batch{n}",
                    repr(reference), repr(token))
            detail = compare_reports(
                report_snapshot(batches["generic"].reports[i]),
                report_snapshot(batches["small"].reports[i]),
                strictness)
            if detail is not None:
                return Mismatch(
                    "tier",
                    f"mpfr.O3.jit.tier-small.batch{n}.lane{i}.report",
                    f"mpfr.O3.jit.tier-generic.batch{n}",
                    repr(report_snapshot(batches["generic"].reports[i])),
                    f"{report_snapshot(batches['small'].reports[i])!r} "
                    f"({detail})")
    return None


def cross_check(program: FuzzProgram, engines: bool = True,
                batched: bool = True,
                tiers: bool = True) -> Optional[Mismatch]:
    """Full differential: rounding-mode sweep, the compiled
    engine/optimization sweep, the batched-engine sweep, then the
    kernel-tier lockstep sweep.  None when everything agrees."""
    registry = current_metrics()
    if registry is not None:
        registry.inc("validate.fuzz.programs")
    mismatch = cross_check_rounding(program)
    if mismatch is None and engines:
        mismatch = cross_check_engines(program)
    if mismatch is None and engines and batched:
        mismatch = cross_check_batched(program)
    if mismatch is None and engines and tiers:
        mismatch = cross_check_tiers(program)
    if registry is not None:
        registry.inc("validate.fuzz.failures" if mismatch
                     else "validate.fuzz.passed")
    return mismatch


# ----------------------------------------------------------------- #
# Generation
# ----------------------------------------------------------------- #

#: Literal shapes the generator draws from: plain decimals, signed
#: zeros, sub-one magnitudes, huge/tiny exponents (subnormal-range for
#: small formats), and special values.
_SPECIAL_LITERALS = ("0.0", "-0.0", "inf", "-inf", "nan")


def _random_literal(rng: random.Random) -> str:
    shape = rng.random()
    if shape < 0.05:
        return rng.choice(_SPECIAL_LITERALS)
    whole = rng.randint(-60, 60)
    frac = rng.choice(("0", "25", "5", "125", "333", "9999"))
    if shape < 0.25:
        exp = rng.randint(-40, 40)
        return f"{whole}.{frac}e{exp:+d}"
    return f"{whole}.{frac}"


def generate_program(rng: random.Random,
                     prec: Optional[int] = None,
                     max_ops: int = 14) -> FuzzProgram:
    """One random program (used by the CLI fuzz driver; the hypothesis
    strategy below mirrors this construction for shrinkable tests)."""
    if prec is None:
        prec = rng.randint(MIN_PRECISION, MAX_PRECISION)
    n_lits = rng.randint(1, 3)
    ops: List[FuzzOp] = [FuzzOp("lit", (_random_literal(rng),))
                         for _ in range(n_lits)]
    n_body = rng.randint(1, max(1, max_ops - n_lits))
    for _ in range(n_body):
        kind = rng.random()
        idx = len(ops)
        if kind < 0.15:
            ops.append(FuzzOp("lit", (_random_literal(rng),)))
        elif kind < 0.70:
            op = rng.choice(BINARY_OPS)
            ops.append(FuzzOp(op, (rng.randrange(idx),
                                   rng.randrange(idx))))
        elif kind < 0.90:
            op = rng.choice(UNARY_OPS)
            ops.append(FuzzOp(op, (rng.randrange(idx),)))
        else:
            ops.append(FuzzOp("loop", (rng.randint(1, 5),
                                       rng.randrange(idx),
                                       rng.randrange(idx),
                                       rng.randrange(idx))))
    return FuzzProgram(prec, tuple(ops))


def fuzz_programs(max_ops: int = 10,
                  precisions: Optional[Sequence[int]] = None):
    """A hypothesis strategy over :class:`FuzzProgram` (test-suite
    entry point; imports hypothesis lazily so the fuzz CLI does not
    depend on it)."""
    from hypothesis import strategies as st

    precision_strategy = (st.sampled_from(tuple(precisions))
                          if precisions else
                          st.integers(MIN_PRECISION, MAX_PRECISION))

    @st.composite
    def _program(draw):
        prec = draw(precision_strategy)
        n_lits = draw(st.integers(1, 3))
        ops: List[FuzzOp] = []
        for _ in range(n_lits):
            ops.append(FuzzOp("lit", (draw(_literals()),)))
        n_body = draw(st.integers(1, max(1, max_ops - n_lits)))
        for _ in range(n_body):
            idx = len(ops)
            kind = draw(st.integers(0, 9))
            if kind == 0:
                ops.append(FuzzOp("lit", (draw(_literals()),)))
            elif kind <= 6:
                op = draw(st.sampled_from(BINARY_OPS))
                ops.append(FuzzOp(op, (draw(st.integers(0, idx - 1)),
                                       draw(st.integers(0, idx - 1)))))
            elif kind <= 8:
                op = draw(st.sampled_from(UNARY_OPS))
                ops.append(FuzzOp(op, (draw(st.integers(0, idx - 1)),)))
            else:
                ops.append(FuzzOp("loop",
                                  (draw(st.integers(1, 4)),
                                   draw(st.integers(0, idx - 1)),
                                   draw(st.integers(0, idx - 1)),
                                   draw(st.integers(0, idx - 1)))))
        return FuzzProgram(prec, tuple(ops))

    def _literals():
        whole = st.integers(-60, 60)
        frac = st.sampled_from(("0", "25", "5", "125", "333", "9999"))
        exp = st.integers(-40, 40)
        plain = st.builds(lambda w, f: f"{w}.{f}", whole, frac)
        scientific = st.builds(lambda w, f, e: f"{w}.{f}e{e:+d}",
                               whole, frac, exp)
        special = st.sampled_from(_SPECIAL_LITERALS)
        return st.one_of(plain, scientific, special)

    return _program()
