"""Fuzzing CLI: ``python -m repro.validation {fuzz,replay}``.

``fuzz`` generates random programs from a seeded PRNG (no hypothesis
dependency on this path -- the test suite's property tests use the
hypothesis strategy instead), cross-checks each across rounding modes,
engines, optimization levels and backends, and on failure minimizes the
program and writes a reproducer to the corpus directory.  The run is
fully deterministic for a given ``--seed``/``--budget`` pair.

``replay`` re-runs the cross-check on saved reproducers and exits
non-zero while any of them still fails.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from ..observability import telemetry_session
from .corpus import corpus_dir, load_reproducer, save_reproducer
from .fuzzer import cross_check, generate_program
from .minimize import minimize


def _fuzz(argv: argparse.Namespace) -> int:
    rng = random.Random(argv.seed)
    failures: List[str] = []
    with telemetry_session(metrics=True) as (_, registry):
        for i in range(argv.budget):
            program = generate_program(rng, max_ops=argv.max_ops)
            mismatch = cross_check(program, engines=not argv.no_engines)
            if mismatch is None:
                continue
            print(f"[{i}] FAIL prec={program.prec} "
                  f"ops={len(program)}: {mismatch.describe()}",
                  file=sys.stderr)

            def still_fails(candidate,
                            engines=not argv.no_engines):
                return cross_check(candidate, engines=engines) is not None

            minimal = minimize(program, still_fails)
            final = cross_check(minimal, engines=not argv.no_engines)
            assert final is not None  # minimize() preserved the failure
            path = save_reproducer(minimal, final,
                                   directory=argv.corpus_dir)
            failures.append(path)
            print(f"[{i}] minimized to {len(minimal)} op(s) -> {path}",
                  file=sys.stderr)
        checked = int(registry.counter("validate.fuzz.programs"))
    print(f"fuzz: {checked} program(s) cross-checked, "
          f"{len(failures)} failure(s)"
          + (f" in {corpus_dir(argv.corpus_dir)}" if failures else ""))
    return 1 if failures else 0


def _replay(argv: argparse.Namespace) -> int:
    still_failing = 0
    for path in argv.files:
        program, recorded = load_reproducer(path)
        mismatch = cross_check(program)
        if mismatch is None:
            print(f"{path}: clean ({len(program)} op(s); previously "
                  f"{recorded.get('stage', '?')}/"
                  f"{recorded.get('label', '?')})")
        else:
            still_failing += 1
            print(f"{path}: still failing: {mismatch.describe()}")
    return 1 if still_failing else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validation",
        description="differential fuzzing of the vpfloat toolchain")
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="generate and cross-check "
                                       "random programs")
    fuzz.add_argument("--budget", type=int, default=25,
                      help="number of programs to check (default 25)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="PRNG seed (default 0; runs are "
                           "deterministic per seed)")
    fuzz.add_argument("--max-ops", type=int, default=14,
                      help="op-count ceiling per program")
    fuzz.add_argument("--corpus-dir", default=None,
                      help="where to write minimized reproducers "
                           "(default results/fuzz-corpus or "
                           "$VPFLOAT_FUZZ_CORPUS)")
    fuzz.add_argument("--no-engines", action="store_true",
                      help="skip the compiled engine sweep (rounding-"
                           "mode differential only; much faster)")
    fuzz.set_defaults(func=_fuzz)

    replay = sub.add_parser("replay", help="re-check saved reproducers")
    replay.add_argument("files", nargs="+", help="reproducer JSON files")
    replay.set_defaults(func=_replay)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
