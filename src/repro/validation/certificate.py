"""Checkable equivalence certificates for pass and engine transitions.

A :class:`Certificate` is the artifact the translation-validation
harness emits for one subject (a compiled program or kernel run): a
*witness* describing the inputs and the reference observation, plus one
:class:`Check` per candidate configuration (another execution engine,
the MPFR pool toggled, a different optimization level).  Each check
records whether the candidate's values were bit-identical to the
reference and whether its cycle report satisfied the transition's
invariant (see :data:`STRICTNESS`).

Certificates are plain-data (JSON-serializable via :meth:`to_dict`) so
they can cross process boundaries with the parallel evaluation engine
and be archived next to fuzzer reproducers.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

CERTIFICATE_VERSION = 1

#: Cycle-report invariant per transition kind:
#:
#: * ``exact``   -- every report field identical (engine transitions:
#:   the dispatch tables, the legacy walker, and the jit engine model
#:   the same machine, so their reports must agree bit-for-bit).
#: * ``traffic`` -- identical except modeled cycle totals (pool on/off:
#:   the free list legitimately removes allocation cycles but must not
#:   change instruction or call traffic).
#: * ``sane``    -- structural sanity only (pass transitions: -O0 and
#:   -O3 share values, not schedules; the report must still be a
#:   plausible execution).
STRICTNESS = ("exact", "traffic", "sane")

#: CostReport fields compared by the ``exact`` invariant.
_REPORT_FIELDS = (
    "cycles", "instructions", "mpfr_calls", "mpfr_allocations",
    "heap_allocations", "llc_misses", "dram_bytes", "parallel_cycles",
)

#: Fields that must stay identical even when cycle totals may move
#: (the ``traffic`` invariant).
_TRAFFIC_FIELDS = (
    "instructions", "mpfr_calls", "mpfr_allocations",
    "heap_allocations", "llc_misses", "dram_bytes",
)

#: The transitions the toolchain certifies, each mapped to the report
#: invariant its checks run under.  Harnesses that build checks for one
#: of these transitions look its strictness up here rather than
#: hard-coding it, so the table doubles as the authoritative inventory
#: of what "seamless" is required to mean:
#:
#: * ``engine↔engine`` -- any pair of execution engines over one
#:   compiled program (jit/fast/unfused/legacy).
#: * ``serial↔batched`` -- one serial jit run against each lane of a
#:   batched SPMD execution; every lane's value and the shared cycle
#:   report must match the serial run bit-for-bit.
#: * ``serial↔service`` -- a batch-CLI-equivalent serial run against
#:   each reply the compile/run daemon produced for the same request
#:   (possibly coalesced into a batched dispatch, retried on a fresh
#:   shard, or served from the shared artifact store); the daemon is
#:   transport, so values and cycle reports must match bit-for-bit.
#: * ``pool.on↔pool.off`` -- the MPFR free-list toggle.
#: * ``O3↔O0`` / ``O3↔O3-minus-one-pass`` -- optimization transitions.
#: * ``generic↔specialized`` -- the generic arbitrary-precision kernels
#:   against the precision-specialized fast-path kernel tier (scalar
#:   smallfloat kernels and the batched numpy tier); a pure
#:   strength-reduction of the same arithmetic, so values and cycle
#:   reports must match bit-for-bit.
TRANSITIONS = {
    "engine↔engine": "exact",
    "serial↔batched": "exact",
    "serial↔service": "exact",
    "pool.on↔pool.off": "traffic",
    "O3↔O0": "sane",
    "O3↔O3-minus-one-pass": "sane",
    "generic↔specialized": "exact",
}


class CertificateError(AssertionError):
    """A validation certificate did not hold (strict mode)."""


# ----------------------------------------------------------------- #
# Value tokens: bit-level equality for heterogeneous run results
# ----------------------------------------------------------------- #

def value_token(value) -> Tuple:
    """A hashable token equal iff two run results are bit-identical.

    Handles the result types the runtimes produce: BigFloat (compared
    by kind/sign/significand/exponent/precision, so -0 != +0 and
    NaN == NaN), MpfrVar handles (tokenized by their value), floats
    (by IEEE-754 bit pattern), ints and None.
    """
    if value is None:
        return ("none",)
    # MpfrVar handle: token its BigFloat payload.
    if hasattr(value, "value") and hasattr(value, "prec") \
            and hasattr(value, "alive"):
        return value_token(value.value)
    kind = getattr(value, "kind", None)
    if kind is not None and hasattr(value, "mant"):
        return ("bigfloat", kind.value, value.sign, value.mant,
                value.exp, value.prec)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, float):
        if math.isnan(value):
            return ("float", "nan")
        return ("float", struct.pack("<d", value).hex())
    return ("repr", repr(value))


def values_token(values: Sequence) -> Tuple:
    return tuple(value_token(v) for v in values)


def values_digest(values: Sequence) -> str:
    """A short stable digest of a token sequence (for witnesses)."""
    blob = repr(values_token(values)).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


# ----------------------------------------------------------------- #
# Cycle-report invariants
# ----------------------------------------------------------------- #

def report_snapshot(report) -> dict:
    """The comparable face of a CostReport as a plain dict."""
    snap = {name: getattr(report, name, 0) for name in _REPORT_FIELDS}
    snap["by_category"] = dict(getattr(report, "by_category", {}) or {})
    return snap


def compare_reports(reference: dict, candidate: dict,
                    strictness: str) -> Optional[str]:
    """None when ``candidate`` satisfies the invariant against
    ``reference``; otherwise a message naming the first violation."""
    if strictness not in STRICTNESS:
        raise ValueError(f"unknown strictness {strictness!r}; "
                         f"choose from {STRICTNESS}")
    if strictness == "sane":
        if candidate.get("cycles", 0) <= 0:
            return f"cycles must be positive, got {candidate.get('cycles')}"
        if candidate.get("instructions", 0) <= 0:
            return (f"instructions must be positive, "
                    f"got {candidate.get('instructions')}")
        return None
    fields = _REPORT_FIELDS if strictness == "exact" else _TRAFFIC_FIELDS
    for name in fields:
        if reference.get(name) != candidate.get(name):
            return (f"report field {name!r} diverged: reference "
                    f"{reference.get(name)!r} vs candidate "
                    f"{candidate.get(name)!r}")
    if strictness == "exact" and \
            reference.get("by_category") != candidate.get("by_category"):
        return "report cycle breakdown (by_category) diverged"
    return None


# ----------------------------------------------------------------- #
# Certificate structure
# ----------------------------------------------------------------- #

@dataclass
class Check:
    """One candidate configuration compared against the reference."""

    label: str                 # e.g. "engine.legacy", "pool.off", "opt.O0"
    strictness: str            # invariant applied to the cycle report
    value_equal: bool
    report_ok: bool
    detail: str = ""           # first divergence, empty when passed

    @property
    def passed(self) -> bool:
        return self.value_equal and self.report_ok

    def to_dict(self) -> dict:
        return {"label": self.label, "strictness": self.strictness,
                "value_equal": self.value_equal,
                "report_ok": self.report_ok, "passed": self.passed,
                "detail": self.detail}


@dataclass
class Certificate:
    """The equivalence certificate for one validated subject."""

    subject: str               # program/kernel name
    kind: str                  # "engine" | "pass" | "fuzz"
    reference: str             # reference configuration label
    witness: dict = field(default_factory=dict)
    checks: List[Check] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> List[Check]:
        return [check for check in self.checks if not check.passed]

    def add(self, check: Check) -> None:
        self.checks.append(check)

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (f"certificate[{self.kind}] {self.subject}: {verdict} "
                f"({len(self.checks)} check(s) vs {self.reference})")

    def render(self) -> str:
        lines = [self.summary()]
        for check in self.checks:
            mark = "ok" if check.passed else "FAIL"
            line = (f"  {check.label:<24} {mark:<5} "
                    f"[{check.strictness}]")
            if check.detail:
                line += f" {check.detail}"
            lines.append(line)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "version": CERTIFICATE_VERSION,
            "subject": self.subject,
            "kind": self.kind,
            "reference": self.reference,
            "witness": dict(self.witness),
            "passed": self.passed,
            "checks": [check.to_dict() for check in self.checks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Certificate":
        if not isinstance(data, dict) or "checks" not in data:
            raise ValueError("not a vpfloat validation certificate")
        cert = cls(subject=data.get("subject", "?"),
                   kind=data.get("kind", "?"),
                   reference=data.get("reference", "?"),
                   witness=dict(data.get("witness", {})))
        for raw in data["checks"]:
            cert.add(Check(label=raw["label"],
                           strictness=raw.get("strictness", "exact"),
                           value_equal=bool(raw.get("value_equal")),
                           report_ok=bool(raw.get("report_ok")),
                           detail=raw.get("detail", "")))
        return cert


def make_check(label: str, strictness: str,
               reference_values: Tuple, candidate_values: Tuple,
               reference_report: dict, candidate_report: dict) -> Check:
    """Compare one candidate observation against the reference."""
    value_equal = reference_values == candidate_values
    detail = ""
    if not value_equal:
        detail = _first_value_divergence(reference_values,
                                         candidate_values)
    report_error = compare_reports(reference_report, candidate_report,
                                   strictness)
    if report_error and not detail:
        detail = report_error
    return Check(label=label, strictness=strictness,
                 value_equal=value_equal,
                 report_ok=report_error is None, detail=detail)


def _first_value_divergence(reference: Tuple, candidate: Tuple) -> str:
    if len(reference) != len(candidate):
        return (f"value count diverged: {len(reference)} vs "
                f"{len(candidate)}")
    for i, (ref, got) in enumerate(zip(reference, candidate)):
        if ref != got:
            return f"value #{i} diverged: {ref!r} vs {got!r}"
    return "values diverged"
