"""FP configuration pass: insert ``sucfg`` control-register writes.

The paper's first UNUM backend pass (§III-C2): g-layer instructions need
the coprocessor's ess/fss/WGP/MBB control registers to match the vpfloat
type they operate on.  The pass tracks the configuration flowing through
the CFG ("keeps track of values that come in and go out of basic blocks")
and inserts ``sucfg.*`` writes only where a block's incoming state does
not already match -- for single-type kernels that is one configuration in
the entry block, hoisted out of every loop.

Dynamic attributes (ess/fss/size held in scalar registers) use the
``wgpu``/``sizeu`` pseudos to derive WGP and MBB at runtime.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .asm import AsmBlock, AsmFunction, AsmInst, Imm, PReg, VReg

#: Opcode prefixes that consume the coprocessor configuration.
_G_OPCODES_PREFIX = ("g", "ldu", "stu")

_UNKNOWN = object()


def _needs_config(inst: AsmInst) -> bool:
    return inst.config is not None


class FPConfigurationPass:
    def __init__(self, func: AsmFunction):
        self.func = func

    def run(self) -> int:
        # Fast path: one static configuration for the whole function ->
        # configure once in the entry block (hoisted out of every loop).
        configs = {inst.config for inst in self.func.instructions()
                   if _needs_config(inst)}
        if not configs:
            return 0
        if len(configs) == 1:
            config = next(iter(configs))
            arg_regs = {reg for reg, _cls in self.func.arg_registers}
            hoistable = all(
                isinstance(c, (int, str)) or c in arg_regs for c in config
            )
            if hoistable:
                emitted = self._emit_config(config, None)
                entry = self.func.blocks[0]
                entry.instructions[0:0] = emitted
                return len(emitted)
        return self._per_block_sweep()

    def _per_block_sweep(self) -> int:
        label_index = {b.label: i for i, b in enumerate(self.func.blocks)}
        exit_state: Dict[int, Tuple] = {}
        entry_state: Dict[int, Tuple] = {}
        preds: Dict[int, List[int]] = {i: [] for i in
                                       range(len(self.func.blocks))}
        for i, block in enumerate(self.func.blocks):
            fallthrough = True
            for inst in block.instructions:
                if inst.opcode in ("j", "beq", "bne", "blt", "bge", "bltu",
                                   "bgeu"):
                    for op in inst.operands:
                        if op.__class__.__name__ == "Label":
                            target = op.name.lstrip(".")
                            if target in label_index:
                                preds[label_index[target]].append(i)
                    if inst.opcode == "j":
                        fallthrough = False
                if inst.opcode in ("ret", "trap"):
                    fallthrough = False
            if fallthrough and i + 1 < len(self.func.blocks):
                preds[i + 1].append(i)

        inserted = 0
        # Two fixpoint-free sweeps in layout order are enough because we
        # treat any disagreement (or back edge from an unprocessed block)
        # as unknown, forcing a re-configuration -- always safe.
        states: Dict[int, Tuple] = {}
        for i, block in enumerate(self.func.blocks):
            incoming: Optional[Tuple] = _UNKNOWN
            pred_states = [states.get(p, _UNKNOWN) for p in preds[i]]
            if i == 0:
                incoming = None  # nothing configured yet
            elif pred_states and all(s == pred_states[0] for s in pred_states) \
                    and pred_states[0] is not _UNKNOWN:
                incoming = pred_states[0]
            current = incoming
            new_instructions: List[AsmInst] = []
            for inst in block.instructions:
                if _needs_config(inst):
                    wanted = inst.config
                    if current is _UNKNOWN or current != wanted:
                        emitted = self._emit_config(wanted, current)
                        inserted += len(emitted)
                        new_instructions.extend(emitted)
                        current = wanted
                new_instructions.append(inst)
            block.instructions = new_instructions
            states[i] = current if current is not _UNKNOWN else _UNKNOWN
        return inserted

    def _emit_config(self, wanted: Tuple, current) -> List[AsmInst]:
        ess, fss, wgp, mbb = wanted
        old = current if isinstance(current, tuple) else (None,) * 4
        out: List[AsmInst] = []

        def op(v):
            return Imm(v) if isinstance(v, int) else v

        if ess != old[0]:
            out.append(AsmInst("sucfg.ess", [op(ess)]))
        if fss != old[1]:
            out.append(AsmInst("sucfg.fss", [op(fss)]))
        if wgp != old[2]:
            if wgp == "dynamic":
                # WGP derived from the fss register at runtime.
                out.append(AsmInst("sucfg.wgpu", [op(fss), op(mbb)]))
            else:
                out.append(AsmInst("sucfg.wgp", [op(wgp)]))
        if mbb != old[3] and mbb:
            out.append(AsmInst("sucfg.mbb", [op(mbb)]))
        return out


def configure_module(asm_module) -> int:
    total = 0
    for func in asm_module.functions.values():
        total += FPConfigurationPass(func).run()
    return total
