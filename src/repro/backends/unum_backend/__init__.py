"""UNUM ISA backend: address computation, isel, FP config, regalloc.

The full pipeline (:func:`compile_to_unum`) mirrors paper §III-C2:

1. :class:`UnumAddressComputationPass` rewrites GEPs over dynamically-
   sized unum elements into explicit ``__sizeof_vpfloat`` arithmetic;
2. :func:`~repro.backends.unum_backend.isel.select_module` selects
   RISC-V + UNUM instructions over virtual registers;
3. :func:`~repro.backends.unum_backend.fpconfig.configure_module` inserts
   ``sucfg`` ess/fss/WGP/MBB control writes across the CFG;
4. :func:`~repro.backends.unum_backend.regalloc.allocate_module` runs
   linear-scan allocation uniformly over x / f / g classes.
"""

from .addrcomp import UnumAddressComputationPass
from .asm import (
    AsmBlock,
    AsmFunction,
    AsmInst,
    AsmModule,
    Imm,
    Label,
    PReg,
    StackSlot,
    VReg,
)
from .fpconfig import FPConfigurationPass, configure_module
from .isel import InstructionSelector, UnumISelError, select_module
from .regalloc import LinearScanAllocator, RegAllocError, allocate_module


def compile_to_unum(module) -> AsmModule:
    """IR module -> allocated UNUM assembly (the whole backend)."""
    addrcomp = UnumAddressComputationPass()
    for func in list(module.functions.values()):
        if not func.is_declaration:
            addrcomp.run(func)
    asm = select_module(module)
    configure_module(asm)
    allocate_module(asm)
    return asm


__all__ = [
    "compile_to_unum",
    "UnumAddressComputationPass",
    "select_module", "InstructionSelector", "UnumISelError",
    "configure_module", "FPConfigurationPass",
    "allocate_module", "LinearScanAllocator", "RegAllocError",
    "AsmModule", "AsmFunction", "AsmBlock", "AsmInst",
    "VReg", "PReg", "Imm", "Label", "StackSlot",
]
