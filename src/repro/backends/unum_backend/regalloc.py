"""Linear-scan register allocation over x / f / g register classes.

The paper highlights that "the lower level register allocation and
instruction selection operate on variable precision UNUM values the same
way as on primitive IEEE data types" -- here the g-layer class goes
through exactly the same allocator as the integer and double classes.

Liveness is computed per block (use/def + iterative live-out), intervals
are the usual [first-def, last-live] linearized ranges, and allocation is
Poletto-Sarkar linear scan with furthest-end spilling.  Spilled vregs are
rewritten load/store-around-use via reserved scratch registers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .asm import (
    AsmFunction,
    AsmInst,
    F_SCRATCH,
    G_SCRATCH,
    Imm,
    NUM_F,
    NUM_G,
    NUM_X,
    PReg,
    StackSlot,
    VReg,
    X_SCRATCH,
)


class RegAllocError(Exception):
    pass


_CLASS_INFO = {
    "x": (NUM_X, set(X_SCRATCH)),
    "f": (NUM_F, set(F_SCRATCH)),
    "g": (NUM_G, set(G_SCRATCH)),
}

#: Bytes per spill slot, by class (g slots hold a full 68-byte UNUM).
_SLOT_BYTES = {"x": 8, "f": 8, "g": 72}


class LinearScanAllocator:
    def __init__(self, func: AsmFunction):
        self.func = func

    # ------------------------------------------------------------ #

    def run(self) -> AsmFunction:
        intervals = self._intervals()
        assignment, spills = self._allocate(intervals)
        self._rewrite(assignment, spills)
        return self.func

    # ------------------------------------------------------------ #
    # Liveness -> intervals
    # ------------------------------------------------------------ #

    def _positions(self) -> Dict[int, Tuple[int, int]]:
        """(start, end) linear positions per block (by index)."""
        positions = {}
        counter = 0
        for bi, block in enumerate(self.func.blocks):
            start = counter
            counter += max(1, len(block.instructions))
            positions[bi] = (start, counter - 1)
        return positions

    def _intervals(self) -> Dict[VReg, Tuple[int, int]]:
        blocks = self.func.blocks
        label_to_index = {b.label: i for i, b in enumerate(blocks)}
        successors: Dict[int, List[int]] = {}
        for i, block in enumerate(blocks):
            succ: List[int] = []
            fallthrough = True
            for inst in block.instructions:
                if inst.opcode in ("j", "beq", "bne", "blt", "bge", "bltu",
                                   "bgeu"):
                    for op in inst.operands:
                        if hasattr(op, "name") and op.__class__.__name__ \
                                == "Label":
                            target = op.name.lstrip(".")
                            if target in label_to_index:
                                succ.append(label_to_index[target])
                    if inst.opcode == "j":
                        fallthrough = False
                if inst.opcode in ("ret", "trap"):
                    fallthrough = False
            if fallthrough and i + 1 < len(blocks):
                succ.append(i + 1)
            successors[i] = succ

        use: Dict[int, Set[VReg]] = {}
        defs: Dict[int, Set[VReg]] = {}
        for i, block in enumerate(blocks):
            u: Set[VReg] = set()
            d: Set[VReg] = set()
            for inst in block.instructions:
                for reg in inst.uses():
                    if isinstance(reg, VReg) and reg not in d:
                        u.add(reg)
                for reg in inst.defs():
                    if isinstance(reg, VReg):
                        d.add(reg)
            use[i], defs[i] = u, d

        live_in: Dict[int, Set[VReg]] = {i: set() for i in range(len(blocks))}
        live_out: Dict[int, Set[VReg]] = {i: set() for i in range(len(blocks))}
        changed = True
        while changed:
            changed = False
            for i in reversed(range(len(blocks))):
                out: Set[VReg] = set()
                for s in successors[i]:
                    out |= live_in[s]
                inn = use[i] | (out - defs[i])
                if out != live_out[i] or inn != live_in[i]:
                    live_out[i], live_in[i] = out, inn
                    changed = True

        positions = self._positions()
        intervals: Dict[VReg, List[int]] = {}

        def touch(reg: VReg, pos: int) -> None:
            entry = intervals.setdefault(reg, [pos, pos])
            entry[0] = min(entry[0], pos)
            entry[1] = max(entry[1], pos)

        # Incoming arguments are live from position 0.
        for reg, _cls in self.func.arg_registers:
            if isinstance(reg, VReg):
                touch(reg, 0)
        for i, block in enumerate(blocks):
            start, end = positions[i]
            for reg in live_in[i]:
                touch(reg, start)
            for reg in live_out[i]:
                touch(reg, end)
            pos = start
            for inst in block.instructions:
                for reg in inst.uses():
                    if isinstance(reg, VReg):
                        touch(reg, pos)
                for reg in inst.defs():
                    if isinstance(reg, VReg):
                        touch(reg, pos)
                pos += 1
        return {reg: (lo, hi) for reg, (lo, hi) in intervals.items()}

    # ------------------------------------------------------------ #
    # Linear scan
    # ------------------------------------------------------------ #

    def _allocate(self, intervals):
        assignment: Dict[VReg, PReg] = {}
        spills: Dict[VReg, StackSlot] = {}
        by_class: Dict[str, List[Tuple[int, int, VReg]]] = {}
        for reg, (start, end) in intervals.items():
            by_class.setdefault(reg.cls, []).append((start, end, reg))

        slot_cursor = self.func.frame_slots * 8

        def new_slot(cls: str) -> StackSlot:
            nonlocal slot_cursor
            slot = StackSlot(slot_cursor, _SLOT_BYTES[cls])
            slot_cursor += _SLOT_BYTES[cls]
            return slot

        for cls, items in by_class.items():
            capacity, scratch = _CLASS_INFO[cls]
            free = [i for i in range(capacity) if i not in scratch]
            items.sort(key=lambda it: (it[0], it[1], it[2].index))
            active: List[Tuple[int, VReg]] = []  # (end, vreg)
            for start, end, reg in items:
                active = [(e, r) for e, r in active if e >= start]
                in_use = {assignment[r].index for _, r in active
                          if r in assignment}
                available = [i for i in free if i not in in_use]
                if available:
                    assignment[reg] = PReg(cls, available[0])
                    active.append((end, reg))
                    continue
                # Spill the active interval that ends last.
                active.sort(key=lambda it: (it[0], it[1].index))
                victim_end, victim = active[-1]
                if victim_end > end:
                    spills[victim] = new_slot(cls)
                    assignment[reg] = assignment.pop(victim)
                    active[-1] = (end, reg)
                else:
                    spills[reg] = new_slot(cls)
        self.func.frame_slots = (slot_cursor + 7) // 8
        return assignment, spills

    # ------------------------------------------------------------ #
    # Rewriting
    # ------------------------------------------------------------ #

    _SPILL_LOAD = {"x": "ldspill", "f": "fldspill", "g": "gldspill"}
    _SPILL_STORE = {"x": "sdspill", "f": "fsdspill", "g": "gsdspill"}

    def _rewrite(self, assignment, spills) -> None:
        for block in self.func.blocks:
            rewritten: List[AsmInst] = []
            for inst in block.instructions:
                scratch_cursor = {"x": 0, "f": 0, "g": 0}
                reloads: List[AsmInst] = []
                stores: List[AsmInst] = []
                use_map: Dict[VReg, PReg] = {}

                def physical(reg, is_def: bool):
                    if not isinstance(reg, VReg):
                        return reg
                    if reg in assignment:
                        return assignment[reg]
                    slot = spills[reg]
                    if not is_def and reg in use_map:
                        return use_map[reg]
                    pool = {"x": X_SCRATCH, "f": F_SCRATCH,
                            "g": G_SCRATCH}[reg.cls]
                    index = scratch_cursor[reg.cls]
                    if index >= len(pool):
                        raise RegAllocError(
                            f"out of {reg.cls} scratch registers"
                        )
                    scratch = PReg(reg.cls, pool[index])
                    scratch_cursor[reg.cls] += 1
                    if is_def:
                        stores.append(AsmInst(
                            self._SPILL_STORE[reg.cls], [scratch, slot]))
                    else:
                        reloads.append(AsmInst(
                            self._SPILL_LOAD[reg.cls], [scratch, slot]))
                        use_map[reg] = scratch
                    return scratch

                new_operands = []
                def_set = set(id(d) for d in inst.defs())
                for i, op in enumerate(inst.operands):
                    is_def = (i == 0 and id(op) in def_set)
                    new_operands.append(physical(op, is_def))
                if inst.config:
                    inst.config = tuple(
                        physical(c, False) if isinstance(c, VReg) else c
                        for c in inst.config
                    )
                inst.operands = new_operands
                rewritten.extend(reloads)
                rewritten.append(inst)
                rewritten.extend(stores)
            block.instructions = rewritten
        # Arg registers become physical.
        self.func.arg_registers = [
            (assignment.get(reg, reg), cls)
            for reg, cls in self.func.arg_registers
        ]
        # Spilled argument registers need a store at function entry.
        entry = self.func.blocks[0] if self.func.blocks else None
        if entry is not None:
            prologue = []
            for i, (reg, cls) in enumerate(self.func.arg_registers):
                if isinstance(reg, VReg) and reg in spills:
                    pool = {"x": X_SCRATCH, "f": F_SCRATCH,
                            "g": G_SCRATCH}[cls]
                    scratch = PReg(cls, pool[0])
                    prologue.append(AsmInst("argmv", [scratch, Imm(i)]))
                    prologue.append(AsmInst(self._SPILL_STORE[cls],
                                            [scratch, spills[reg]]))
                    # None: the machine must not pre-write this argument;
                    # the argmv pseudo fetches it at execution time.
                    self.func.arg_registers[i] = (None, cls)
            entry.instructions[0:0] = prologue


def allocate_module(asm_module) -> None:
    for func in asm_module.functions.values():
        LinearScanAllocator(func).run()
