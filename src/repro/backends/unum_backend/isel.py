"""Instruction selection: IR -> RISC-V + UNUM assembly (virtual registers).

Lowers optimized IR onto the coprocessor target:

- integer / pointer SSA values live in ``x`` virtual registers, doubles
  in ``f``, UNUM vpfloat values in ``g`` (g-layer) registers -- "all
  optimization passes, including the lower level register allocation and
  instruction selection, operate on variable precision UNUM values the
  same way as on primitive IEEE data types" (paper contribution 5);
- every g-instruction carries the (ess, fss, wgp, mbb) geometry demanded
  by its vpfloat type; the FP-configuration pass turns those into
  ``sucfg`` writes (paper §III-C2 pass 1);
- GEPs over *static* unum arrays scale by the constant byte size; the
  dynamic ones were rewritten by
  :class:`~repro.backends.unum_backend.addrcomp.UnumAddressComputationPass`;
- phis become parallel copies in predecessors (temp-then-target, safe for
  cyclic permutations).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...ir import (
    AllocaInst,
    Argument,
    ArrayType,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ConstantVPFloat,
    FCmpInst,
    FloatType,
    FNegInst,
    Function,
    GEPInst,
    ICmpInst,
    Instruction,
    IntType,
    LoadInst,
    Module,
    PhiInst,
    PointerType,
    RetInst,
    SelectInst,
    StoreInst,
    UndefValue,
    UnreachableInst,
    Value,
    VPFloatType,
    reverse_postorder,
)
from ...unum import MAX_WGP, UnumConfig
from .asm import AsmBlock, AsmFunction, AsmInst, AsmModule, Imm, Label, VReg


class UnumISelError(Exception):
    """A construct the UNUM backend cannot lower."""


def _is_unum(type) -> bool:
    return isinstance(type, VPFloatType) and type.format == "unum"


def _reg_class(type) -> str:
    if _is_unum(type):
        return "g"
    if isinstance(type, VPFloatType):
        raise UnumISelError(
            f"the UNUM backend only lowers vpfloat<unum, ...> values; "
            f"{type} has no coprocessor representation (use backend="
            f"'mpfr'/'none' for other formats)"
        )
    if isinstance(type, FloatType):
        return "f"
    if isinstance(type, (IntType, PointerType)):
        return "x"
    raise UnumISelError(f"no register class for type {type}")


class InstructionSelector:
    """Per-module instruction selection."""

    def __init__(self, module: Module):
        self.module = module

    def run(self) -> AsmModule:
        asm = AsmModule()
        for func in self.module.functions.values():
            if func.is_declaration:
                continue
            asm.add(FunctionSelector(func, self.module).select())
        return asm


class FunctionSelector:
    def __init__(self, func: Function, module: Module):
        self.func = func
        self.module = module
        self.asm = AsmFunction(func.name)
        self.vreg_count = 0
        self.value_reg: Dict[int, VReg] = {}
        self.block_map: Dict[object, AsmBlock] = {}
        self.alloca_slots: Dict[int, int] = {}
        self.frame_bytes = 0
        self.current: Optional[AsmBlock] = None

    # ------------------------------------------------------------ #
    # Register helpers
    # ------------------------------------------------------------ #

    def new_vreg(self, cls: str) -> VReg:
        self.vreg_count += 1
        return VReg(cls, self.vreg_count)

    def reg_for(self, value: Value) -> VReg:
        cached = self.value_reg.get(id(value))
        if cached is not None:
            return cached
        reg = self.new_vreg(_reg_class(value.type))
        self.value_reg[id(value)] = reg
        return reg

    def operand(self, value: Value) -> object:
        """Materialize an IR value as an asm operand."""
        if isinstance(value, ConstantInt):
            return Imm(value.value)
        if isinstance(value, ConstantPointerNull):
            return Imm(0)
        if isinstance(value, ConstantFloat):
            return Imm(value.value)
        if isinstance(value, ConstantVPFloat):
            _reg_class(value.type)  # rejects non-unum formats clearly
            reg = self.new_vreg("g")
            self.emit("gli", [reg, Imm(value.value)],
                      config=self._config_of(value.type))
            return reg
        if isinstance(value, UndefValue):
            if _reg_class(value.type) == "g":
                reg = self.new_vreg("g")
                from ...bigfloat import BigFloat

                self.emit("gli", [reg, Imm(BigFloat.zero(64))],
                          config=self._config_of(value.type)
                          if _is_unum(value.type) else None)
                return reg
            return Imm(0)
        if isinstance(value, Argument):
            return self.reg_for(value)
        if isinstance(value, Instruction):
            return self.reg_for(value)
        if isinstance(value, Function):
            return value.name
        from ...ir import GlobalVariable

        if isinstance(value, GlobalVariable):
            reg = self.new_vreg("x")
            self.emit("la", [reg, value.name])
            return reg
        raise UnumISelError(f"cannot form operand for {value!r}")

    def emit(self, opcode: str, operands, config=None, comment="") -> AsmInst:
        return self.current.append(AsmInst(opcode, list(operands),
                                           config=config, comment=comment))

    # ------------------------------------------------------------ #
    # vpfloat geometry
    # ------------------------------------------------------------ #

    def _attr_operand(self, attr: Value):
        if isinstance(attr, ConstantInt):
            return attr.value
        return self.reg_for(attr)

    def _config_of(self, vptype: VPFloatType) -> Tuple:
        """(ess, fss, wgp, mbb) -- ints for static, VRegs for dynamic."""
        if vptype.is_static:
            ess = vptype.exp_attr.value
            fss = vptype.prec_attr.value
            size = vptype.size_attr.value if vptype.size_attr else None
            conf = UnumConfig(ess, fss, size)
            wgp = min(MAX_WGP, conf.precision)
            return (ess, fss, wgp, conf.size_bytes)
        ess = self._attr_operand(vptype.exp_attr)
        fss = self._attr_operand(vptype.prec_attr)
        size = self._attr_operand(vptype.size_attr) \
            if vptype.size_attr is not None else 0
        return (ess, fss, "dynamic", size)

    # ------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------ #

    def select(self) -> AsmFunction:
        # Argument registers in declaration order.
        for arg in self.func.args:
            reg = self.reg_for(arg)
            self.asm.arg_registers.append((reg, reg.cls))
        order = reverse_postorder(self.func)
        for block in order:
            self.block_map[id(block)] = self.asm.add_block(block.name)
        for block in order:
            self.current = self.block_map[id(block)]
            for inst in block.instructions:
                if isinstance(inst, PhiInst):
                    self.reg_for(inst)  # reserve; filled by predecessors
                    continue
                if inst.is_terminator:
                    self._emit_phi_copies(block)
                    self._select_terminator(block, inst)
                else:
                    self._select(inst)
        self.asm.frame_slots = (self.frame_bytes + 7) // 8
        return self.asm

    # ------------------------------------------------------------ #
    # Phi resolution: parallel copies in each predecessor.
    # ------------------------------------------------------------ #

    def _emit_phi_copies(self, block) -> None:
        for succ in block.successors():
            phis = succ.phis()
            if not phis:
                continue
            temps = []
            for phi in phis:
                value = phi.incoming_for_block(block)
                source = self.operand(value)
                cls = _reg_class(phi.type)
                temp = self.new_vreg(cls)
                self._emit_copy(temp, source, cls,
                                phi.type if _is_unum(phi.type) else None)
                temps.append((phi, temp, cls))
            for phi, temp, cls in temps:
                self._emit_copy(self.reg_for(phi), temp, cls,
                                phi.type if _is_unum(phi.type) else None)

    def _emit_copy(self, dest, source, cls: str, vptype=None) -> None:
        if cls == "g":
            if isinstance(source, Imm):
                self.emit("gli", [dest, source],
                          config=self._config_of(vptype) if vptype else None)
            else:
                self.emit("gmov", [dest, source],
                          config=self._config_of(vptype) if vptype else None)
        elif cls == "f":
            self.emit("fli" if isinstance(source, Imm) else "fmv",
                      [dest, source])
        else:
            self.emit("li" if isinstance(source, Imm) else "mv",
                      [dest, source])

    # ------------------------------------------------------------ #
    # Terminators
    # ------------------------------------------------------------ #

    _ICMP_BRANCH = {"eq": "beq", "ne": "bne", "slt": "blt", "sge": "bge",
                    "ult": "bltu", "uge": "bgeu"}

    def _select_terminator(self, block, inst) -> None:
        if isinstance(inst, RetInst):
            if inst.value is not None:
                cls = _reg_class(inst.value.type)
                source = self.operand(inst.value)
                dest = VReg(cls, 0)  # conventional return vreg
                # Use dedicated return pseudo carrying the operand.
                self.emit("ret", [source] if not isinstance(source, Imm)
                          else [source])
            else:
                self.emit("ret", [])
            return
        if isinstance(inst, UnreachableInst):
            self.emit("trap", [])
            return
        assert isinstance(inst, BranchInst)
        if not inst.is_conditional:
            self.emit("j", [Label(inst.targets[0].name)])
            return
        cond = inst.condition
        true_label = Label(inst.targets[0].name)
        false_label = Label(inst.targets[1].name)
        if isinstance(cond, ICmpInst) and cond.parent is block and \
                len(cond.users) == 1 and \
                cond.predicate in self._ICMP_BRANCH:
            lhs = self.operand(cond.operands[0])
            rhs = self.operand(cond.operands[1])
            self.emit(self._ICMP_BRANCH[cond.predicate],
                      [lhs, rhs, true_label])
            self.emit("j", [false_label])
            return
        value = self.operand(cond)
        self.emit("bne", [value, Imm(0), true_label])
        self.emit("j", [false_label])

    # ------------------------------------------------------------ #
    # Straight-line instructions
    # ------------------------------------------------------------ #

    def _select(self, inst: Instruction) -> None:
        if isinstance(inst, AllocaInst):
            self._select_alloca(inst)
        elif isinstance(inst, BinaryInst):
            self._select_binary(inst)
        elif isinstance(inst, FNegInst):
            dest = self.reg_for(inst)
            src = self.operand(inst.operands[0])
            if dest.cls == "g":
                self.emit("gneg", [dest, src],
                          config=self._config_of(inst.type))
            else:
                self.emit("fneg.d", [dest, src])
        elif isinstance(inst, ICmpInst):
            if self._fused_into_branch(inst):
                return
            dest = self.reg_for(inst)
            self.emit(f"setcc.{inst.predicate}",
                      [dest, self.operand(inst.operands[0]),
                       self.operand(inst.operands[1])])
        elif isinstance(inst, FCmpInst):
            self._select_fcmp(inst)
        elif isinstance(inst, CastInst):
            self._select_cast(inst)
        elif isinstance(inst, LoadInst):
            self._select_load(inst)
        elif isinstance(inst, StoreInst):
            self._select_store(inst)
        elif isinstance(inst, GEPInst):
            self._select_gep(inst)
        elif isinstance(inst, SelectInst):
            dest = self.reg_for(inst)
            config = self._config_of(inst.type) if _is_unum(inst.type) \
                else None
            self.emit(f"sel.{dest.cls}",
                      [dest, self.operand(inst.condition),
                       self.operand(inst.true_value),
                       self.operand(inst.false_value)], config=config)
        elif isinstance(inst, CallInst):
            self._select_call(inst)
        else:
            raise UnumISelError(f"cannot select {inst.opcode}")

    def _fused_into_branch(self, inst: ICmpInst) -> bool:
        return (len(inst.users) == 1
                and isinstance(inst.users[0], BranchInst)
                and inst.users[0].parent is inst.parent
                and inst.predicate in self._ICMP_BRANCH)

    def _select_alloca(self, inst: AllocaInst) -> None:
        dest = self.reg_for(inst)
        if isinstance(inst.allocated_type, VPFloatType) and \
                not inst.allocated_type.is_static:
            # Dynamic vpfloat local: size from the sizeu pseudo.
            config = self._config_of(inst.allocated_type)
            size_reg = self.new_vreg("x")
            self.emit("sizeu", [size_reg, _cfg_op(config[0]),
                                _cfg_op(config[1]), _cfg_op(config[3])])
            self.emit("allocd", [dest, size_reg],
                      comment="dynamic stack allocation")
            return
        elem_bytes = self._static_sizeof(inst.allocated_type)
        if inst.count is not None:
            count = self.operand(inst.count)
            size_reg = self.new_vreg("x")
            if isinstance(count, Imm):
                self.emit("li", [size_reg, Imm(count.value * elem_bytes)])
            else:
                self.emit("mul", [size_reg, count, Imm(elem_bytes)])
            self.emit("allocd", [dest, size_reg])
            return
        offset = self.frame_bytes
        self.frame_bytes += elem_bytes
        self.emit("addsp", [dest, Imm(offset)],
                  comment=f"{inst.allocated_type}")

    def _static_sizeof(self, type) -> int:
        if isinstance(type, VPFloatType):
            return type.size_bytes()
        if isinstance(type, ArrayType):
            return type.count * self._static_sizeof(type.element)
        return type.size_bytes()

    _INT_OPS = {"add": "add", "sub": "sub", "mul": "mul", "sdiv": "div",
                "srem": "rem", "udiv": "divu", "urem": "remu",
                "and": "and", "or": "or", "xor": "xor", "shl": "sll",
                "ashr": "sra", "lshr": "srl"}
    _F_OPS = {"fadd": "fadd.d", "fsub": "fsub.d", "fmul": "fmul.d",
              "fdiv": "fdiv.d", "frem": "frem.d"}
    _G_OPS = {"fadd": "gadd", "fsub": "gsub", "fmul": "gmul",
              "fdiv": "gdiv"}

    def _select_binary(self, inst: BinaryInst) -> None:
        dest = self.reg_for(inst)
        lhs = self.operand(inst.lhs)
        rhs = self.operand(inst.rhs)
        if _is_unum(inst.type):
            opcode = self._G_OPS.get(inst.opcode)
            if opcode is None:
                raise UnumISelError(f"{inst.opcode} unsupported on unum")
            self.emit(opcode, [dest, lhs, rhs],
                      config=self._config_of(inst.type))
            return
        if inst.type.is_float:
            self.emit(self._F_OPS[inst.opcode], [dest, lhs, rhs])
            return
        self.emit(self._INT_OPS[inst.opcode], [dest, lhs, rhs])

    def _select_fcmp(self, inst: FCmpInst) -> None:
        dest = self.reg_for(inst)
        lhs = self.operand(inst.operands[0])
        rhs = self.operand(inst.operands[1])
        if _is_unum(inst.operands[0].type) or \
                _is_unum(inst.operands[1].type):
            config = self._config_of(
                inst.operands[0].type if _is_unum(inst.operands[0].type)
                else inst.operands[1].type)
            self.emit(f"gsetcc.{inst.predicate}", [dest, lhs, rhs],
                      config=config)
        else:
            self.emit(f"fsetcc.{inst.predicate}", [dest, lhs, rhs])

    def _select_cast(self, inst: CastInst) -> None:
        dest = self.reg_for(inst)
        source = self.operand(inst.source)
        opcode = inst.opcode
        if opcode in ("sext", "zext", "trunc", "bitcast", "ptrtoint",
                      "inttoptr"):
            self._emit_copy(dest, source, dest.cls)
            return
        if opcode in ("sitofp", "uitofp"):
            if _is_unum(inst.type):
                self.emit("gcvt.w.g", [dest, source],
                          config=self._config_of(inst.type))
            else:
                self.emit("fcvt.d.w", [dest, source])
            return
        if opcode == "fptosi":
            if _is_unum(inst.source.type):
                self.emit("gcvt.g.w", [dest, source],
                          config=self._config_of(inst.source.type))
            else:
                self.emit("fcvt.w.d", [dest, source])
            return
        if opcode in ("fpext", "fptrunc"):
            self._emit_copy(dest, source, "f")
            return
        if opcode == "vpconv":
            src_unum = _is_unum(inst.source.type)
            dst_unum = _is_unum(inst.type)
            if src_unum and dst_unum:
                self.emit("gmov", [dest, source],
                          config=self._config_of(inst.type))
            elif dst_unum:
                self.emit("gcvt.d.g", [dest, source],
                          config=self._config_of(inst.type))
            else:
                self.emit("gcvt.g.d", [dest, source],
                          config=self._config_of(inst.source.type))
            return
        raise UnumISelError(f"cannot select cast {opcode}")

    def _select_load(self, inst: LoadInst) -> None:
        dest = self.reg_for(inst)
        address = self.operand(inst.pointer)
        if _is_unum(inst.type):
            self.emit("ldu", [dest, address],
                      config=self._config_of(inst.type))
        elif inst.type.is_float:
            self.emit("fld", [dest, address])
        else:
            self.emit("ld", [dest, address])

    def _select_store(self, inst: StoreInst) -> None:
        address = self.operand(inst.pointer)
        value = inst.value
        if _is_unum(value.type):
            source = self.operand(value)
            self.emit("stu", [source, address],
                      config=self._config_of(value.type))
        elif value.type.is_float:
            source = self.operand(value)
            if isinstance(source, Imm):
                reg = self.new_vreg("f")
                self.emit("fli", [reg, source])
                source = reg
            self.emit("fsd", [source, address])
        else:
            source = self.operand(value)
            if isinstance(source, Imm):
                reg = self.new_vreg("x")
                self.emit("li", [reg, source])
                source = reg
            self.emit("sd", [source, address])

    def _select_gep(self, inst: GEPInst) -> None:
        dest = self.reg_for(inst)
        base = self.operand(inst.pointer)
        pointee = inst.pointer.type.pointee
        # Accumulate: dest = base + idx0*sizeof(pointee) [+ ...].
        current_reg = None

        def add_term(reg_or_imm, scale: int):
            nonlocal current_reg
            if scale == 0:
                return
            term = self.new_vreg("x")
            if isinstance(reg_or_imm, Imm):
                self.emit("li", [term, Imm(reg_or_imm.value * scale)])
            elif scale == 1:
                term = reg_or_imm
            else:
                self.emit("mul", [term, reg_or_imm, Imm(scale)])
            if current_reg is None:
                current_reg = self.new_vreg("x")
                self.emit("add", [current_reg, base, term])
            else:
                next_reg = self.new_vreg("x")
                self.emit("add", [next_reg, current_reg, term])
                current_reg = next_reg

        indices = inst.indices
        add_term(self.operand(indices[0]), self._static_sizeof(pointee))
        current_type = pointee
        for index in indices[1:]:
            if isinstance(current_type, ArrayType):
                add_term(self.operand(index),
                         self._static_sizeof(current_type.element))
                current_type = current_type.element
            else:
                raise UnumISelError("struct GEP unsupported in unum backend")
        if current_reg is None:
            self._emit_copy(dest, base, "x")
        else:
            self._emit_copy(dest, current_reg, "x")

    # ------------------------------------------------------------ #
    # Calls
    # ------------------------------------------------------------ #

    _RUNTIME_PSEUDOS = {
        "__vpfloat_check_attr": "checkattr",
        "__omp_parallel_begin": "omp.begin",
        "__omp_parallel_end": "omp.end",
        "__omp_atomic_begin": "atomic.begin",
        "__omp_atomic_end": "atomic.end",
    }

    def _select_call(self, inst: CallInst) -> None:
        name = getattr(inst.callee, "name", "")
        if name == "vpfloat.attr.keepalive":
            return  # codegen marker, no machine footprint
        if name in self._RUNTIME_PSEUDOS:
            ops = [self.operand(a) for a in inst.operands]
            self.emit(self._RUNTIME_PSEUDOS[name], ops)
            return
        if name in ("__sizeof_vpfloat", "__sizeof_vpfloat_mpfr"):
            dest = self.reg_for(inst)
            ops = [self.operand(a) for a in inst.operands]
            while len(ops) < 3:
                ops.append(Imm(0))
            self.emit("sizeu", [dest] + ops)
            return
        if name == "vp.sqrt" and _is_unum(inst.type):
            dest = self.reg_for(inst)
            self.emit("gsqrt", [dest, self.operand(inst.operands[0])],
                      config=self._config_of(inst.type))
            return
        if name == "vp.fabs" and _is_unum(inst.type):
            dest = self.reg_for(inst)
            self.emit("gabs", [dest, self.operand(inst.operands[0])],
                      config=self._config_of(inst.type))
            return
        if name in ("vp.fma", "vp.fms") and _is_unum(inst.type):
            dest = self.reg_for(inst)
            a, bb, c = (self.operand(x) for x in inst.operands)
            if name == "vp.fms":
                neg = self.new_vreg("g")
                self.emit("gneg", [neg, c],
                          config=self._config_of(inst.type))
                c = neg
            self.emit("gfma", [dest, a, bb, c],
                      config=self._config_of(inst.type))
            return
        if name.startswith("vp."):
            raise UnumISelError(
                f"{name} has no coprocessor instruction (the hardware "
                f"implements +,-,*,/,sqrt; restructure the kernel)"
            )
        if name in ("sqrt", "fabs", "exp", "log", "pow", "sin", "cos",
                    "floor", "ceil", "fmax", "fmin"):
            dest = self.reg_for(inst)
            ops = [self.operand(a) for a in inst.operands]
            self.emit(f"libm.{name}", [dest] + ops)
            return
        if name in ("print_double", "print_int", "print_vpfloat"):
            self.emit("print", [self.operand(inst.operands[0])])
            return
        if name == "malloc":
            dest = self.reg_for(inst)
            self.emit("alloch", [dest, self.operand(inst.operands[0])])
            return
        if name == "free":
            self.emit("freeh", [self.operand(inst.operands[0])])
            return
        if name == "memset":
            self.emit("memset", [self.operand(a) for a in inst.operands])
            return
        if name == "memcpy":
            self.emit("memcpy", [self.operand(a) for a in inst.operands])
            return
        # User function call.
        ops = [self.operand(a) for a in inst.operands]
        if inst.type.__class__.__name__ != "VoidType":
            dest = self.reg_for(inst)
            self.emit("call", [dest, name] + ops)
        else:
            self.emit("call.void", [name] + ops)


def _cfg_op(value):
    return Imm(value) if isinstance(value, int) else value


def select_module(module: Module) -> AsmModule:
    """Run instruction selection over a whole module."""
    return InstructionSelector(module).run()
