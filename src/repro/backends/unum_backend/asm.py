"""Assembly representation for the RISC-V + UNUM coprocessor target.

A deliberately small machine language: the scalar RISC-V subset the
kernels need (integer ALU, FP doubles, branches, loads/stores) plus the
UNUM extension of Bocco et al. [9]:

- ``sucfg.{ess,fss,wgp,mbb}`` -- write a coprocessor control register;
- ``ldu``/``stu`` -- variable-byte-size UNUM loads/stores (geometry from
  the current ess/fss/MBB configuration);
- ``gadd/gsub/gmul/gdiv/gsqrt/gfma/gneg/gmov/gcmp`` -- g-layer arithmetic;
- ``gcvt.d.g``, ``gcvt.g.d``, ``gcvt.w.g`` -- conversions with the scalar
  core.

Registers are typed: ``x`` (integer/pointer), ``f`` (IEEE double), ``g``
(g-layer).  Instruction selection produces virtual registers
(:class:`VReg`); the allocator rewrites them to physical ones
(:class:`PReg`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

#: Physical register file sizes.
NUM_X = 32
NUM_F = 32
NUM_G = 32

#: Reserved scratch registers (spill reloads).
X_SCRATCH = (5, 6, 7)
F_SCRATCH = (5, 6)
G_SCRATCH = (30, 31)

#: ABI: arguments / returns.
X_ARGS = tuple(range(10, 18))
F_ARGS = tuple(range(10, 18))
G_ARGS = tuple(range(0, 8))


@dataclass(frozen=True)
class VReg:
    """Virtual register: class 'x' | 'f' | 'g' plus an id."""

    cls: str
    index: int

    def __str__(self) -> str:
        return f"%{self.cls}{self.index}"


@dataclass(frozen=True)
class PReg:
    cls: str
    index: int

    def __str__(self) -> str:
        return f"{self.cls}{self.index}"


@dataclass(frozen=True)
class Imm:
    value: Union[int, float]

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Label:
    name: str

    def __str__(self) -> str:
        return f".{self.name}"


@dataclass(frozen=True)
class StackSlot:
    """Frame-relative slot (spills and local data)."""

    index: int
    size: int = 8

    def __str__(self) -> str:
        return f"[sp+{self.index}]"


Operand = Union[VReg, PReg, Imm, Label, StackSlot, str]


@dataclass
class AsmInst:
    opcode: str
    operands: List[Operand] = field(default_factory=list)
    #: vpfloat geometry demanded by g-instructions: (ess, fss, wgp, mbb)
    #: entries may be ints or VReg/PReg for dynamic attributes.
    config: Optional[Tuple] = None
    comment: str = ""

    def defs(self) -> List[Operand]:
        """Registers written by this instruction."""
        if self.opcode in _NO_DEF:
            return []
        if self.opcode.startswith("sucfg"):
            return []
        if not self.operands:
            return []
        first = self.operands[0]
        if isinstance(first, (VReg, PReg)):
            return [first]
        return []

    def uses(self) -> List[Operand]:
        regs = []
        start = 0 if self.opcode in _NO_DEF or self.opcode.startswith("sucfg") \
            else 1
        for op in self.operands[start:]:
            if isinstance(op, (VReg, PReg)):
                regs.append(op)
        # Config attributes may live in registers too.
        if self.config:
            for attr in self.config:
                if isinstance(attr, (VReg, PReg)):
                    regs.append(attr)
        return regs

    def __str__(self) -> str:
        text = f"{self.opcode} " + ", ".join(str(o) for o in self.operands)
        if self.comment:
            text += f"  # {self.comment}"
        return text.strip()


#: Opcodes that write no register (stores, branches, config, traps).
_NO_DEF = frozenset({
    "sd", "sw", "fsd", "stu", "beq", "bne", "blt", "bge", "bltu", "bgeu",
    "j", "ret", "checkattr", "omp.begin", "omp.end", "atomic.begin",
    "atomic.end", "trap", "nop", "call.void",
})


@dataclass
class AsmBlock:
    label: str
    instructions: List[AsmInst] = field(default_factory=list)

    def append(self, inst: AsmInst) -> AsmInst:
        self.instructions.append(inst)
        return inst

    def __str__(self) -> str:
        body = "\n".join(f"    {i}" for i in self.instructions)
        return f"{self.label}:\n{body}"


@dataclass
class AsmFunction:
    name: str
    blocks: List[AsmBlock] = field(default_factory=list)
    frame_slots: int = 0
    #: Argument placement: list of (register, kind) in order.
    arg_registers: List[Tuple[PReg, str]] = field(default_factory=list)
    return_register: Optional[PReg] = None

    def add_block(self, label: str) -> AsmBlock:
        block = AsmBlock(label)
        self.blocks.append(block)
        return block

    def block_by_label(self, label: str) -> AsmBlock:
        for block in self.blocks:
            if block.label == label:
                return block
        raise KeyError(label)

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def __str__(self) -> str:
        header = f"# function {self.name} (frame: {self.frame_slots} slots)"
        return header + "\n" + "\n".join(str(b) for b in self.blocks)


@dataclass
class AsmModule:
    functions: Dict[str, AsmFunction] = field(default_factory=dict)

    def add(self, func: AsmFunction) -> AsmFunction:
        self.functions[func.name] = func
        return func

    def __str__(self) -> str:
        return "\n\n".join(str(f) for f in self.functions.values())
