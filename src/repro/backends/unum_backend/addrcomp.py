"""Array address computation for dynamically-sized UNUM types.

The paper's second UNUM backend pass (§III-C2): LLVM GEPs cannot scale by
a runtime element size, so every ``GetElementPtr`` whose element type is a
*dynamically-sized* vpfloat is replaced by explicit address arithmetic::

    elem_size = __sizeof_vpfloat(ess, fss, size)   ; hoisted when loop-invariant
    addr      = ptrtoint base + index * elem_size
    ptr       = inttoptr addr

This runs on IR before instruction selection; GVN/LICM have already run,
and the emitted ``__sizeof_vpfloat`` call is placed in the entry block
when its attributes are function arguments, so the multiply is the only
per-access cost -- matching the hardware flow.
"""

from __future__ import annotations

from typing import Dict

from ...ir import (
    Argument,
    BinaryInst,
    CallInst,
    CastInst,
    Constant,
    ConstantInt,
    Function,
    FunctionType,
    GEPInst,
    I32,
    I64,
    PointerType,
    VPFloatType,
)
from ...passes.pass_manager import FunctionPass


def _is_dynamic_unum_pointer(type) -> bool:
    return (
        isinstance(type, PointerType)
        and isinstance(type.pointee, VPFloatType)
        and type.pointee.format == "unum"
        and not type.pointee.is_static
    )


class UnumAddressComputationPass(FunctionPass):
    name = "unum-addrcomp"

    def run(self, func: Function) -> int:
        module = func.parent
        changed = 0
        size_cache: Dict[object, object] = {}
        for block in list(func.blocks):
            for inst in list(block.instructions):
                if not isinstance(inst, GEPInst):
                    continue
                if not _is_dynamic_unum_pointer(inst.pointer.type):
                    continue
                if len(inst.indices) != 1:
                    continue
                vptype = inst.pointer.type.pointee
                elem_size = self._element_size(func, module, vptype,
                                               size_cache)
                index = inst.indices[0]
                position = inst

                def insert(new, name=""):
                    if name:
                        new.name = func.unique_name(name)
                    block.insert_before(position, new)
                    return new

                if index.type != I64 and not isinstance(index, ConstantInt):
                    index = insert(CastInst("sext", index, I64), "idx64")
                elif isinstance(index, ConstantInt) and index.type != I64:
                    index = ConstantInt(I64, index.value)
                base_int = insert(CastInst("ptrtoint", inst.pointer, I64),
                                  "base")
                offset = insert(BinaryInst("mul", index, elem_size), "offset")
                addr = insert(BinaryInst("add", base_int, offset), "addr")
                pointer = insert(CastInst("inttoptr", addr,
                                          inst.pointer.type), "elem")
                inst.replace_all_uses_with(pointer)
                inst.erase_from_parent()
                changed += 1
        return changed

    def _element_size(self, func, module, vptype: VPFloatType, cache):
        key = (id(vptype.exp_attr), id(vptype.prec_attr),
               id(vptype.size_attr))
        cached = cache.get(key)
        if cached is not None:
            return cached
        callee = module.get_or_declare(
            "__sizeof_vpfloat", FunctionType(I64, (I32, I32, I32)))
        size = vptype.size_attr or ConstantInt(I32, 0)
        call = CallInst(callee, [vptype.exp_attr, vptype.prec_attr, size])
        call.name = func.unique_name("vpsize")
        hoistable = all(
            isinstance(a, (Constant, Argument))
            for a in (vptype.exp_attr, vptype.prec_attr, size)
        )
        entry = func.entry
        if hoistable:
            call.parent = entry
            # After existing allocas, before everything else.
            index = 0
            for i, existing in enumerate(entry.instructions):
                if existing.opcode == "alloca":
                    index = i + 1
            entry.instructions.insert(index, call)
            cache[key] = call
        else:
            # Conservative placement at first use site's block head.
            call.parent = entry
            entry.instructions.insert(0, call)
            cache[key] = call
        return call
