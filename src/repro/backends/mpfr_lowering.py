"""The MPFR backend: lowers vpfloat<mpfr,...> SSA values to MPFR calls.

This is the paper's §III-C1 transformation pass.  It runs *after* the
mid-level optimizations ("at a late stage of the middle-end ... to
guarantee that the main optimizations have already been executed") and:

1. turns every vpfloat SSA value into an ``__mpfr_struct`` object with
   automatic ``mpfr_init2``/``mpfr_clear`` lifetime.  Expression
   temporaries are hoisted to the function entry and initialized ONCE,
   so loops re-use them across iterations -- the structural advantage
   over Boost, whose operator-overloading creates (and heap-allocates)
   a fresh temporary per operation per iteration;
2. converts ``fadd/fsub/fmul/fdiv`` into ``mpfr_add/sub/mul/div`` and
   selects the specialized ``_d``/``_si`` entry points when one operand
   is a primitive double/int (visible through ``vpconv``/``sitofp``);
3. rewrites loads, stores, phis, selects, geps and constants to operate
   on the struct type; stores compute **in place** when the stored value
   is an expression result with a single use (no temp, no ``mpfr_set``);
4. rewrites function signatures: vpfloat scalars become ``mpfr_ptr``,
   vpfloat returns become a StructRet-style first argument;
5. optionally **reuses MPFR objects** whose live ranges are disjoint
   (paper item 7), shrinking the number of distinct temporaries.

Arrays of vpfloat become arrays of ``__mpfr_struct`` initialized through
the ``__mpfr_array_init``/``__mpfr_array_clear`` runtime entries (the
real pass emits the equivalent inline loops; the runtime call form is
cost-identical and keeps the IR compact -- see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import (
    AllocaInst,
    Argument,
    ArrayType,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    Constant,
    ConstantInt,
    ConstantVPFloat,
    FCmpInst,
    FNegInst,
    Function,
    FunctionType,
    GEPInst,
    I32,
    I64,
    ICmpInst,
    Instruction,
    IntType,
    IRType,
    LoadInst,
    Module,
    PhiInst,
    PointerType,
    RetInst,
    SelectInst,
    StoreInst,
    StructType,
    VOID,
    Value,
    VPFloatType,
)
from ..ir import GlobalVariable
from ..passes.pass_manager import ModulePass

#: The __mpfr_struct layout of paper Listing 1.
MPFR_STRUCT = StructType(
    "__mpfr_struct", [I32, I32, I64, PointerType(I64)]
)
MPFR_PTR = PointerType(MPFR_STRUCT)

_BINOP_TO_MPFR = {"fadd": "add", "fsub": "sub", "fmul": "mul", "fdiv": "div"}
_VPMATH_TO_MPFR = {
    "vp.sqrt": "mpfr_sqrt", "vp.fabs": "mpfr_abs", "vp.exp": "mpfr_exp",
    "vp.log": "mpfr_log", "vp.sin": "mpfr_sin", "vp.cos": "mpfr_cos",
    "vp.pow": "mpfr_pow", "vp.fma": "mpfr_fma", "vp.fms": "mpfr_fms",
}


def is_mpfr_vpfloat(type: IRType) -> bool:
    return isinstance(type, VPFloatType) and type.format == "mpfr"


def _is_lowered_operand(type: IRType) -> bool:
    """vpfloat<mpfr> or an already-lowered ``__mpfr_struct*`` value
    (load aliasing rewrites operand types before their users lower)."""
    return is_mpfr_vpfloat(type) or type == MPFR_PTR


def _contains_mpfr(type: IRType) -> bool:
    if is_mpfr_vpfloat(type):
        return True
    if isinstance(type, PointerType):
        return _contains_mpfr(type.pointee)
    if isinstance(type, ArrayType):
        return _contains_mpfr(type.element)
    return False


def _map_type(type: IRType) -> IRType:
    """vpfloat<mpfr,...> value -> mpfr_ptr; aggregates map structurally."""
    if is_mpfr_vpfloat(type):
        return MPFR_PTR
    if isinstance(type, PointerType):
        inner = _map_type_storage(type.pointee)
        return PointerType(inner)
    if isinstance(type, ArrayType):
        return ArrayType(_map_type_storage(type.element), type.count)
    return type


def _map_type_storage(type: IRType) -> IRType:
    """In-memory element type: the struct itself, not a pointer to it."""
    if is_mpfr_vpfloat(type):
        return MPFR_STRUCT
    if isinstance(type, PointerType):
        return PointerType(_map_type_storage(type.pointee))
    if isinstance(type, ArrayType):
        return ArrayType(_map_type_storage(type.element), type.count)
    return type


class MPFRLoweringPass(ModulePass):
    """The vpfloat<mpfr> -> MPFR library lowering."""

    name = "mpfr-lowering"

    def __init__(self, reuse_objects: bool = True,
                 specialize_scalars: bool = True,
                 in_place_stores: bool = True):
        self.reuse_objects = reuse_objects
        self.specialize_scalars = specialize_scalars
        self.in_place_stores = in_place_stores

    # ------------------------------------------------------------ #

    def run_module(self, module: Module) -> int:
        self.module = module
        changed = 0
        for func in list(module.functions.values()):
            if func.is_declaration:
                if any(_contains_mpfr(p) for p in func.type.params) or \
                        _contains_mpfr(func.type.ret):
                    self._rewrite_signature(func)
                continue
            if self._function_touches_mpfr(func):
                self._lower_function(func)
                changed += 1
        return changed

    def _function_touches_mpfr(self, func: Function) -> bool:
        if any(_contains_mpfr(p) for p in func.type.params):
            return True
        if _contains_mpfr(func.type.ret):
            return True
        return any(
            _contains_mpfr(i.type) or
            (isinstance(i, AllocaInst) and _contains_mpfr(i.allocated_type))
            or any(_contains_mpfr(op.type) for op in i.operands)
            for i in func.instructions()
        )

    # ------------------------------------------------------------ #
    # Signature rewriting (paper item 3: clone with MPFR objects)
    # ------------------------------------------------------------ #

    def _rewrite_signature(self, func: Function) -> Optional[Argument]:
        """Returns the StructRet argument when one was added."""
        params = [_map_type(p) for p in func.type.params]
        sret_arg = None
        ret = func.type.ret
        if _contains_mpfr(ret) and is_mpfr_vpfloat(ret):
            sret_arg = Argument(MPFR_PTR, "sret", func, 0)
            params = [MPFR_PTR] + params
            ret = VOID
            func.args.insert(0, sret_arg)
            for i, arg in enumerate(func.args):
                arg.index = i
        func.type = FunctionType(ret, params)
        for arg, ptype in zip(func.args, params):
            arg.type = ptype
        return sret_arg

    # ------------------------------------------------------------ #
    # Function body lowering
    # ------------------------------------------------------------ #

    def _lower_function(self, func: Function) -> None:
        self.func = func
        self.sret = self._rewrite_signature(func)
        #: original vpfloat SSA value -> (value pin, mpfr_ptr Value).
        #: The key object is retained so Python cannot recycle its id()
        #: after the instruction is erased.
        self._pointer_map: Dict[int, Tuple[Value, Value]] = {}
        #: entry temps: (alloca, init-call); cleared at every ret.
        self.entry_temps: List[Value] = []
        self.array_clears: List[Tuple[Value, Value]] = []
        self.scalar_clears: List[Value] = []
        #: constant literal cache: key -> pointer.
        self.literal_cache: Dict[str, Value] = {}
        #: temp alloca id -> precision key (for the reuse post-pass).
        self._temp_prec_key: Dict[int, object] = {}
        #: primitive->vpfloat casts whose lowering is deferred so binops
        #: can consume the raw operand via the _d/_si entry points even
        #: when LICM hoisted the conversion out of the loop.
        self._deferred_casts: Dict[int, CastInst] = {}
        self._entry_insert_index = 0

        # Pass A: retype pointer-typed values in place (arguments were
        # retyped by _rewrite_signature; geps/phis/selects keep their
        # instruction identity, only the type changes).
        for inst in func.instructions():
            if isinstance(inst, GEPInst):
                inst.type = _map_type(inst.type)
            elif isinstance(inst, (PhiInst, SelectInst)) and \
                    is_mpfr_vpfloat(inst.type):
                inst.type = MPFR_PTR
            elif isinstance(inst, (PhiInst, SelectInst, LoadInst)) and \
                    _contains_mpfr(inst.type) and \
                    isinstance(inst.type, PointerType):
                inst.type = _map_type(inst.type)

        # Pass B: lower instructions block by block.
        for block in list(func.blocks):
            for inst in list(block.instructions):
                self._lower_instruction(inst)

        # Deferred conversions whose every use got specialized away.
        for cast in self._deferred_casts.values():
            if cast.parent is not None and not cast.users:
                cast.erase_from_parent()

        # Pass C: vpfloat constants surviving as phi/select operands get
        # materialized literal objects (RAUW does not rewrite constants).
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, (PhiInst, SelectInst)):
                    for i, op in enumerate(list(inst.operands)):
                        if isinstance(op, ConstantVPFloat):
                            # A phi's literal must be built on the
                            # incoming edge (phis take no preceding
                            # instructions in their own block).
                            near = inst.incoming_blocks[i].terminator \
                                if isinstance(inst, PhiInst) else inst
                            inst.set_operand(
                                i, self._materialize_literal(op, near))

        # Object reuse (paper item 7): coalesce temporaries with disjoint
        # single-block live ranges.
        if self.reuse_objects:
            self._coalesce_temps()

        # Insert clears before every return.
        self._insert_clears()

    # ------------------------------------------------------------ #
    # Object reuse (paper §III-C1 item 7)
    # ------------------------------------------------------------ #

    def _coalesce_temps(self) -> None:
        """Merge entry temporaries whose live ranges cannot overlap.

        A temp qualifies when every non-lifetime use sits in a single
        block (expression temporaries).  Within each block temps of the
        same precision are assigned linear-scan style; each merge removes
        one ``mpfr_init2``/``mpfr_clear`` pair and one stack object.
        """
        func = self.func
        entry = func.entry
        candidates = []  # (temp, block, first_index, last_index)
        for temp in list(self.scalar_clears):
            if temp.parent is not entry:
                continue
            uses = []
            ok = True
            for user in temp.users:
                name = getattr(getattr(user, "callee", None), "name", "")
                if name in ("mpfr_init2", "mpfr_clear"):
                    continue
                uses.append(user)
            if not uses:
                continue
            blocks = {u.parent for u in uses}
            if len(blocks) != 1:
                continue
            block = blocks.pop()
            if block is entry:
                continue  # literals / entry-resident values: keep
            indices = [block.instructions.index(u) for u in uses]
            first_is_write = self._first_use_writes(temp, block,
                                                    min(indices))
            if not first_is_write:
                continue
            candidates.append((temp, block, min(indices), max(indices)))

        by_block: Dict[object, List] = {}
        for item in candidates:
            by_block.setdefault(id(item[1]), []).append(item)

        merged = 0
        for items in by_block.values():
            items.sort(key=lambda it: it[2])
            active: List[Tuple[int, Value, object]] = []  # (end, rep, preckey)
            for temp, block, start, end in items:
                key = self._temp_prec_key.get(id(temp))
                rep = None
                for i, (active_end, active_rep, active_key) in \
                        enumerate(active):
                    if active_end < start and active_key == key:
                        rep = active_rep
                        active[i] = (end, active_rep, active_key)
                        break
                if rep is None:
                    active.append((end, temp, key))
                    continue
                self._merge_temp_into(temp, rep)
                merged += 1
        self.reused_temps = merged

    def _first_use_writes(self, temp, block, first_index) -> bool:
        inst = block.instructions[first_index]
        if not isinstance(inst, CallInst):
            return False
        name = getattr(inst.callee, "name", "")
        return (name.startswith("mpfr_") or name.startswith("__mpfr_")) \
            and inst.operands and inst.operands[0] is temp \
            and name not in ("mpfr_cmp", "mpfr_get_d", "mpfr_get_si")

    def _merge_temp_into(self, temp: Value, rep: Value) -> None:
        # Drop temp's lifetime calls, then RAUW everything else to rep.
        for user in list(temp.users):
            name = getattr(getattr(user, "callee", None), "name", "")
            if name in ("mpfr_init2", "mpfr_clear"):
                user.drop_all_references()
                user.parent.instructions.remove(user)
        temp.replace_all_uses_with(rep)
        if temp in self.scalar_clears:
            self.scalar_clears.remove(temp)
        if not temp.users:
            temp.erase_from_parent()

    # ------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------ #

    def _declare(self, name: str, ret: IRType, params) -> Function:
        return self.module.get_or_declare(name, FunctionType(ret, params))

    def _insert_before(self, block, position: Instruction,
                       new: Instruction, name: str = "") -> Instruction:
        if name:
            new.name = self.func.unique_name(name)
        block.insert_before(position, new)
        return new

    def _insert_at_entry(self, new: Instruction, name: str = "") -> Instruction:
        if name:
            new.name = self.func.unique_name(name)
        entry = self.func.entry
        new.parent = entry
        entry.instructions.insert(self._entry_insert_index, new)
        self._entry_insert_index += 1
        return new

    def _prec_value(self, vptype: VPFloatType) -> Value:
        return vptype.prec_attr

    def _prec_key(self, vptype: VPFloatType) -> object:
        prec = vptype.prec_attr
        if isinstance(prec, ConstantInt):
            return ("const", prec.value)
        return ("dyn", id(prec))

    def _attr_at_entry(self, attr: Value) -> bool:
        """Can this attribute value be referenced in the entry block?"""
        return isinstance(attr, (Constant, Argument))

    def _new_temp(self, vptype: VPFloatType, near: Instruction) -> Value:
        """A struct alloca + mpfr_init2, hoisted to the entry when the
        precision attribute is available there."""
        prec = self._prec_value(vptype)
        exp = vptype.exp_attr
        init2 = self._declare("mpfr_init2", VOID, (MPFR_PTR, I32, I32))
        alloca = AllocaInst(MPFR_STRUCT)
        if self._attr_at_entry(prec) and self._attr_at_entry(exp):
            self._insert_at_entry(alloca, "mpfr.tmp")
            call = CallInst(init2, [alloca, prec, exp])
            self._insert_at_entry(call)
        else:
            # Attribute only available at the use site (phi/load); the
            # stack slot still lives in the entry so it dominates the
            # clears, only the init happens late.
            self._insert_at_entry(alloca, "mpfr.tmp")
            call = CallInst(init2, [alloca, prec, exp])
            self._insert_before(near.parent, near, call)
        self.scalar_clears.append(alloca)
        return alloca

    def _acquire_temp(self, vptype: VPFloatType, inst: Instruction) -> Value:
        """A fresh destination object (coalesced later by object reuse)."""
        temp = self._new_temp(vptype, inst)
        self._temp_prec_key[id(temp)] = self._prec_key(vptype)
        return temp

    def _map_pointer(self, value: Value, pointer: Value) -> None:
        self._pointer_map[id(value)] = (value, pointer)

    def _mapped_pointer(self, value: Value):
        entry = self._pointer_map.get(id(value))
        return entry[1] if entry is not None else None

    def _lowered(self, value: Value) -> Value:
        """The mpfr_ptr for an already-lowered vpfloat operand."""
        mapped = self._mapped_pointer(value)
        if mapped is not None:
            return mapped
        if id(value) in self._deferred_casts:
            return self._materialize_deferred(value)
        if isinstance(value, ConstantVPFloat):
            return self._materialize_literal(value)
        # Arguments / phis / selects were retyped in place.
        return value

    def _materialize_literal(self, constant: ConstantVPFloat,
                             near: Optional[Instruction] = None) -> Value:
        key = f"{self._prec_key(constant.type)}:{constant.value!r}"
        cached = self.literal_cache.get(key)
        if cached is not None:
            return cached
        # Literal objects are set once at the entry (loop bodies reuse
        # them for free -- Boost re-constructs per iteration).
        prec = self._prec_value(constant.type)
        exp = constant.type.exp_attr
        prec_entry = self._attr_at_entry(prec) and self._attr_at_entry(exp)
        alloca = AllocaInst(MPFR_STRUCT)
        init2 = self._declare("mpfr_init2", VOID, (MPFR_PTR, I32, I32))
        setlit = self._declare("__mpfr_set_literal", VOID, (MPFR_PTR, VOID))
        if prec_entry:
            self._insert_at_entry(alloca, "mpfr.lit")
            self._insert_at_entry(CallInst(init2, [alloca, prec, exp]))
            self._insert_at_entry(CallInst(setlit, [alloca, constant]))
            self.literal_cache[key] = alloca
            self.scalar_clears.append(alloca)
            return alloca
        # Loop-variant precision (the attribute is a phi or a load): the
        # literal must be constructed at the use site, every execution,
        # because the precision can differ each time.  No caching.  The
        # stack slot still lives in the entry so it dominates the clears.
        if near is None:
            near = self._current_inst
        block = near.parent
        self._insert_at_entry(alloca, "mpfr.lit")
        self._insert_before(block, near, CallInst(init2, [alloca, prec, exp]))
        self._insert_before(block, near, CallInst(setlit, [alloca, constant]))
        self.scalar_clears.append(alloca)
        return alloca

    # ------------------------------------------------------------ #
    # Instruction lowering
    # ------------------------------------------------------------ #

    def _lower_instruction(self, inst: Instruction) -> None:
        if inst.parent is None:
            return  # already erased (e.g. a store fused into its op)
        self._current_inst = inst
        if isinstance(inst, BinaryInst) and inst.opcode in _BINOP_TO_MPFR \
                and is_mpfr_vpfloat(inst.type):
            self._lower_binop(inst)
        elif isinstance(inst, FNegInst) and is_mpfr_vpfloat(inst.type):
            self._lower_unary(inst, "mpfr_neg", inst.operands[0])
        elif isinstance(inst, FCmpInst) and \
                _is_lowered_operand(inst.operands[0].type):
            self._lower_fcmp(inst)
        elif isinstance(inst, CastInst):
            self._lower_cast(inst)
        elif isinstance(inst, LoadInst) and is_mpfr_vpfloat(inst.type):
            self._lower_load(inst)
        elif isinstance(inst, StoreInst) and self._is_value_store(inst):
            self._lower_store(inst)
        elif isinstance(inst, AllocaInst) and \
                _contains_mpfr(inst.allocated_type):
            self._lower_alloca(inst)
        elif isinstance(inst, CallInst):
            self._lower_call(inst)
        elif isinstance(inst, RetInst) and inst.value is not None and \
                self.sret is not None and \
                _is_lowered_operand(inst.value.type):
            self._lower_ret(inst)

    # ---- arithmetic ---------------------------------------------- #

    def _scalar_operand(self, value: Value) -> Optional[Tuple[str, Value]]:
        """Detect a primitive operand behind a conversion, for the
        specialized entry points (paper item 2)."""
        if not self.specialize_scalars:
            return None
        if isinstance(value, CastInst):
            if value.opcode == "vpconv" and value.source.type.is_float:
                return ("d", value.source)
            if value.opcode in ("sitofp", "uitofp") and \
                    value.source.type.is_integer:
                return ("si", value.source)
        return None

    def _dest_for(self, inst: Instruction) -> Tuple[Value, Optional[StoreInst]]:
        """Choose the destination object: in-place into the stored-to
        element when legal (paper: "performs in-place operation"), else a
        fresh temporary."""
        store = self._fusable_store(inst)
        if store is not None:
            return self._lowered_pointer_elem(store.pointer), store
        return self._acquire_temp(inst.type, inst), None

    def _fusable_store(self, inst: Instruction) -> Optional[StoreInst]:
        if not self.in_place_stores or len(inst.users) != 1:
            return None
        user = inst.users[0]
        if not isinstance(user, StoreInst) or user.value is not inst or \
                user.parent is not inst.parent:
            return None
        if isinstance(user.pointer, GlobalVariable):
            return None  # globals go through __mpfr_store_global
        block = inst.parent
        inst_index = block.instructions.index(inst)
        store_index = block.instructions.index(user)
        pointer = user.pointer
        # The element pointer must be available before the op.
        if isinstance(pointer, Instruction) and pointer.parent is block \
                and block.instructions.index(pointer) > inst_index:
            return None
        # Writing early must not be observable: no reads/writes of user
        # memory between the op and the original store position.
        for other in block.instructions[inst_index + 1:store_index]:
            if isinstance(other, (LoadInst, StoreInst, CallInst)):
                return None
        return user

    def _lowered_pointer_elem(self, pointer: Value) -> Value:
        # Element pointers (geps/args) were retyped to __mpfr_struct*.
        mapped = self._mapped_pointer(pointer)
        return mapped if mapped is not None else pointer

    def _lower_binop(self, inst: BinaryInst) -> None:
        op = _BINOP_TO_MPFR[inst.opcode]
        block = inst.parent
        lhs, rhs = inst.lhs, inst.rhs
        dest, fused_store = self._dest_for(inst)

        lhs_scalar = self._scalar_operand(lhs)
        rhs_scalar = self._scalar_operand(rhs)
        if rhs_scalar is not None and lhs_scalar is None:
            suffix, raw = rhs_scalar
            name = f"mpfr_{op}_{suffix}"
            callee = self._declare(name, VOID, (MPFR_PTR, MPFR_PTR, raw.type))
            call = CallInst(callee, [dest, self._lowered(lhs), raw])
        elif lhs_scalar is not None and op in ("sub", "div") and \
                lhs_scalar[0] == "d":
            suffix, raw = lhs_scalar
            name = f"mpfr_d_{op}"
            callee = self._declare(name, VOID, (MPFR_PTR, raw.type, MPFR_PTR))
            call = CallInst(callee, [dest, raw, self._lowered(rhs)])
        elif lhs_scalar is not None and op in ("add", "mul"):
            suffix, raw = lhs_scalar
            name = f"mpfr_{op}_{suffix}"
            callee = self._declare(name, VOID, (MPFR_PTR, MPFR_PTR, raw.type))
            call = CallInst(callee, [dest, self._lowered(rhs), raw])
        else:
            callee = self._declare(f"mpfr_{op}", VOID,
                                   (MPFR_PTR, MPFR_PTR, MPFR_PTR))
            call = CallInst(callee, [dest, self._lowered(lhs),
                                     self._lowered(rhs)])
        self._insert_before(block, inst, call)
        self._map_pointer(inst, dest)
        self._replace_and_erase(inst, dest, fused_store)

    def _lower_unary(self, inst: Instruction, name: str, operand: Value) -> None:
        block = inst.parent
        dest, fused_store = self._dest_for(inst)
        callee = self._declare(name, VOID, (MPFR_PTR, MPFR_PTR))
        call = CallInst(callee, [dest, self._lowered(operand)])
        self._insert_before(block, inst, call)
        self._map_pointer(inst, dest)
        self._replace_and_erase(inst, dest, fused_store)

    def _replace_and_erase(self, inst: Instruction, dest: Value,
                           fused_store: Optional[StoreInst]) -> None:
        inst.replace_all_uses_with(dest)
        if fused_store is not None:
            # The store was fused into the op's destination.
            fused_store.drop_all_references()
            fused_store.parent.instructions.remove(fused_store)
            fused_store.parent = None
        inst.erase_from_parent()

    # ---- comparison ----------------------------------------------- #

    def _lower_fcmp(self, inst: FCmpInst) -> None:
        block = inst.parent
        callee = self._declare("mpfr_cmp", I32, (MPFR_PTR, MPFR_PTR))
        call = CallInst(callee, [self._lowered(inst.operands[0]),
                                 self._lowered(inst.operands[1])])
        self._insert_before(block, inst, call, "cmp.mpfr")
        pred = {"oeq": "eq", "one": "ne", "olt": "slt", "ole": "sle",
                "ogt": "sgt", "oge": "sge", "ueq": "eq", "une": "ne"}.get(
            inst.predicate, "eq")
        icmp = ICmpInst(pred, call, ConstantInt(I32, 0))
        self._insert_before(block, inst, icmp, "cmp")
        inst.replace_all_uses_with(icmp)
        inst.erase_from_parent()

    # ---- casts ----------------------------------------------------- #

    def _lower_cast(self, inst: CastInst) -> None:
        if inst.opcode == "bitcast" and _contains_mpfr(inst.type):
            self._lower_malloc_bitcast(inst)
            return
        source_is_mpfr = _is_lowered_operand(inst.source.type)
        target_is_mpfr = is_mpfr_vpfloat(inst.type)
        if not source_is_mpfr and not target_is_mpfr:
            return
        block = inst.parent
        if target_is_mpfr and inst.opcode in ("vpconv", "sitofp", "uitofp"):
            if source_is_mpfr:
                dest, fused = self._dest_for(inst)
                callee = self._declare("mpfr_set", VOID, (MPFR_PTR, MPFR_PTR))
                call = CallInst(callee, [dest, self._lowered(inst.source)])
                self._insert_before(block, inst, call)
                self._map_pointer(inst, dest)
                self._replace_and_erase(inst, dest, fused)
                return
            # Primitive -> vpfloat.  When every user is an arithmetic op,
            # defer: the ops consume the raw primitive through the
            # specialized _d/_si entry points (even across blocks, e.g.
            # after LICM hoisted this conversion to a preheader).
            if not inst.users:
                inst.erase_from_parent()
                return
            if self.specialize_scalars and all(
                isinstance(u, BinaryInst) and u.opcode in _BINOP_TO_MPFR
                for u in inst.users
            ):
                self._deferred_casts[id(inst)] = inst
                return
            dest, fused = self._dest_for(inst)
            if inst.source.type.is_float:
                callee = self._declare("mpfr_set_d", VOID,
                                       (MPFR_PTR, inst.source.type))
            else:
                callee = self._declare("mpfr_set_si", VOID,
                                       (MPFR_PTR, inst.source.type))
            call = CallInst(callee, [dest, inst.source])
            self._insert_before(block, inst, call)
            self._map_pointer(inst, dest)
            self._replace_and_erase(inst, dest, fused)
            return
        if source_is_mpfr and inst.opcode == "vpconv" and inst.type.is_float:
            callee = self._declare("mpfr_get_d", inst.type, (MPFR_PTR,))
            call = CallInst(callee, [self._lowered(inst.source)])
            self._insert_before(block, inst, call, "get_d")
            inst.replace_all_uses_with(call)
            inst.erase_from_parent()
            return
        if source_is_mpfr and inst.opcode == "fptosi":
            callee = self._declare("mpfr_get_si", inst.type, (MPFR_PTR,))
            call = CallInst(callee, [self._lowered(inst.source)])
            self._insert_before(block, inst, call, "get_si")
            inst.replace_all_uses_with(call)
            inst.erase_from_parent()
            return
        if source_is_mpfr and inst.opcode == "vpconv" and \
                is_mpfr_vpfloat(inst.type):
            # Handled by the first branch (target_is_mpfr).
            return

    def _lower_malloc_bitcast(self, inst: CastInst) -> None:
        """``(vpfloat*)malloc(count * sizeof(vpfloat))``: the paper's pass
        "transparently manages objects created with these functions" --
        initialize the heap array's MPFR objects right after the cast."""
        element = inst.type.pointee if isinstance(inst.type, PointerType) \
            else None
        inst.type = _map_type(inst.type)
        source = inst.source
        if not (isinstance(source, CallInst)
                and getattr(source.callee, "name", "") == "malloc"):
            return
        if not is_mpfr_vpfloat(element):
            return
        block = inst.parent
        position = block.instructions[block.instructions.index(inst) + 1]
        size_value = source.operands[0]
        if element.is_static:
            elem_size: Value = ConstantInt(I64, element.static_geometry()[2])
        else:
            sizeof = self._declare("__sizeof_vpfloat_mpfr", I64, (I32, I32))
            elem_size = CallInst(sizeof, [element.exp_attr,
                                          element.prec_attr])
            self._insert_before(block, position, elem_size, "heap.elemsize")
        count = BinaryInst("udiv", size_value, elem_size)
        self._insert_before(block, position, count, "heap.count")
        init = self._declare("__mpfr_array_init", VOID,
                             (PointerType(MPFR_STRUCT), I64, I32, I32))
        self._insert_before(
            block, position,
            CallInst(init, [inst, count, self._prec_value(element),
                            element.exp_attr]))

    def _materialize_deferred(self, cast: CastInst) -> Value:
        """A deferred conversion reached a non-specializable position
        after all: emit the mpfr_set_d/_si at the cast's location."""
        dest = self._acquire_temp(cast.type, cast)
        if cast.source.type.is_float:
            callee = self._declare("mpfr_set_d", VOID,
                                   (MPFR_PTR, cast.source.type))
        else:
            callee = self._declare("mpfr_set_si", VOID,
                                   (MPFR_PTR, cast.source.type))
        self._insert_before(cast.parent, cast,
                            CallInst(callee, [dest, cast.source]))
        self._map_pointer(cast, dest)
        return dest

    # ---- memory ---------------------------------------------------- #

    def _lower_load(self, inst: LoadInst) -> None:
        """A load of a vpfloat element.

        When safe, the SSA value aliases the element pointer directly (no
        copy).  Safety: every use sits in the same block with no
        intervening store/clobbering call.  Otherwise we copy into a temp
        with ``mpfr_set`` -- the conservatism behind the paper's adi /
        deriche slowdowns.
        """
        pointer = self._lowered_pointer_elem(inst.pointer)
        if isinstance(inst.pointer, GlobalVariable):
            # Globals keep their first-class cell representation (they
            # are initialized before any function runs); reads convert
            # into a local MPFR object.
            dest = self._acquire_temp(inst.type, inst)
            loader = self._declare("__mpfr_load_global", VOID,
                                   (MPFR_PTR, inst.pointer.type))
            call = CallInst(loader, [dest, inst.pointer])
            self._insert_before(inst.parent, inst, call)
            self._map_pointer(inst, dest)
            inst.replace_all_uses_with(dest)
            inst.erase_from_parent()
            return
        if self._alias_is_safe(inst):
            self._map_pointer(inst, pointer)
            inst.replace_all_uses_with(pointer)
            inst.erase_from_parent()
            return
        dest = self._acquire_temp(inst.type, inst)
        callee = self._declare("mpfr_set", VOID, (MPFR_PTR, MPFR_PTR))
        call = CallInst(callee, [dest, pointer])
        self._insert_before(inst.parent, inst, call)
        self._map_pointer(inst, dest)
        inst.replace_all_uses_with(dest)
        inst.erase_from_parent()

    def _alias_is_safe(self, inst: LoadInst) -> bool:
        block = inst.parent
        index = block.instructions.index(inst)
        last_use = index
        for user in inst.users:
            if user.parent is not block:
                return False
            if isinstance(user, PhiInst):
                return False
            last_use = max(last_use, block.instructions.index(user))
        for other in block.instructions[index + 1:last_use + 1]:
            if isinstance(other, StoreInst):
                return False
            if isinstance(other, CallInst):
                name = getattr(other.callee, "name", "")
                # Library calls and vp.* intrinsics never write user
                # arrays; anything else might.
                if not (name.startswith("mpfr_") or name.startswith("__")
                        or name.startswith("vp.")):
                    return False
        return True

    def _is_value_store(self, inst: StoreInst) -> bool:
        """A store of a vpfloat *value* into an element slot -- as opposed
        to a store of a pointer into a pointer variable, which stays raw."""
        pointee = inst.pointer.type.pointee \
            if isinstance(inst.pointer.type, PointerType) else None
        target_is_elem = pointee == MPFR_STRUCT or is_mpfr_vpfloat(pointee)
        if not target_is_elem:
            return False
        return _is_lowered_operand(inst.value.type) or \
            isinstance(inst.value, ConstantVPFloat)

    def _lower_store(self, inst: StoreInst) -> None:
        block = inst.parent
        pointer = self._lowered_pointer_elem(inst.pointer)
        value = inst.value
        if isinstance(inst.pointer, GlobalVariable):
            storer = self._declare("__mpfr_store_global", VOID,
                                   (inst.pointer.type, MPFR_PTR))
            lowered = self._lowered(value)
            call = CallInst(storer, [inst.pointer, lowered])
            self._insert_before(block, inst, call)
            inst.drop_all_references()
            block.instructions.remove(inst)
            inst.parent = None
            return
        if isinstance(value, ConstantVPFloat):
            setlit = self._declare("__mpfr_set_literal", VOID,
                                   (MPFR_PTR, VOID))
            call = CallInst(setlit, [pointer, value])
        elif isinstance(value, CastInst):
            raise AssertionError("casts are lowered before stores")
        else:
            lowered = self._lowered(value)
            callee = self._declare("mpfr_set", VOID, (MPFR_PTR, MPFR_PTR))
            call = CallInst(callee, [pointer, lowered])
        self._insert_before(block, inst, call)
        inst.drop_all_references()
        block.instructions.remove(inst)
        inst.parent = None

    def _lower_alloca(self, inst: AllocaInst) -> None:
        old_type = inst.allocated_type
        new_type = _map_type_storage(old_type)
        inst.allocated_type = new_type
        inst.type = PointerType(new_type)
        block = inst.parent
        position = block.instructions[block.instructions.index(inst) + 1]
        if is_mpfr_vpfloat(old_type) and inst.count is None:
            # Scalar local that stayed in memory (escaped address).
            prec = self._prec_value(old_type)
            init2 = self._declare("mpfr_init2", VOID, (MPFR_PTR, I32, I32))
            self._insert_before(block, position,
                                CallInst(init2, [inst, prec,
                                                 old_type.exp_attr]))
            self.scalar_clears.append(inst)
            return
        # Array (fixed or VLA) of vpfloat elements.
        element = old_type
        count: Value = ConstantInt(I64, 1)
        if isinstance(old_type, ArrayType):
            element = old_type.element
            count = ConstantInt(I64, old_type.count)
        if inst.count is not None:
            element = old_type
            count = inst.count
        if not is_mpfr_vpfloat(element):
            return
        prec = self._prec_value(element)
        init = self._declare("__mpfr_array_init", VOID,
                             (PointerType(MPFR_STRUCT), I64, I32, I32))
        base = inst
        if isinstance(new_type, ArrayType):
            decay = GEPInst(inst, [ConstantInt(I64, 0), ConstantInt(I64, 0)])
            self._insert_before(block, position, decay, "mpfr.arr")
            base = decay
        self._insert_before(block, position,
                            CallInst(init, [base, count, prec,
                                            element.exp_attr]))
        self.array_clears.append((base, count))

    # ---- calls and returns ----------------------------------------- #

    def _lower_call(self, inst: CallInst) -> None:
        callee = inst.callee
        name = getattr(callee, "name", "")
        if name in _VPMATH_TO_MPFR and is_mpfr_vpfloat(inst.type):
            block = inst.parent
            dest, fused = self._dest_for(inst)
            mpfr_name = _VPMATH_TO_MPFR[name]
            nargs = len(inst.operands)
            params = (MPFR_PTR,) * (nargs + 1)
            lib = self._declare(mpfr_name, VOID, params)
            call = CallInst(lib, [dest] + [self._lowered(a)
                                           for a in inst.operands])
            self._insert_before(block, inst, call)
            self._map_pointer(inst, dest)
            self._replace_and_erase(inst, dest, fused)
            return
        if not isinstance(callee, Function):
            return
        # User function whose signature gets (or got) rewritten.
        needs_sret = is_mpfr_vpfloat(inst.type)
        touches = needs_sret or any(
            is_mpfr_vpfloat(a.type) or _contains_mpfr(a.type)
            for a in inst.operands
        )
        if not touches:
            return
        block = inst.parent
        args = []
        for a in inst.operands:
            if is_mpfr_vpfloat(a.type):
                args.append(self._lowered(a))
            else:
                mapped = self._mapped_pointer(a)
                args.append(mapped if mapped is not None else a)
        if needs_sret:
            dest = self._acquire_temp(inst.type, inst)
            new_call = CallInst(callee, [dest] + args, result_type=VOID)
            self._insert_before(block, inst, new_call)
            self._map_pointer(inst, dest)
            inst.replace_all_uses_with(dest)
            inst.erase_from_parent()
        else:
            new_call = CallInst(callee, args, result_type=inst.type)
            self._insert_before(block, inst, new_call,
                                inst.name or "call")
            inst.replace_all_uses_with(new_call)
            inst.erase_from_parent()

    def _lower_ret(self, inst: RetInst) -> None:
        block = inst.parent
        value = self._lowered(inst.value)
        callee = self._declare("mpfr_set", VOID, (MPFR_PTR, MPFR_PTR))
        call = CallInst(callee, [self.sret, value])
        self._insert_before(block, inst, call)
        new_ret = RetInst()
        new_ret.parent = block
        inst.drop_all_references()
        block.instructions.remove(inst)
        block.instructions.append(new_ret)

    # ------------------------------------------------------------ #
    # Lifetime: clears at returns (paper item 1)
    # ------------------------------------------------------------ #

    def _insert_clears(self) -> None:
        clear = self._declare("mpfr_clear", VOID, (MPFR_PTR,))
        array_clear = self._declare("__mpfr_array_clear", VOID,
                                    (PointerType(MPFR_STRUCT), I64))
        for block in self.func.blocks:
            term = block.terminator
            if not isinstance(term, RetInst):
                continue
            for temp in self.scalar_clears:
                if self._init_in_entry(temp):
                    self._insert_before(block, term, CallInst(clear, [temp]))
                else:
                    # Initialized inside a conditionally-executed block:
                    # use the liveness-checking clear so a never-taken
                    # path does not clear an uninitialized object.
                    self._insert_before(
                        block, term,
                        CallInst(array_clear, [temp, ConstantInt(I64, 1)]))
            for base, count in self.array_clears:
                if self._dominates_ret(base, block):
                    self._insert_before(block, term,
                                        CallInst(array_clear, [base, count]))

    def _init_in_entry(self, temp: Value) -> bool:
        entry = self.func.entry
        for user in temp.users:
            name = getattr(getattr(user, "callee", None), "name", "")
            if name == "mpfr_init2" and user.operands[0] is temp:
                return user.parent is entry
        return True

    def _dominates_ret(self, base: Value, ret_block) -> bool:
        # Conservative: only clear arrays allocated in the entry block.
        return getattr(base, "parent", None) is self.func.entry
