"""Boost.Multiprecision-style baseline lowering.

The paper's Fig. 1 baseline is Boost's ``mpfr_float`` wrapper: operator
overloading in the C++ frontend materializes an MPFR temporary per
arithmetic operation, with constructor/destructor (``mpfr_init2`` /
``mpfr_clear``) running *per evaluation* -- inside loops, every iteration.
Because the library calls are opaque to the optimizer, nothing hoists the
temporary's lifetime out of the loop and nothing specializes mixed
double/vpfloat operands into the ``_d`` entry points at the wrapper
boundary (conversions construct another temporary).

This pass reproduces exactly that structure so the vpfloat-vs-Boost
comparison is apples-to-apples over the same IR, the same MPFR stand-in
and the same cost model (DESIGN.md substitution table):

- per-op temporaries: ``mpfr_init2`` immediately before the operation and
  ``mpfr_clear`` immediately after the value's last use in its block --
  both *inside* the loop body;
- loads always copy (``mpfr_init2`` + ``mpfr_set``) -- the wrapper cannot
  alias an element it only holds by value;
- primitive operands are first converted into a fresh temporary
  (``mpfr_init2`` + ``mpfr_set_d``), never specialized;
- assignment from a temporary is a move (``mpfr_swap``), Boost's actual
  rvalue behaviour; assignment from an lvalue is an ``mpfr_set``.

Everything else (signature rewriting, arrays, returns, comparisons)
matches :class:`~repro.backends.mpfr_lowering.MPFRLoweringPass`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import (
    CallInst,
    CastInst,
    ConstantVPFloat,
    FunctionType,
    I32,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
    StoreInst,
    Value,
    VOID,
    VPFloatType,
)
from .mpfr_lowering import (
    MPFR_PTR,
    MPFR_STRUCT,
    MPFRLoweringPass,
    is_mpfr_vpfloat,
)


class BoostLoweringPass(MPFRLoweringPass):
    """Eager, frontend-style lowering (the comparison baseline)."""

    name = "boost-lowering"

    def __init__(self):
        super().__init__(reuse_objects=False, specialize_scalars=False,
                         in_place_stores=False)

    # ------------------------------------------------------------ #
    # Per-operation temporaries, constructed in place
    # ------------------------------------------------------------ #

    def _acquire_temp(self, vptype: VPFloatType, inst: Instruction) -> Value:
        """Construct the temporary right where the wrapper would: an
        init2 immediately before the operation, a clear after the last
        use in this block (statement end)."""
        from ..ir import AllocaInst

        prec = self._prec_value(vptype)
        block = inst.parent
        alloca = AllocaInst(MPFR_STRUCT)
        # The struct storage itself can live in the entry (C++ would have
        # it in a register/stack slot); the *lifetime* calls stay local.
        self._insert_at_entry(alloca, "boost.tmp")
        init2 = self._declare("mpfr_init2", VOID, (MPFR_PTR, I32, I32))
        self._insert_before(block, inst,
                            CallInst(init2, [alloca, prec,
                                             vptype.exp_attr]))
        self._pending_clears.append((alloca, block))
        return alloca

    # Named constants (``mpfr_float alpha = 2.0``) construct once; the
    # hoisted-literal placement of the base class models that faithfully.

    def _lower_function(self, func) -> None:
        self._pending_clears: List = []
        self._current_inst: Optional[Instruction] = None
        super()._lower_function(func)
        self._insert_statement_clears()

    def _lower_instruction(self, inst: Instruction) -> None:
        self._current_inst = inst
        super()._lower_instruction(inst)

    # ------------------------------------------------------------ #
    # Loads always copy; stores from temps are moves
    # ------------------------------------------------------------ #

    def _alias_is_safe(self, inst: LoadInst) -> bool:
        # C++ element access binds a reference -- reads never copy, and
        # "unsafe" aliasing matches the wrapper's by-reference semantics.
        return True

    def _lower_store(self, inst: StoreInst) -> None:
        from ..ir import GlobalVariable

        if isinstance(inst.pointer, GlobalVariable):
            super()._lower_store(inst)  # the global-cell bridge
            return
        block = inst.parent
        pointer = self._lowered_pointer_elem(inst.pointer)
        value = inst.value
        if isinstance(value, ConstantVPFloat):
            lowered = self._materialize_literal(value)
            callee = self._declare("mpfr_set", VOID, (MPFR_PTR, MPFR_PTR))
        else:
            lowered = self._lowered(value)
            if self._is_expression_temp(value):
                # Move-assignment from an rvalue temporary.
                callee = self._declare("mpfr_swap", VOID,
                                       (MPFR_PTR, MPFR_PTR))
            else:
                callee = self._declare("mpfr_set", VOID,
                                       (MPFR_PTR, MPFR_PTR))
        call = CallInst(callee, [pointer, lowered])
        self._insert_before(block, inst, call)
        inst.drop_all_references()
        block.instructions.remove(inst)

    def _is_expression_temp(self, value: Value) -> bool:
        mapped = self._mapped_pointer(value)
        return mapped is not None and any(
            mapped is t for t, _ in self._pending_clears
        )

    # ------------------------------------------------------------ #
    # Statement-end destructor calls
    # ------------------------------------------------------------ #

    def _insert_statement_clears(self) -> None:
        """Each temporary's destructor runs after its last use in the
        block where it was constructed -- inside loop bodies."""
        clear = self._declare("mpfr_clear", VOID, (MPFR_PTR,))
        for temp, block in self._pending_clears:
            # A "temporary" that escapes its statement block (loop-carried
            # accumulator through a phi, cross-block use) models a *named*
            # C++ variable: it keeps the function-exit destructor instead.
            escapes = any(
                user.parent is not block or isinstance(user, PhiInst)
                for user in temp.users
                if getattr(getattr(user, "callee", None), "name", "")
                not in ("mpfr_init2", "mpfr_clear")
            )
            if escapes:
                # Hoist its constructor to the entry: a named variable is
                # initialized once, not per iteration.
                entry = self.func.entry
                for user in list(temp.users):
                    name = getattr(getattr(user, "callee", None), "name", "")
                    if name == "mpfr_init2" and user.parent is not entry:
                        user.parent.instructions.remove(user)
                        user.parent = entry
                        # Directly after its own alloca, so it dominates
                        # every use and is dominated by its operand.
                        insert_at = entry.instructions.index(temp) + 1
                        entry.instructions.insert(insert_at, user)
                if temp not in self.scalar_clears:
                    self.scalar_clears.append(temp)
                continue
            if temp in self.scalar_clears:
                self.scalar_clears.remove(temp)  # no function-exit clear
            last = None
            for inst in block.instructions:
                for op in getattr(inst, "operands", ()):
                    if op is temp:
                        name = getattr(getattr(inst, "callee", None),
                                       "name", "")
                        if name != "mpfr_clear":
                            last = inst
            if last is None:
                continue
            index = block.instructions.index(last) + 1
            # Destructors never go past the block terminator.
            if block.instructions and block.instructions[-1].is_terminator:
                index = min(index, len(block.instructions) - 1)
            call = CallInst(clear, [temp])
            call.parent = block
            block.instructions.insert(index, call)

