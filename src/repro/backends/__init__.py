"""Backend code generators: MPFR lowering, Boost baseline, UNUM ISA."""

from .boost_lowering import BoostLoweringPass
from .mpfr_lowering import MPFR_PTR, MPFR_STRUCT, MPFRLoweringPass, is_mpfr_vpfloat

__all__ = [
    "MPFRLoweringPass",
    "BoostLoweringPass",
    "MPFR_STRUCT",
    "MPFR_PTR",
    "is_mpfr_vpfloat",
]
