"""Unified telemetry subsystem: tracing spans + metrics registry.

This package gives the whole stack -- compiler driver, pass pipeline,
compile cache, interpreter/dispatch, MPFR pool, and the parallel
evaluation engine -- one observability layer:

* :class:`Tracer` -- hierarchical spans (compile -> per-pass ->
  lowering; execute -> per-function with hot-block attribution; cache
  lookups; per-shard worker lifetimes) exported as Chrome trace-event
  JSON, viewable in Perfetto or ``chrome://tracing``.
* :class:`MetricsRegistry` -- namespaced counters/gauges/histograms
  that absorb the stack's pre-existing private stats (CacheStats,
  MpfrStats pool traffic, InterpreterProfile, pass timings,
  CostReport) and the precision telemetry (per-opcode precision-bit
  histograms, rounding-mode and guard-bit usage).  Picklable and
  mergeable, so worker shards fold back into the parent.

Telemetry is **opt-in and process-global**: producers consult
:func:`current_tracer` / :func:`current_metrics`, which return ``None``
until :func:`enable_telemetry` (or :func:`telemetry_session`) installs
live instances.  Every hot-path hook is either bound at construction
time or guarded by a single ``is not None`` check, so the disabled
configuration adds no measurable overhead and never perturbs modeled
cycles -- traced runs are bit-identical to untraced ones.

This module is dependency-free (stdlib only) so any layer of the stack
may import it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

from .ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerError,
    RunLedger,
    compare_ledgers,
    bench_floor_scale,
    current_ledger,
    install_ledger,
    ledger_session,
    read_ledger,
    report_fields,
    reproducibility_envelope,
    validate_record,
)
from .metrics import (
    MetricsRegistry,
    absorb_cache_stats,
    absorb_mpfr_stats,
    absorb_pass_timings,
    absorb_profile,
    absorb_report,
    absorb_tier_stats,
    absorb_unum_stats,
)
from .tracer import (
    CAT_CACHE,
    CAT_COMPILE,
    CAT_PASS,
    CAT_POOL,
    CAT_RUNTIME,
    CAT_VALIDATE,
    CAT_WORKER,
    Span,
    Tracer,
)

__all__ = [
    "CAT_CACHE", "CAT_COMPILE", "CAT_PASS", "CAT_POOL", "CAT_RUNTIME",
    "CAT_VALIDATE", "CAT_WORKER", "LEDGER_SCHEMA_VERSION",
    "LedgerError", "MetricsRegistry", "RunLedger", "Span", "Tracer",
    "absorb_cache_stats", "absorb_mpfr_stats", "absorb_pass_timings",
    "absorb_profile", "absorb_report", "absorb_tier_stats",
    "bench_floor_scale",
    "absorb_unum_stats",
    "compare_ledgers", "current_ledger", "current_metrics",
    "current_tracer", "enable_telemetry", "install_ledger",
    "install_telemetry", "ledger_session", "read_ledger",
    "report_fields", "reproducibility_envelope", "telemetry_enabled",
    "telemetry_session", "validate_record",
]

_TRACER: Optional[Tracer] = None
_METRICS: Optional[MetricsRegistry] = None


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is disabled."""
    return _TRACER


def current_metrics() -> Optional[MetricsRegistry]:
    """The installed metrics registry, or None when disabled."""
    return _METRICS


def telemetry_enabled() -> bool:
    return _TRACER is not None or _METRICS is not None


def install_telemetry(tracer: Optional[Tracer],
                      metrics: Optional[MetricsRegistry]
                      ) -> Tuple[Optional[Tracer],
                                 Optional[MetricsRegistry]]:
    """Install (tracer, metrics) as the process defaults; returns the
    previous pair so callers can restore it."""
    global _TRACER, _METRICS
    previous = (_TRACER, _METRICS)
    _TRACER = tracer
    _METRICS = metrics
    return previous


def enable_telemetry(trace: bool = False, metrics: bool = False
                     ) -> Tuple[Optional[Tracer],
                                Optional[MetricsRegistry]]:
    """Create and install fresh telemetry objects; returns the new
    (tracer, registry) pair (entries are None for disabled facets)."""
    tracer = Tracer() if trace else None
    registry = MetricsRegistry() if metrics else None
    install_telemetry(tracer, registry)
    return tracer, registry


@contextmanager
def telemetry_session(trace: bool = False, metrics: bool = False):
    """Scoped telemetry: installs fresh objects, restores the previous
    configuration on exit.  Yields the (tracer, registry) pair."""
    tracer = Tracer() if trace else None
    registry = MetricsRegistry() if metrics else None
    previous = install_telemetry(tracer, registry)
    try:
        yield tracer, registry
    finally:
        install_telemetry(*previous)
