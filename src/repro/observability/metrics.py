"""Unified metrics registry: counters, gauges, histograms, merge.

One :class:`MetricsRegistry` absorbs every pre-existing private counter
in the stack -- :class:`~repro.core.cache.CacheStats`,
:class:`~repro.bigfloat.mpfr_api.MpfrStats` (pool hit/miss traffic),
:class:`~repro.runtime.dispatch.InterpreterProfile`, pass timings, and
:class:`~repro.runtime.cost_model.CostReport` -- behind one namespaced
API, and adds the precision telemetry the paper's evaluation needs
(per-opcode precision-bit histograms, rounding-mode usage, guard bits).

Metric naming scheme (dotted, lowercase)::

    compile.count / compile.cache_hits          driver-level compiles
    compile.cache.{memory_hits,disk_hits,misses,stores,errors}
    compile.pass.<pass-name>.seconds            mid-end + lowering wall time
    runtime.{cycles,instructions,mpfr_calls,heap_allocations,llc_misses,...}
    runtime.opcode.<op>                         executed IR instructions
    runtime.builtin.<name>.{calls,cycles}       runtime-library attribution
    runtime.mpfr.{inits,clears,sets,ops,specialized_ops,...}
    runtime.pool.{hits,misses,releases}         MPFR free-list traffic
    eval.points                                 kernel executions absorbed
    precision.op.<op>.bits                      histogram: vp op precisions
    precision.mpfr.bits                         histogram: mpfr call precisions
    precision.rounding.<mode>                   rounding-mode usage
    precision.guard_bits                        histogram: guard bits in use

The registry is picklable (plain dicts only) and :meth:`merge` is
commutative over counters/histograms (sums) and takes the max of
gauges, so ``parallel_map``/``run_grid`` can fold worker-shard
registries into the parent in any order.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

FORMAT_VERSION = 1


class MetricsRegistry:
    """Named counters / gauges / histograms with cross-process merge."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        #: name -> number (int or float; timings are float seconds).
        self.counters: Dict[str, float] = {}
        #: name -> last observed value (merge keeps the max).
        self.gauges: Dict[str, float] = {}
        #: name -> {observed value -> occurrence count}.
        self.histograms: Dict[str, Dict[float, int]] = {}

    # ------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------ #

    def inc(self, name: str, n: float = 1) -> None:
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float, n: int = 1) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = {}
        hist[value] = hist.get(value, 0) + n

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    # ------------------------------------------------------------ #
    # Merge / serialization
    # ------------------------------------------------------------ #

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (sums counters/histograms,
        max for gauges); returns self for chaining."""
        counters = self.counters
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = self.gauges
        for name, value in other.gauges.items():
            gauges[name] = max(gauges.get(name, value), value)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = dict(hist)
            else:
                for value, count in hist.items():
                    mine[value] = mine.get(value, 0) + count
        return self

    def to_dict(self) -> dict:
        return {
            "format": FORMAT_VERSION,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            # JSON object keys must be strings; values are numeric.
            "histograms": {
                name: {repr(value): count for value, count in hist.items()}
                for name, hist in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from a ``--metrics-out`` document.

        Partial documents are fine: a dump missing one or more sections
        (a run that recorded no histograms, a hand-pruned file) loads
        with those sections empty.  Only something that is not a
        metrics document at all -- not an object, or no recognizable
        section, or a section of the wrong shape -- is rejected.
        """
        if not isinstance(data, dict):
            raise ValueError("not a vpfloat metrics document")
        sections = ("counters", "gauges", "histograms")
        if data and not any(key in data for key in sections) \
                and "format" not in data:
            raise ValueError("not a vpfloat metrics document")
        for key in sections:
            if not isinstance(data.get(key, {}), dict):
                raise ValueError(
                    f"metrics section {key!r} must be an object")
        registry = cls()
        registry.counters.update(data.get("counters", {}))
        registry.gauges.update(data.get("gauges", {}))
        for name, hist in data.get("histograms", {}).items():
            registry.histograms[name] = {
                _num(value): count for value, count in hist.items()
            }
        return registry

    def save(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "MetricsRegistry":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------ #

    def render(self) -> str:
        """A grouped, aligned text report of everything recorded."""
        lines = []
        if self.counters:
            lines.append("== counters ==")
            for name in sorted(self.counters):
                lines.append(f"  {name:<44} {_fmt(self.counters[name])}")
        if self.gauges:
            lines.append("== gauges ==")
            for name in sorted(self.gauges):
                lines.append(f"  {name:<44} {_fmt(self.gauges[name])}")
        if self.histograms:
            lines.append("== histograms ==")
            for name in sorted(self.histograms):
                hist = self.histograms[name]
                total = sum(hist.values())
                weighted = sum(v * c for v, c in hist.items())
                mean = weighted / total if total else 0.0
                lines.append(
                    f"  {name}: n={total} min={_fmt(min(hist))} "
                    f"max={_fmt(max(hist))} mean={mean:g}")
                for value in sorted(hist):
                    lines.append(f"    {_fmt(value):>12} x {hist[value]}")
        return "\n".join(lines) if lines else "(empty registry)"


def _num(text: str) -> float:
    value = float(text)
    return int(value) if value.is_integer() else value


def _fmt(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


# ----------------------------------------------------------------- #
# Absorb adapters: fold the stack's private counter objects in.
# ----------------------------------------------------------------- #

def absorb_cache_stats(registry: MetricsRegistry, stats) -> None:
    """Fold a :class:`~repro.core.cache.CacheStats` snapshot in."""
    registry.inc("compile.cache.memory_hits", stats.memory_hits)
    registry.inc("compile.cache.disk_hits", stats.disk_hits)
    registry.inc("compile.cache.misses", stats.misses)
    registry.inc("compile.cache.stores", stats.stores)
    registry.inc("compile.cache.errors", stats.errors)


def absorb_mpfr_stats(registry: MetricsRegistry, stats) -> None:
    """Fold one run's :class:`~repro.bigfloat.MpfrStats` in (pool
    hit/miss traffic, allocation counts, per-entry-point calls)."""
    registry.inc("runtime.mpfr.inits", stats.inits)
    registry.inc("runtime.mpfr.clears", stats.clears)
    registry.inc("runtime.mpfr.sets", stats.sets)
    registry.inc("runtime.mpfr.ops", stats.ops)
    registry.inc("runtime.mpfr.specialized_ops", stats.specialized_ops)
    registry.inc("runtime.mpfr.compares", stats.compares)
    registry.inc("runtime.mpfr.conversions", stats.conversions)
    registry.inc("runtime.mpfr.limb_bytes_allocated",
                 stats.limb_bytes_allocated)
    registry.inc("runtime.pool.hits", stats.pool_hits)
    registry.inc("runtime.pool.misses", stats.pool_misses)
    registry.inc("runtime.pool.releases", stats.pool_releases)
    for name, count in stats.by_name.items():
        registry.inc(f"runtime.mpfr.call.{name}", count)


def absorb_profile(registry: MetricsRegistry, profile) -> None:
    """Fold an :class:`InterpreterProfile` (opcode/builtin counts) in."""
    for opcode, count in profile.opcode_counts.items():
        registry.inc(f"runtime.opcode.{opcode}", count)
    for name, calls in profile.builtin_calls.items():
        registry.inc(f"runtime.builtin.{name}.calls", calls)
    for name, cycles in profile.builtin_cycles.items():
        registry.inc(f"runtime.builtin.{name}.cycles", cycles)


def absorb_pass_timings(registry: MetricsRegistry,
                        timings: Optional[dict]) -> None:
    """Fold per-pass wall-clock seconds in (one real compile's worth)."""
    if not timings:
        return
    for name, seconds in timings.items():
        registry.inc(f"compile.pass.{name}.seconds", seconds)


def absorb_unum_stats(registry: MetricsRegistry, machine) -> None:
    """Fold one unum-backend run's machine + coprocessor accounting in.

    The unum path bypasses the interpreter, so without this adapter its
    cycle model and g-layer traffic never reach the registry (they only
    lived on the :class:`~repro.runtime.unum_machine.UnumMachine`
    object).  Emits ``unum.*`` counters: the split cycle model
    (scalar core vs coprocessor), dynamic instruction counts, memory
    traffic, and per-opcode g-layer op counts.
    """
    coprocessor = machine.coprocessor
    stats = coprocessor.stats
    registry.inc("unum.scalar_cycles", machine.scalar_cycles)
    registry.inc("unum.coprocessor_cycles", coprocessor.cycles)
    registry.inc("unum.instructions", stats.instructions)
    registry.inc("unum.loads", stats.loads)
    registry.inc("unum.stores", stats.stores)
    registry.inc("unum.bytes_loaded", stats.bytes_loaded)
    registry.inc("unum.bytes_stored", stats.bytes_stored)
    registry.inc("unum.config_writes", stats.config_writes)
    for opcode, count in stats.by_opcode.items():
        registry.inc(f"unum.op.{opcode}", count)


def absorb_tier_stats(registry: MetricsRegistry, stats) -> None:
    """Fold one run's kernel-tier accounting in (the precision-
    specialized fast-path kernel family vs the generic kernels).

    Emits ``kernel.tier.<label>.ops`` / ``.sites`` per tier label
    (tier1/tier2/generic) and ``kernel.tier.fallback.<reason>`` for
    per-call bailouts out of a specialized kernel (special operands,
    out-of-window precision)."""
    for label, count in stats.ops.items():
        if count:
            registry.inc(f"kernel.tier.{label}.ops", count)
    for label, count in stats.sites.items():
        if count:
            registry.inc(f"kernel.tier.{label}.sites", count)
    for reason, count in stats.fallbacks.items():
        if count:
            registry.inc(f"kernel.tier.fallback.{reason}", count)


def absorb_report(registry: MetricsRegistry, report) -> None:
    """Fold one execution's :class:`CostReport` in."""
    registry.inc("runtime.cycles", report.cycles)
    registry.inc("runtime.instructions", report.instructions)
    registry.inc("runtime.mpfr_calls", report.mpfr_calls)
    registry.inc("runtime.mpfr_allocations", report.mpfr_allocations)
    registry.inc("runtime.heap_allocations", report.heap_allocations)
    registry.inc("runtime.llc_misses", report.llc_misses)
    registry.inc("runtime.dram_bytes", report.dram_bytes)
    registry.inc("runtime.parallel_cycles", report.parallel_cycles)
    for category, cycles in report.by_category.items():
        registry.inc(f"runtime.cycles_by.{category}", cycles)
